"""Edge-case tests for the central server simulation."""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.metrics import compute_run_metrics
from repro.sim.server import CentralServer
from repro.sim.trace import SpanKind

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def build_server(n_phones=3, plan=None, measured_b=None, true_b=None, **kw):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0) for i in range(n_phones)
    )
    measured = measured_b or {p.phone_id: 2.0 for p in phones}
    server = CentralServer(
        phones,
        FleetGroundTruth(PROFILES),
        RuntimePredictor(PROFILES),
        CwcScheduler(),
        measured,
        true_b_ms_per_kb=true_b,
        failure_plan=plan or FailurePlan.none(),
        **kw,
    )
    return server, phones


def jobs(n=3, input_kb=500.0):
    return tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 40.0, input_kb)
        for i in range(n)
    )


class TestSimultaneousFailures:
    def test_two_phones_fail_at_same_instant(self):
        plan = FailurePlan(
            [
                PlannedFailure("p0", 3_000.0, online=True),
                PlannedFailure("p1", 3_000.0, online=True),
            ]
        )
        server, _ = build_server(plan=plan)
        result = server.run(jobs())
        assert not result.unfinished_jobs
        assert len(result.trace.failures) == 2

    def test_online_and_offline_mix(self):
        plan = FailurePlan(
            [
                PlannedFailure("p0", 2_000.0, online=True),
                PlannedFailure("p1", 2_500.0, online=False),
            ]
        )
        server, _ = build_server(plan=plan)
        result = server.run(jobs())
        assert not result.unfinished_jobs
        kinds = {f.online for f in result.trace.failures}
        assert kinds == {True, False}


class TestFailureDuringCopy:
    def test_copy_interrupt_requeues_whole_partition(self):
        """A failure while copying loses nothing: the entire partition
        re-enters F_A because no execution ever started."""
        # b=50 ms/KB -> the first copy of (40 exe + ~500 input) takes
        # ~27 s; fail at 1 s, mid-copy.
        measured = {"p0": 50.0, "p1": 50.0, "p2": 50.0}
        plan = FailurePlan([PlannedFailure("p0", 1_000.0, online=True)])
        server, _ = build_server(plan=plan, measured_b=measured)
        result = server.run(jobs())
        (failure,) = result.trace.failures
        assert failure.processed_kb == 0.0
        interrupted = [s for s in result.trace.spans if s.interrupted]
        assert all(s.kind is SpanKind.COPY for s in interrupted)
        assert not result.unfinished_jobs


class TestMeasurementError:
    def test_true_b_differs_from_measured(self):
        """The scheduler plans with stale measurements; the run still
        completes, just with a prediction gap."""
        measured = {"p0": 2.0, "p1": 2.0, "p2": 2.0}
        true = {"p0": 4.0, "p1": 2.0, "p2": 1.0}
        server, _ = build_server(measured_b=measured, true_b=true)
        result = server.run(jobs())
        assert not result.unfinished_jobs
        assert result.measured_makespan_ms != pytest.approx(
            result.predicted_makespan_ms, rel=0.001
        )


class TestRoundRecords:
    def test_round_record_fields(self):
        server, _ = build_server()
        result = server.run(jobs())
        (record,) = result.rounds
        assert record.round_index == 0
        assert not record.rescheduled
        assert record.scheduled_at_ms == 0.0
        assert set(record.job_ids) == {j.job_id for j in jobs()}
        assert record.predicted_makespan_ms > 0

    def test_reschedule_round_marked(self):
        plan = FailurePlan([PlannedFailure("p1", 2_000.0, online=True)])
        server, _ = build_server(plan=plan)
        result = server.run(jobs())
        if len(result.rounds) > 1:
            assert result.rounds[1].rescheduled
            assert result.rounds[1].scheduled_at_ms > 0


class TestSlowdownInteractions:
    def test_partial_fleet_slowdown_shifts_load_outcome(self):
        fast_server, _ = build_server()
        fast = fast_server.run(jobs())
        slow_server, _ = build_server(
            compute_slowdown={"p0": 3.0, "p1": 3.0, "p2": 3.0}
        )
        slow = slow_server.run(jobs())
        assert slow.measured_makespan_ms > fast.measured_makespan_ms
        metrics = compute_run_metrics(slow.trace)
        assert metrics.active_phone_count >= 1

    def test_single_phone_fleet(self):
        server, _ = build_server(n_phones=1)
        result = server.run(jobs())
        assert not result.unfinished_jobs
        metrics = compute_run_metrics(result.trace)
        assert metrics.active_phone_count == 1
        # One phone, sequential pipeline: efficiency is by definition 1.
        assert metrics.parallel_efficiency == pytest.approx(1.0, abs=0.01)


class TestKeepaliveConfig:
    def test_custom_keepalive_shortens_detection(self):
        plan = FailurePlan([PlannedFailure("p1", 1_000.0, online=False)])
        server, _ = build_server(
            plan=plan,
            keepalive_period_ms=5_000.0,
            keepalive_tolerated_misses=2,
        )
        result = server.run(jobs())
        (failure,) = result.trace.failures
        assert failure.detected_at_ms == pytest.approx(10_000.0)


class TestUtilisationDefaults:
    """Serial (no-pool) runs must report utilisation 1.0, not 0.0.

    The convention across CapacitySearchResult, SchedulingStats, and
    RoundRecord is "no pool means nothing speculated, so nothing was
    wasted" — a serial search consumes every pack it issues.  PR 9
    aligned RoundRecord's fallback with the dataclass defaults; these
    tests pin all three layers so the convention cannot drift again.
    """

    def test_dataclass_defaults_agree(self):
        from repro.core.capacity import CapacitySearchResult
        from repro.core.greedy import SchedulingStats
        from repro.sim.server import RoundRecord

        assert SchedulingStats().probe_worker_utilisation == 1.0
        fields = {
            f.name: f.default
            for f in CapacitySearchResult.__dataclass_fields__.values()
        }
        assert fields["probe_worker_utilisation"] == 1.0
        round_fields = {
            f.name: f.default
            for f in RoundRecord.__dataclass_fields__.values()
        }
        assert round_fields["probe_worker_utilisation"] == 1.0
        assert round_fields["probe_wait_ms"] == 0.0
        assert round_fields["probe_exec_ms"] == 0.0

    def test_serial_run_records_full_utilisation(self):
        server, _ = build_server()
        result = server.run(jobs())
        assert not result.unfinished_jobs
        assert result.rounds  # the run actually scheduled something
        for record in result.rounds:
            assert record.probe_worker_utilisation == 1.0
            assert record.probe_wait_ms == 0.0
            assert record.probe_exec_ms == 0.0

    def test_serial_scheduler_stats_report_full_utilisation(self):
        server, _ = build_server()
        server.run(jobs())
        scheduler = server._scheduler
        stats = scheduler.stats
        assert stats.probe_worker_utilisation == 1.0
