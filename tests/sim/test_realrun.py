"""Tests for real schedule execution (semantics, not timing)."""

import random

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.runtime.registry import TaskRegistry
from repro.sim.realrun import RealExecutionRunner, direct_results
from repro.workloads.datagen import integer_file, text_file, text_size_kb


def make_setup(n_phones=4, seed=3):
    rng = random.Random(seed)
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 200.0 * i)
        for i in range(n_phones)
    )
    registry = TaskRegistry()
    registry.load("repro.workloads.primes:PrimeCountTask")
    registry.load("repro.workloads.wordcount:WordCountTask")
    registry.load("repro.workloads.maxint:MaxIntTask")

    inputs = {
        "count-primes": integer_file(60.0, rng),
        "count-words": text_file(80.0, rng),
        "find-max": integer_file(40.0, rng),
    }
    tasks = {
        "count-primes": "primes",
        "count-words": "wordcount",
        "find-max": "maxint",
    }
    jobs = tuple(
        Job(
            job_id=job_id,
            task=tasks[job_id],
            kind=JobKind.BREAKABLE,
            executable_kb=10.0,
            input_kb=text_size_kb(text),
        )
        for job_id, text in inputs.items()
    )
    profiles = {
        name: TaskProfile(name, 5.0, 800.0)
        for name in ("primes", "wordcount", "maxint")
    }
    predictor = RuntimePredictor(profiles)
    b = {p.phone_id: rng.uniform(1.0, 20.0) for p in phones}
    instance = SchedulingInstance.build(jobs, phones, b, predictor)
    return registry, phones, inputs, tasks, instance


class TestRealExecution:
    def test_distributed_equals_direct(self):
        registry, phones, inputs, tasks, instance = make_setup()
        schedule = CwcScheduler().schedule(instance)
        runner = RealExecutionRunner(registry, [p.phone_id for p in phones])
        outcome = runner.run(schedule, inputs)
        reference = direct_results(
            registry,
            {job_id: (tasks[job_id], text) for job_id, text in inputs.items()},
        )
        assert outcome.results == reference

    def test_partition_counts_match_schedule(self):
        registry, phones, inputs, _, instance = make_setup()
        schedule = CwcScheduler().schedule(instance)
        runner = RealExecutionRunner(registry, [p.phone_id for p in phones])
        outcome = runner.run(schedule, inputs)
        assert sum(outcome.partitions_per_phone.values()) == len(schedule)

    def test_migration_preserves_results(self):
        registry, phones, inputs, tasks, instance = make_setup()
        schedule = CwcScheduler().schedule(instance)
        runner = RealExecutionRunner(registry, [p.phone_id for p in phones])
        outcome = runner.run(
            schedule,
            inputs,
            interrupt_after_items={"count-primes": 10, "count-words": 25},
        )
        reference = direct_results(
            registry,
            {job_id: (tasks[job_id], text) for job_id, text in inputs.items()},
        )
        assert outcome.results == reference
        assert len(outcome.migrations) == 2
        for migration in outcome.migrations:
            assert migration.from_phone != migration.to_phone
            assert migration.items_processed_before > 0

    def test_missing_input_rejected(self):
        registry, phones, inputs, _, instance = make_setup()
        schedule = CwcScheduler().schedule(instance)
        runner = RealExecutionRunner(registry, [p.phone_id for p in phones])
        partial_inputs = dict(inputs)
        partial_inputs.pop("find-max")
        with pytest.raises(KeyError, match="find-max"):
            runner.run(schedule, partial_inputs)

    def test_unknown_phone_rejected(self):
        registry, phones, inputs, _, instance = make_setup()
        schedule = CwcScheduler().schedule(instance)
        runner = RealExecutionRunner(registry, ["only-phone"])
        used = {a.phone_id for a in schedule}
        if used != {"only-phone"}:
            with pytest.raises(KeyError):
                runner.run(schedule, inputs)

    def test_empty_fleet_rejected(self):
        registry = TaskRegistry()
        with pytest.raises(ValueError):
            RealExecutionRunner(registry, [])

    def test_interrupt_larger_than_partition_still_finishes(self):
        registry, phones, inputs, tasks, instance = make_setup()
        schedule = CwcScheduler().schedule(instance)
        runner = RealExecutionRunner(registry, [p.phone_id for p in phones])
        outcome = runner.run(
            schedule, inputs, interrupt_after_items={"find-max": 10**9}
        )
        reference = direct_results(
            registry,
            {job_id: (tasks[job_id], text) for job_id, text in inputs.items()},
        )
        assert outcome.results == reference
        assert not outcome.migrations  # never actually suspended
