"""Tests for multi-night continuous operation: churn, checkpoints, resume."""

import random

import pytest

from repro.durability.snapshot import SnapshotStore
from repro.sim.campaign import (
    CAMPAIGN_SNAPSHOT_KIND,
    ContinuousCampaign,
    capacity_planning_report,
)
from repro.sim.churn import FleetChurnModel


def night_dicts(result):
    return [record.to_dict() for record in result.nights]


class TestContinuousOperation:
    def test_same_seed_same_campaign(self):
        first = ContinuousCampaign(seed=21).run(3)
        second = ContinuousCampaign(seed=21).run(3)
        assert night_dicts(first) == night_dicts(second)

    def test_backlog_and_arrivals_flow_across_nights(self):
        result = ContinuousCampaign(
            seed=22, arrival_rate_per_hour=80.0, churn=FleetChurnModel()
        ).run(4)
        assert len(result.nights) == 4
        assert result.total_submitted > 0
        # Job-level conservation: everything submitted either finished
        # or is still in the final backlog.
        assert (
            result.total_jobs_completed + len(result.final_backlog)
            == result.total_submitted
        )

    def test_churn_changes_the_fleet(self):
        churned = ContinuousCampaign(
            seed=23,
            churn=FleetChurnModel(
                leave_probability=0.4, max_joins_per_night=3
            ),
        ).run(4)
        assert any(
            n.joined or n.departed for n in churned.nights[1:]
        ), "an aggressive churn model should move the fleet"
        sizes = {n.fleet_size for n in churned.nights}
        assert len(sizes) > 1


class TestKillAndResume:
    def test_resumed_campaign_equals_uninterrupted(self, tmp_path):
        baseline = ContinuousCampaign(
            seed=24, churn=FleetChurnModel(), arrival_rate_per_hour=60.0
        ).run(5)

        class Killed(RuntimeError):
            pass

        def kill_after(night):
            def hook(_campaign, night_index, _record):
                if night_index >= night:
                    raise Killed

            return hook

        ckpt = tmp_path / "store"
        with pytest.raises(Killed):
            ContinuousCampaign(
                seed=24,
                churn=FleetChurnModel(),
                arrival_rate_per_hour=60.0,
                checkpoint_dir=ckpt,
            ).run(5, on_night=kill_after(1))

        resumed = ContinuousCampaign(
            seed=24,
            churn=FleetChurnModel(),
            arrival_rate_per_hour=60.0,
            checkpoint_dir=ckpt,
        ).run(5, resume=True)
        assert resumed.resumed_from_night == 2
        assert night_dicts(resumed) == night_dicts(baseline)
        assert [j.job_id for j in resumed.final_backlog] == [
            j.job_id for j in baseline.final_backlog
        ]
        assert resumed.pending_arrivals == baseline.pending_arrivals

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        result = ContinuousCampaign(
            seed=25, checkpoint_dir=tmp_path / "empty"
        ).run(2, resume=True)
        assert result.resumed_from_night is None
        assert len(result.nights) == 2

    def test_corrupt_latest_checkpoint_falls_back(self, tmp_path):
        ckpt = tmp_path / "store"
        baseline = ContinuousCampaign(seed=26).run(4)
        ContinuousCampaign(seed=26, checkpoint_dir=ckpt).run(3)
        store = SnapshotStore(ckpt)
        ids = store.snapshot_ids()
        newest = ckpt / f"snap-{ids[-1]:06d}.json"
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) // 2])

        resumed = ContinuousCampaign(
            seed=26, checkpoint_dir=ckpt
        ).run(4, resume=True)
        # Fell back one night (the corrupt night-3 checkpoint is
        # skipped), re-ran it identically, and continued.
        assert resumed.resumed_from_night == 2
        assert night_dicts(resumed) == night_dicts(baseline)

    def test_checkpoints_are_pruned(self, tmp_path):
        ckpt = tmp_path / "store"
        ContinuousCampaign(
            seed=27, checkpoint_dir=ckpt, keep_snapshots=2
        ).run(5)
        store = SnapshotStore(ckpt)
        assert len(store) == 2
        assert (
            store.latest(kind=CAMPAIGN_SNAPSHOT_KIND) is not None
        )


class TestCapacityPlanning:
    def test_report_shape_and_verdict(self):
        campaign = ContinuousCampaign(seed=28, arrival_rate_per_hour=30.0)
        result = campaign.run(3)
        report = capacity_planning_report(
            result, window_hours=campaign.window_hours
        )
        assert report["nights"] == 3
        assert len(report["rows"]) == 3
        for row in report["rows"]:
            assert 0.0 <= row["window_utilization"]
        assert report["total_submitted"] == result.total_submitted
        assert isinstance(report["keeps_up"], bool)
        assert report["throughput_jobs_per_night"] > 0

    def test_window_hours_validated(self):
        result = ContinuousCampaign(seed=29).run(1)
        with pytest.raises(ValueError, match="window_hours"):
            capacity_planning_report(result, window_hours=0.0)


class TestChurnModel:
    def test_apply_is_deterministic(self):
        from repro.workloads.mixes import paper_testbed

        fleet = paper_testbed(seed=1).phones
        model = FleetChurnModel(leave_probability=0.3, max_joins_per_night=2)
        first = model.apply(fleet, night_index=1, rng=random.Random(5))
        second = model.apply(fleet, night_index=1, rng=random.Random(5))
        assert first.joined == second.joined
        assert first.departed == second.departed
        assert [p.phone_id for p in first.phones] == [
            p.phone_id for p in second.phones
        ]

    def test_min_fleet_floor_holds(self):
        from repro.workloads.mixes import paper_testbed

        fleet = paper_testbed(seed=1).phones
        model = FleetChurnModel(
            leave_probability=1.0, max_joins_per_night=0, min_fleet=4
        )
        rng = random.Random(0)
        for night in range(1, 6):
            event = model.apply(fleet, night_index=night, rng=rng)
            fleet = event.phones
        assert len(fleet) >= 4

    def test_drift_stays_in_unit_interval(self):
        model = FleetChurnModel(habit_drift_sigma=0.5)
        probs = [0.5] * 24
        rng = random.Random(9)
        for _ in range(50):
            probs = model.drift_hourly_probabilities(probs, rng=rng)
        assert all(0.0 <= p <= 1.0 for p in probs)


class TestCampaignPolicySelection:
    def test_sharded_campaign_rejects_non_default_policy(self):
        with pytest.raises(ValueError, match="cwc-greedy"):
            ContinuousCampaign(pods=2, policy="energy-aware")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            ContinuousCampaign(policy="round-robin")

    def test_monolithic_campaign_runs_alternative_policy(self):
        result = ContinuousCampaign(
            seed=7, jobs_per_night=6, policy="energy-aware"
        ).run(1)
        assert len(result.nights) == 1
        assert (
            result.total_jobs_completed + len(result.final_backlog)
            == result.total_submitted
        )

    def test_default_policy_campaign_unchanged(self):
        explicit = ContinuousCampaign(
            seed=7, jobs_per_night=6, policy="cwc-greedy"
        ).run(1)
        implicit = ContinuousCampaign(seed=7, jobs_per_night=6).run(1)
        assert night_dicts(explicit) == night_dicts(implicit)
