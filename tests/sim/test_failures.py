"""Tests for failure plans and the random unplug model."""

import random

import pytest

from repro.sim.failures import FailurePlan, PlannedFailure, RandomUnplugModel


class TestPlannedFailure:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PlannedFailure(phone_id="p", time_ms=-1.0)

    def test_defaults_to_online(self):
        assert PlannedFailure(phone_id="p", time_ms=0.0).online


class TestFailurePlan:
    def test_empty_plan(self):
        plan = FailurePlan.none()
        assert len(plan) == 0
        assert plan.for_phone("p") is None

    def test_sorted_iteration(self):
        plan = FailurePlan(
            [
                PlannedFailure("b", 20.0),
                PlannedFailure("a", 10.0),
            ]
        )
        assert [f.phone_id for f in plan] == ["a", "b"]

    def test_refailure_after_terminal_failure_rejected(self):
        with pytest.raises(ValueError, match="terminal failure"):
            FailurePlan(
                [PlannedFailure("p", 10.0), PlannedFailure("p", 20.0)]
            )

    def test_refailure_before_rejoin_rejected(self):
        with pytest.raises(ValueError, match="before rejoining"):
            FailurePlan(
                [
                    PlannedFailure("p", 10.0, rejoin_after_ms=50.0),
                    PlannedFailure("p", 30.0),
                ]
            )

    def test_refailure_at_exact_rejoin_instant_rejected(self):
        with pytest.raises(ValueError, match="rejoin"):
            FailurePlan(
                [
                    PlannedFailure("p", 10.0, rejoin_after_ms=20.0),
                    PlannedFailure("p", 30.0),
                ]
            )

    def test_refailure_after_rejoin_allowed(self):
        plan = FailurePlan(
            [
                PlannedFailure("p", 10.0, rejoin_after_ms=20.0),
                PlannedFailure("p", 40.0),
            ]
        )
        assert len(plan) == 2
        assert len(plan.all_for_phone("p")) == 2

    def test_flapping_builder(self):
        plan = FailurePlan.flapping(
            "p", first_ms=100.0, down_ms=50.0, up_ms=25.0, cycles=3
        )
        failures = plan.all_for_phone("p")
        assert [f.time_ms for f in failures] == [100.0, 175.0, 250.0]
        assert all(f.rejoin_after_ms == 50.0 for f in failures)

    def test_flapping_final_rejoin_false_is_terminal(self):
        plan = FailurePlan.flapping(
            "p", first_ms=0.0, down_ms=10.0, up_ms=10.0, cycles=2,
            final_rejoin=False,
        )
        failures = plan.all_for_phone("p")
        assert failures[-1].rejoin_after_ms is None
        assert failures[0].rejoin_after_ms == 10.0

    def test_merged_validates_combined_stream(self):
        a = FailurePlan([PlannedFailure("p", 10.0)])
        b = FailurePlan([PlannedFailure("p", 20.0)])
        with pytest.raises(ValueError, match="terminal failure"):
            a.merged(b)

    def test_for_phone(self):
        failure = PlannedFailure("p", 10.0, online=False)
        plan = FailurePlan([failure])
        assert plan.for_phone("p") == failure
        assert plan.phone_ids == frozenset({"p"})


class TestRandomUnplugModel:
    def night_quiet_probs(self):
        """Zero unplug risk at night, certain during the day."""
        return [0.0] * 8 + [1.0] * 16

    def test_needs_24_probabilities(self):
        with pytest.raises(ValueError, match="24"):
            RandomUnplugModel([0.1] * 23)

    def test_probability_bounds_enforced(self):
        probs = [0.5] * 24
        probs[3] = 1.5
        with pytest.raises(ValueError):
            RandomUnplugModel(probs)

    def test_online_fraction_bounds(self):
        with pytest.raises(ValueError):
            RandomUnplugModel([0.1] * 24, online_fraction=2.0)

    def test_no_failures_in_quiet_window(self):
        model = RandomUnplugModel(self.night_quiet_probs())
        plan = model.sample_plan(
            [f"p{i}" for i in range(20)],
            start_hour=0.0,
            duration_hours=8.0,
            rng=random.Random(1),
        )
        assert len(plan) == 0

    def test_certain_failures_in_risky_window(self):
        model = RandomUnplugModel(self.night_quiet_probs())
        plan = model.sample_plan(
            [f"p{i}" for i in range(20)],
            start_hour=9.0,
            duration_hours=2.0,
            rng=random.Random(1),
        )
        assert len(plan) == 20

    def test_failure_times_within_window(self):
        model = RandomUnplugModel([0.5] * 24)
        plan = model.sample_plan(
            [f"p{i}" for i in range(50)],
            start_hour=22.0,
            duration_hours=6.0,
            rng=random.Random(3),
        )
        for failure in plan:
            assert 0.0 <= failure.time_ms <= 6.0 * 3_600_000.0

    def test_at_most_one_failure_per_phone(self):
        model = RandomUnplugModel([1.0] * 24)
        plan = model.sample_plan(
            ["a", "b"], start_hour=0.0, duration_hours=24.0, rng=random.Random(2)
        )
        assert len(plan) == 2

    def test_deterministic_given_seed(self):
        model = RandomUnplugModel([0.3] * 24)
        args = dict(start_hour=12.0, duration_hours=10.0)
        plan_a = model.sample_plan(["a", "b", "c"], rng=random.Random(9), **args)
        plan_b = model.sample_plan(["a", "b", "c"], rng=random.Random(9), **args)
        assert [(f.phone_id, f.time_ms) for f in plan_a] == [
            (f.phone_id, f.time_ms) for f in plan_b
        ]

    def test_online_fraction_zero_gives_offline_failures(self):
        model = RandomUnplugModel([1.0] * 24, online_fraction=0.0)
        plan = model.sample_plan(
            ["a", "b", "c"], start_hour=0.0, duration_hours=1.0,
            rng=random.Random(4),
        )
        assert all(not f.online for f in plan)

    def test_zero_duration_rejected(self):
        model = RandomUnplugModel([0.1] * 24)
        with pytest.raises(ValueError):
            model.sample_plan(
                ["a"], start_hour=0.0, duration_hours=0.0, rng=random.Random(1)
            )
