"""Warm-started rescheduling through the simulated central server.

With ``CwcScheduler(warm_start=True)`` the capacity search at every
non-initial scheduling instant is seeded with the previous round's
capacity.  The run must be *observably identical* to a cold run — same
schedules, same simulated timeline — while issuing strictly fewer
Algorithm-1 packs whenever the hint lands inside the new bracket.

Two rescheduling shapes are covered:

* a **second wave** of overnight work arriving mid-round (Section 3.3's
  job-arrival instant): the new wave resembles the first, the previous
  capacity is a near-optimal hint, and the warm search skips most
  probes;
* a **phone failure**: the reschedule covers only the failed phone's
  leftovers, the old capacity is a poor (or infeasible) hint, and the
  warm search must degrade gracefully to the cold result.
"""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.core.serialize import schedule_to_dict
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.server import CentralServer


def make_setup(n_phones=4):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 200.0 * i)
        for i in range(n_phones)
    )
    profiles = {
        "primes": TaskProfile("primes", 10.0, 800.0),
        "blur": TaskProfile("blur", 20.0, 800.0),
    }
    truth = FleetGroundTruth(profiles, deviation_sigma=0.0, seed=1)
    predictor = RuntimePredictor(profiles)
    b = {p.phone_id: 2.0 for p in phones}
    return phones, truth, predictor, b


def make_batch(tag):
    jobs = [
        Job(f"{tag}b{i}", "primes", JobKind.BREAKABLE, 40.0, 700.0)
        for i in range(6)
    ]
    jobs += [
        Job(f"{tag}a{i}", "blur", JobKind.ATOMIC, 80.0, 250.0)
        for i in range(3)
    ]
    return tuple(jobs)


def run_two_waves(*, warm_start: bool):
    """First wave scheduled at t=0; a look-alike second wave arrives
    during round 0 and is batched into one rescheduling instant."""
    phones, truth, predictor, b = make_setup()
    server = CentralServer(
        phones, truth, predictor, CwcScheduler(warm_start=warm_start), b
    )
    arrivals = [(10.0 + i, job) for i, job in enumerate(make_batch("w2-"))]
    return server.run(make_batch("w1-"), arrivals=arrivals)


def run_with_failure(*, warm_start: bool):
    phones, truth, predictor, b = make_setup()
    plan = FailurePlan([PlannedFailure("p1", 2000.0, online=True)])
    server = CentralServer(
        phones,
        truth,
        predictor,
        CwcScheduler(warm_start=warm_start),
        b,
        failure_plan=plan,
    )
    return server.run(make_batch("w1-"))


@pytest.fixture(scope="module")
def wave_runs():
    return run_two_waves(warm_start=False), run_two_waves(warm_start=True)


@pytest.fixture(scope="module")
def failure_runs():
    return run_with_failure(warm_start=False), run_with_failure(
        warm_start=True
    )


def assert_observably_identical(cold, warm):
    assert len(warm.rounds) == len(cold.rounds)
    for cold_round, warm_round in zip(cold.rounds, warm.rounds):
        assert schedule_to_dict(warm_round.schedule) == schedule_to_dict(
            cold_round.schedule
        )
        assert warm_round.scheduled_at_ms == cold_round.scheduled_at_ms
        assert warm_round.job_ids == cold_round.job_ids
    assert warm.measured_makespan_ms == cold.measured_makespan_ms
    assert len(warm.trace.spans) == len(cold.trace.spans)


class TestSecondWaveArrival:
    def test_arrival_forces_a_second_round(self, wave_runs):
        cold, warm = wave_runs
        assert len(cold.rounds) == 2
        assert len(cold.rounds[1].job_ids) == 9

    def test_warm_run_is_observably_identical(self, wave_runs):
        cold, warm = wave_runs
        assert_observably_identical(cold, warm)
        assert not warm.unfinished_jobs

    def test_warm_start_engages_only_at_rescheduling_instants(
        self, wave_runs
    ):
        cold, warm = wave_runs
        assert not warm.rounds[0].warm_started
        assert warm.rounds[1].warm_started
        assert not any(r.warm_started for r in cold.rounds)

    def test_warm_start_reduces_packs_at_the_rescheduling_instant(
        self, wave_runs
    ):
        cold, warm = wave_runs
        assert warm.rounds[0].packer_passes == cold.rounds[0].packer_passes
        assert warm.rounds[1].packer_passes < cold.rounds[1].packer_passes

    def test_round_records_carry_scheduling_diagnostics(self, wave_runs):
        for result in wave_runs:
            for record in result.rounds:
                assert record.scheduling_wall_ms >= 0.0
                assert record.packer_passes >= 1
                assert record.bisection_steps >= 1


class TestFailureDegradesGracefully:
    """The failure reschedule covers a small leftover workload, so the
    previous capacity is a poor hint; correctness must not depend on
    hint quality."""

    def test_failure_forces_rescheduling(self, failure_runs):
        cold, warm = failure_runs
        assert len(cold.rounds) > 1

    def test_warm_run_is_observably_identical(self, failure_runs):
        cold, warm = failure_runs
        assert_observably_identical(cold, warm)
        assert not warm.unfinished_jobs

    def test_useless_hint_costs_at_most_its_verification_pack(
        self, failure_runs
    ):
        cold, warm = failure_runs
        for cold_round, warm_round in zip(cold.rounds[1:], warm.rounds[1:]):
            assert (
                warm_round.packer_passes <= cold_round.packer_passes + 1
            )
