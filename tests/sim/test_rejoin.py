"""Tests for phone re-entry after failure (Section 5's re-entry case)."""

import random

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure, RandomUnplugModel
from repro.sim.server import CentralServer

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def make_server(plan, n_phones=2):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 200.0 * i)
        for i in range(n_phones)
    )
    truth = FleetGroundTruth(PROFILES)
    predictor = RuntimePredictor(PROFILES)
    b = {p.phone_id: 2.0 for p in phones}
    return CentralServer(
        phones, truth, predictor, CwcScheduler(), b, failure_plan=plan
    )


def make_jobs(n=4, input_kb=800.0):
    return tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 40.0, input_kb)
        for i in range(n)
    )


class TestPlannedRejoin:
    def test_rejoin_validation(self):
        with pytest.raises(ValueError):
            PlannedFailure("p", 1.0, rejoin_after_ms=0.0)
        with pytest.raises(ValueError):
            PlannedFailure("p", 1.0, rejoin_after_ms=float("nan"))

    def test_rejoined_phone_receives_rescheduled_work(self):
        plan = FailurePlan(
            [PlannedFailure("p1", 2_000.0, online=True, rejoin_after_ms=5_000.0)]
        )
        server = make_server(plan)
        result = server.run(make_jobs())
        assert not result.unfinished_jobs
        # Work after the rejoin instant may land on p1 again.
        late_spans = [
            s for s in result.trace.spans_for("p1") if s.start_ms > 7_000.0
        ]
        done = sum(c.input_kb for c in result.trace.completions)
        processed = sum(f.processed_kb for f in result.trace.failures)
        assert done + processed == pytest.approx(
            sum(j.input_kb for j in make_jobs())
        )
        # The rejoin made p1 schedulable again; if the second round used
        # it, its spans must be marked rescheduled.
        for span in late_spans:
            assert span.rescheduled

    def test_fleet_collapse_recovers_after_rejoin(self):
        """Every phone unplugs; one comes back and finishes the backlog."""
        plan = FailurePlan(
            [
                PlannedFailure("p0", 1_000.0, online=True, rejoin_after_ms=60_000.0),
                PlannedFailure("p1", 1_500.0, online=True),
            ]
        )
        server = make_server(plan)
        result = server.run(make_jobs())
        assert not result.unfinished_jobs
        done = sum(c.input_kb for c in result.trace.completions)
        processed = sum(f.processed_kb for f in result.trace.failures)
        assert done + processed == pytest.approx(
            sum(j.input_kb for j in make_jobs())
        )

    def test_no_rejoin_still_loses_fleet(self):
        plan = FailurePlan(
            [
                PlannedFailure("p0", 1_000.0, online=True),
                PlannedFailure("p1", 1_500.0, online=True),
            ]
        )
        server = make_server(plan)
        result = server.run(make_jobs())
        assert result.unfinished_jobs

    def test_offline_blip_resumes_own_queue(self):
        """Connectivity lost and restored before keep-alive detection:
        the phone restarts its in-flight partition itself; the server
        never marks it failed."""
        plan = FailurePlan(
            [
                PlannedFailure(
                    "p1", 3_000.0, online=False, rejoin_after_ms=10_000.0
                )
            ]
        )
        server = make_server(plan)
        jobs = make_jobs()
        result = server.run(jobs)
        assert not result.unfinished_jobs
        # Detection takes 90 s; the blip healed at 13 s, so no failure
        # was ever recorded.
        assert result.trace.failures == []
        done = sum(c.input_kb for c in result.trace.completions)
        assert done == pytest.approx(sum(j.input_kb for j in jobs))
        # The lost attempt is visible as an interrupted span.
        assert any(s.interrupted for s in result.trace.spans_for("p1"))

    def test_rejoin_after_run_complete_is_harmless(self):
        plan = FailurePlan(
            [
                PlannedFailure(
                    "p1", 10_000_000.0, online=True, rejoin_after_ms=1_000.0
                )
            ]
        )
        server = make_server(plan)
        result = server.run(make_jobs())
        assert not result.unfinished_jobs


class TestUnplugModelRejoin:
    def test_rejoin_sampling(self):
        model = RandomUnplugModel(
            [1.0] * 24, rejoin_probability=1.0, rejoin_minutes=(5.0, 10.0)
        )
        plan = model.sample_plan(
            ["a", "b", "c"],
            start_hour=0.0,
            duration_hours=1.0,
            rng=random.Random(1),
        )
        assert len(plan) == 3
        for failure in plan:
            assert failure.rejoin_after_ms is not None
            assert 5 * 60_000.0 <= failure.rejoin_after_ms <= 10 * 60_000.0

    def test_zero_rejoin_probability_default(self):
        model = RandomUnplugModel([1.0] * 24)
        plan = model.sample_plan(
            ["a"], start_hour=0.0, duration_hours=1.0, rng=random.Random(2)
        )
        assert all(f.rejoin_after_ms is None for f in plan)

    def test_rejoin_validation(self):
        with pytest.raises(ValueError):
            RandomUnplugModel([0.1] * 24, rejoin_probability=1.5)
        with pytest.raises(ValueError):
            RandomUnplugModel([0.1] * 24, rejoin_minutes=(0.0, 5.0))
        with pytest.raises(ValueError):
            RandomUnplugModel([0.1] * 24, rejoin_minutes=(10.0, 5.0))
