"""Tests for the public trace-invariant validator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.server import CentralServer, RunResult
from repro.sim.trace import Span, SpanKind, TimelineTrace
from repro.sim.validation import TraceInvariantError, check_run_invariants

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def run_simulation(plan=None, n_phones=3, n_jobs=4):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 100.0 * i)
        for i in range(n_phones)
    )
    jobs = tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 30.0, 400.0 + 50.0 * i)
        for i in range(n_jobs)
    )
    server = CentralServer(
        phones,
        FleetGroundTruth(PROFILES),
        RuntimePredictor(PROFILES),
        CwcScheduler(),
        {p.phone_id: 2.0 for p in phones},
        failure_plan=plan or FailurePlan.none(),
    )
    return jobs, server.run(jobs)


class TestCleanRuns:
    def test_failure_free_run_validates(self):
        jobs, result = run_simulation()
        check_run_invariants(result, jobs)

    def test_online_failure_run_validates(self):
        plan = FailurePlan([PlannedFailure("p1", 2_000.0, online=True)])
        jobs, result = run_simulation(plan=plan)
        check_run_invariants(result, jobs)

    def test_offline_failure_run_validates(self):
        plan = FailurePlan([PlannedFailure("p1", 2_000.0, online=False)])
        jobs, result = run_simulation(plan=plan)
        check_run_invariants(result, jobs)

    def test_rejoin_run_validates(self):
        plan = FailurePlan(
            [PlannedFailure("p1", 2_000.0, online=True, rejoin_after_ms=5_000.0)]
        )
        jobs, result = run_simulation(plan=plan)
        check_run_invariants(result, jobs)

    @settings(max_examples=15, deadline=None)
    @given(
        time_ms=st.floats(min_value=1.0, max_value=100_000.0),
        online=st.booleans(),
    )
    def test_random_single_failures_validate(self, time_ms, online):
        plan = FailurePlan([PlannedFailure("p0", time_ms, online=online)])
        jobs, result = run_simulation(plan=plan)
        check_run_invariants(result, jobs)


class TestViolationsDetected:
    def corrupt_result(self, spans):
        trace = TimelineTrace()
        for span in spans:
            trace.add_span(span)
        return RunResult(trace=trace, rounds=[])

    def test_overlapping_spans_detected(self):
        result = self.corrupt_result(
            [
                Span("p", "j", SpanKind.COPY, 0.0, 100.0, input_kb=1.0),
                Span("p", "j", SpanKind.EXECUTE, 50.0, 150.0, input_kb=1.0),
            ]
        )
        with pytest.raises(TraceInvariantError, match="overlaps"):
            check_run_invariants(result, ())

    def test_execute_without_copy_detected(self):
        result = self.corrupt_result(
            [Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0)]
        )
        with pytest.raises(TraceInvariantError, match="without ever copying"):
            check_run_invariants(result, ())

    def test_lost_input_detected(self):
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 10.0, 500.0),)
        result = RunResult(trace=TimelineTrace(), rounds=[])
        with pytest.raises(TraceInvariantError, match="not conserved"):
            check_run_invariants(result, jobs)

    def test_clean_empty_run(self):
        result = RunResult(trace=TimelineTrace(), rounds=[])
        check_run_invariants(result, ())
