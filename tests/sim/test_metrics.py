"""Tests for run-metric computation."""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.metrics import compute_run_metrics
from repro.sim.server import CentralServer
from repro.sim.trace import Span, SpanKind, TimelineTrace


def synthetic_trace():
    trace = TimelineTrace()
    # p0: copy 10, execute 40 -> busy 50, finish 50.
    trace.add_span(Span("p0", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0))
    trace.add_span(Span("p0", "j", SpanKind.EXECUTE, 10.0, 50.0, input_kb=1.0))
    # p1: copy 20, execute 60, idle gap, execute 10 -> busy 90, finish 100.
    trace.add_span(Span("p1", "k", SpanKind.COPY, 0.0, 20.0, input_kb=1.0))
    trace.add_span(Span("p1", "k", SpanKind.EXECUTE, 20.0, 80.0, input_kb=1.0))
    trace.add_span(Span("p1", "m", SpanKind.EXECUTE, 90.0, 100.0, input_kb=1.0))
    return trace


class TestSyntheticMetrics:
    def test_per_phone_utilisation(self):
        metrics = compute_run_metrics(synthetic_trace())
        p0 = metrics.phone("p0")
        assert p0.busy_ms == 50.0
        assert p0.copy_ms == 10.0
        assert p0.copy_fraction == pytest.approx(0.2)
        assert p0.partitions == 1
        p1 = metrics.phone("p1")
        assert p1.busy_ms == 90.0
        assert p1.partitions == 2

    def test_parallel_efficiency(self):
        metrics = compute_run_metrics(synthetic_trace())
        # (50 + 90) / (2 * 100)
        assert metrics.parallel_efficiency == pytest.approx(0.7)

    def test_finish_spread(self):
        metrics = compute_run_metrics(synthetic_trace())
        assert metrics.finish_spread_fraction == pytest.approx(0.5)

    def test_unknown_phone_raises(self):
        metrics = compute_run_metrics(synthetic_trace())
        with pytest.raises(KeyError):
            metrics.phone("ghost")

    def test_empty_trace(self):
        metrics = compute_run_metrics(TimelineTrace())
        assert metrics.parallel_efficiency == 0.0
        assert metrics.finish_spread_fraction == 0.0
        assert metrics.active_phone_count == 0


class TestMetricsOnRealRun:
    def test_simulated_run_is_reasonably_efficient(self):
        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(4)
        )
        profiles = {"primes": TaskProfile("primes", 10.0, 1000.0)}
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 1.0 for p in phones},
        )
        jobs = tuple(
            Job(f"j{i}", "primes", JobKind.BREAKABLE, 20.0, 1000.0)
            for i in range(8)
        )
        result = server.run(jobs)
        metrics = compute_run_metrics(result.trace)
        assert metrics.active_phone_count == 4
        # Identical phones, divisible work: efficiency should be high.
        assert metrics.parallel_efficiency > 0.8
        assert metrics.finish_spread_fraction < 0.2
        # Copies are a small share of busy time at b=1, c=10.
        assert metrics.mean_copy_fraction < 0.25


class TestResilienceReportEdgeCases:
    """compute_resilience_report on degenerate and adversarial runs."""

    def test_empty_trace_reports_all_zeros(self):
        from repro.sim.metrics import compute_resilience_report
        from repro.sim.server import RunResult

        report = compute_resilience_report(
            RunResult(trace=TimelineTrace(), rounds=[])
        )
        assert report.total_faults_injected == 0
        assert report.completed_partitions == 0
        assert report.failures_detected == 0
        assert report.retries == 0
        assert report.wasted_fraction == 0.0
        assert report.makespan_inflation == 0.0
        # Deterministic serialisation even when there is nothing to say.
        assert report.to_json() == report.to_json()

    def test_zero_completions_when_every_phone_fails(self):
        from repro.sim.failures import FailurePlan, PlannedFailure
        from repro.sim.metrics import compute_resilience_report

        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(3)
        )
        profiles = {"primes": TaskProfile("primes", 10.0, 1000.0)}
        plan = FailurePlan(
            [PlannedFailure(p.phone_id, 1.0, online=True) for p in phones]
        )
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 1.0 for p in phones},
            failure_plan=plan,
        )
        jobs = tuple(
            Job(f"j{i}", "primes", JobKind.BREAKABLE, 20.0, 1000.0)
            for i in range(4)
        )
        result = server.run(jobs)
        assert not result.trace.completions
        assert len(result.unfinished_jobs) == len(jobs)

        report = compute_resilience_report(result)
        assert report.completed_partitions == 0
        assert report.failures_detected == 3
        assert report.unfinished_jobs == len(jobs)
        # Everything the phones did before dying produced no credit.
        if report.total_work_ms > 0:
            assert report.wasted_fraction == 1.0

        metrics = compute_run_metrics(result.trace)
        assert 0.0 <= metrics.parallel_efficiency <= 1.0

    def test_all_phones_silently_offline(self):
        from repro.sim.failures import FailurePlan, PlannedFailure
        from repro.sim.metrics import compute_resilience_report

        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(2)
        )
        profiles = {"primes": TaskProfile("primes", 10.0, 1000.0)}
        plan = FailurePlan(
            [PlannedFailure(p.phone_id, 1.0, online=False) for p in phones]
        )
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 1.0 for p in phones},
            failure_plan=plan,
        )
        jobs = (Job("j0", "primes", JobKind.BREAKABLE, 20.0, 1000.0),)
        result = server.run(jobs)
        report = compute_resilience_report(result)
        # Offline failures are detected late (keep-alive timeout), but
        # they are detected, and no work ever completes.
        assert report.failures_detected == 2
        assert all(not f.online for f in result.trace.failures)
        assert all(
            f.detected_at_ms > f.failed_at_ms for f in result.trace.failures
        )
        assert report.completed_partitions == 0
        assert report.unfinished_jobs == 1

    def test_every_task_retried_chaos_run(self):
        from repro.sim.chaos import ChaosPlan, ResiliencePolicy, TaskCrash
        from repro.sim.metrics import compute_resilience_report

        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(2)
        )
        profiles = {"primes": TaskProfile("primes", 10.0, 1000.0)}
        # Crash whatever is running on both phones shortly after the
        # first dispatch: every initially-assigned task dies once.
        chaos = ChaosPlan(
            crashes=(TaskCrash("p0", 50.0), TaskCrash("p1", 50.0))
        )
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 1.0 for p in phones},
            chaos=chaos,
            resilience=ResiliencePolicy.hardened(),
        )
        jobs = tuple(
            Job(f"j{i}", "primes", JobKind.ATOMIC, 20.0, 1000.0)
            for i in range(2)
        )
        result = server.run(jobs)
        report = compute_resilience_report(result)
        assert report.faults_injected.get("task_crash") == 2
        # One retry per job: every task was retried at least once and
        # the run still finishes everything.
        assert report.retries >= len(jobs)
        assert report.completed_partitions >= len(jobs)
        assert report.unfinished_jobs == 0
        assert report.wasted_work_ms > 0
        assert 0.0 < report.wasted_fraction < 1.0

    def test_report_with_baseline_inflation(self):
        from repro.sim.metrics import compute_resilience_report
        from repro.sim.server import RunResult

        trace = synthetic_trace()
        report = compute_resilience_report(
            RunResult(trace=trace, rounds=[]),
            baseline_makespan_ms=50.0,
        )
        assert report.makespan_inflation == pytest.approx(100.0 / 50.0)
        assert "makespan inflation" in "\n".join(report.summary_lines())
