"""Tests for timeline traces and their derived statistics."""

import pytest

from repro.sim.trace import (
    CompletionRecord,
    FailureRecord,
    Span,
    SpanKind,
    TimelineTrace,
)


def span(phone="p0", job="j0", kind=SpanKind.EXECUTE, start=0.0, end=10.0, **kw):
    return Span(
        phone_id=phone,
        job_id=job,
        kind=kind,
        start_ms=start,
        end_ms=end,
        input_kb=100.0,
        **kw,
    )


class TestSpan:
    def test_duration(self):
        assert span(start=5.0, end=25.0).duration_ms == 20.0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            span(start=10.0, end=5.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            span(start=float("nan"), end=5.0)

    def test_zero_length_span_allowed(self):
        assert span(start=5.0, end=5.0).duration_ms == 0.0


class TestTraceQueries:
    def make_trace(self):
        trace = TimelineTrace()
        trace.add_span(span(phone="p0", kind=SpanKind.COPY, start=0, end=10))
        trace.add_span(span(phone="p0", kind=SpanKind.EXECUTE, start=10, end=50))
        trace.add_span(span(phone="p1", kind=SpanKind.COPY, start=0, end=20))
        trace.add_span(
            span(phone="p1", kind=SpanKind.EXECUTE, start=20, end=80)
        )
        trace.add_span(
            span(
                phone="p0",
                job="retry",
                kind=SpanKind.EXECUTE,
                start=80,
                end=120,
                rescheduled=True,
            )
        )
        return trace

    def test_makespan(self):
        assert self.make_trace().makespan_ms() == 120.0

    def test_original_makespan_excludes_rescheduled(self):
        assert self.make_trace().original_makespan_ms() == 80.0

    def test_reschedule_overhead(self):
        assert self.make_trace().reschedule_overhead_ms() == 40.0

    def test_no_reschedule_zero_overhead(self):
        trace = TimelineTrace()
        trace.add_span(span())
        assert trace.reschedule_overhead_ms() == 0.0

    def test_finish_time_per_phone(self):
        trace = self.make_trace()
        assert trace.finish_time_ms("p0") == 120.0
        assert trace.finish_time_ms("p1") == 80.0
        assert trace.finish_time_ms("ghost") == 0.0

    def test_busy_and_copy_time(self):
        trace = self.make_trace()
        assert trace.busy_ms("p1") == 80.0
        assert trace.copy_ms("p1") == 20.0
        assert trace.copy_ms("p0") == 10.0

    def test_phone_ids_preserve_first_seen_order(self):
        assert self.make_trace().phone_ids() == ("p0", "p1")

    def test_empty_trace(self):
        trace = TimelineTrace()
        assert trace.makespan_ms() == 0.0
        assert trace.phone_ids() == ()


class TestCompletions:
    def test_completed_kb_sums_per_job(self):
        trace = TimelineTrace()
        for kb in (100.0, 250.0):
            trace.add_completion(
                CompletionRecord(
                    phone_id="p0",
                    job_id="j",
                    time_ms=1.0,
                    input_kb=kb,
                    local_execution_ms=10.0,
                )
            )
        assert trace.completed_kb("j") == 350.0
        assert trace.completed_kb("other") == 0.0
        assert trace.completed_job_ids() == frozenset({"j"})

    def test_failures_recorded(self):
        trace = TimelineTrace()
        trace.add_failure(
            FailureRecord(
                phone_id="p0",
                failed_at_ms=5.0,
                detected_at_ms=95.0,
                online=False,
            )
        )
        assert len(trace.failures) == 1
        assert trace.failures[0].detected_at_ms > trace.failures[0].failed_at_ms
