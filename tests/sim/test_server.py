"""Integration-grade tests for the simulated central server."""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.server import CentralServer
from repro.sim.trace import SpanKind


def make_setup(
    n_phones=3,
    efficiencies=None,
    alpha=0.5,
    deviation_sigma=0.0,
):
    efficiencies = efficiencies or [1.0] * n_phones
    phones = tuple(
        PhoneSpec(
            phone_id=f"p{i}",
            cpu_mhz=800.0 + 200.0 * i,
            cpu_efficiency=efficiencies[i],
        )
        for i in range(n_phones)
    )
    profiles = {
        "primes": TaskProfile("primes", 10.0, 800.0),
        "blur": TaskProfile("blur", 20.0, 800.0),
    }
    truth = FleetGroundTruth(profiles, deviation_sigma=deviation_sigma, seed=1)
    predictor = RuntimePredictor(profiles, alpha=alpha)
    b = {p.phone_id: 2.0 for p in phones}
    return phones, truth, predictor, b


def make_jobs(n_breakable=4, n_atomic=2, input_kb=500.0):
    jobs = [
        Job(f"b{i}", "primes", JobKind.BREAKABLE, 40.0, input_kb)
        for i in range(n_breakable)
    ]
    jobs += [
        Job(f"a{i}", "blur", JobKind.ATOMIC, 80.0, input_kb / 2)
        for i in range(n_atomic)
    ]
    return tuple(jobs)


def total_input(jobs):
    return sum(j.input_kb for j in jobs)


class TestHappyPath:
    def test_run_completes_all_work(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        jobs = make_jobs()
        result = server.run(jobs)
        assert not result.unfinished_jobs
        assert len(result.rounds) == 1
        done = sum(c.input_kb for c in result.trace.completions)
        assert done == pytest.approx(total_input(jobs))

    def test_no_failures_recorded_without_plan(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        result = server.run(make_jobs())
        assert result.trace.failures == []

    def test_prediction_matches_measurement_when_truth_is_clock_scaled(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        result = server.run(make_jobs())
        # Truth == prediction here, so predicted ≈ measured makespan.
        assert result.measured_makespan_ms == pytest.approx(
            result.predicted_makespan_ms, rel=0.01
        )

    def test_spans_on_each_phone_are_sequential(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        result = server.run(make_jobs())
        for pid in result.trace.phone_ids():
            spans = sorted(result.trace.spans_for(pid), key=lambda s: s.start_ms)
            for earlier, later in zip(spans, spans[1:]):
                assert later.start_ms >= earlier.end_ms - 1e-9

    def test_every_execute_follows_its_copy(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        result = server.run(make_jobs())
        for pid in result.trace.phone_ids():
            spans = sorted(result.trace.spans_for(pid), key=lambda s: s.start_ms)
            kinds = [s.kind for s in spans]
            # Copies and executes strictly alternate on a healthy phone.
            for i in range(0, len(kinds) - 1, 2):
                assert kinds[i] is SpanKind.COPY
                assert kinds[i + 1] is SpanKind.EXECUTE

    def test_executable_shipped_once_per_phone_job(self):
        """The first copy of a job to a phone is longer (exe + input);
        later partitions of the same job copy input only."""
        phones, truth, predictor, b = make_setup(n_phones=1)
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 400.0, 1000.0),)
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        result = server.run(jobs)
        copies = [
            s for s in result.trace.spans if s.kind is SpanKind.COPY
        ]
        assert copies  # at least one
        first = copies[0]
        expected = (400.0 + first.input_kb) * 2.0
        assert first.duration_ms == pytest.approx(expected)

    def test_learning_updates_predictor(self):
        phones, truth, predictor, b = make_setup(
            efficiencies=[1.4, 1.0, 1.0], alpha=1.0
        )
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        server.run(make_jobs())
        learned = predictor.learned_pairs()
        assert learned  # completions reported measured times
        # The efficient phone's learned rate must beat its clock-scaled one.
        fast = phones[0]
        if (fast.phone_id, "primes") in learned:
            clock_scaled = 10.0 * 800.0 / fast.cpu_mhz
            assert learned[(fast.phone_id, "primes")] < clock_scaled

    def test_on_result_callback_invoked_per_partition(self):
        phones, truth, predictor, b = make_setup()
        seen = []
        server = CentralServer(
            phones,
            truth,
            predictor,
            CwcScheduler(),
            b,
            on_result=lambda job_id, task, pid, kb, payload: seen.append(job_id),
        )
        result = server.run(make_jobs())
        assert len(seen) == len(result.trace.completions)

    def test_compute_slowdown_stretches_makespan(self):
        phones, truth, predictor, b = make_setup()
        plain = CentralServer(phones, truth, predictor, CwcScheduler(), b).run(
            make_jobs()
        )
        phones2, truth2, predictor2, b2 = make_setup()
        throttled = CentralServer(
            phones2,
            truth2,
            predictor2,
            CwcScheduler(),
            b2,
            compute_slowdown={p.phone_id: 1.5 for p in phones2},
        ).run(make_jobs())
        assert (
            throttled.measured_makespan_ms > plain.measured_makespan_ms
        )


class TestOnlineFailures:
    def run_with_failure(self, time_ms, jobs=None):
        phones, truth, predictor, b = make_setup()
        plan = FailurePlan([PlannedFailure("p1", time_ms, online=True)])
        server = CentralServer(
            phones, truth, predictor, CwcScheduler(), b, failure_plan=plan
        )
        return server.run(jobs or make_jobs())

    def test_work_is_migrated_and_completed(self):
        jobs = make_jobs()
        result = self.run_with_failure(2000.0, jobs)
        assert not result.unfinished_jobs
        done = sum(c.input_kb for c in result.trace.completions)
        processed_at_failure = sum(
            f.processed_kb for f in result.trace.failures
        )
        assert done + processed_at_failure == pytest.approx(total_input(jobs))

    def test_failure_recorded_with_immediate_detection(self):
        result = self.run_with_failure(2000.0)
        (failure,) = result.trace.failures
        assert failure.online
        assert failure.detected_at_ms == failure.failed_at_ms

    def test_rescheduled_work_marked(self):
        result = self.run_with_failure(2000.0)
        if len(result.rounds) > 1:
            rescheduled = [s for s in result.trace.spans if s.rescheduled]
            assert rescheduled

    def test_failed_phone_gets_no_more_work(self):
        result = self.run_with_failure(2000.0)
        for span in result.trace.spans_for("p1"):
            assert span.start_ms <= 2000.0

    def test_failure_after_completion_is_harmless(self):
        result = self.run_with_failure(10_000_000.0)
        assert not result.unfinished_jobs
        assert len(result.rounds) == 1

    def test_interrupted_span_recorded(self):
        result = self.run_with_failure(2000.0)
        interrupted = [s for s in result.trace.spans if s.interrupted]
        assert interrupted
        for span in interrupted:
            assert span.end_ms == pytest.approx(2000.0)


class TestOfflineFailures:
    def run_with_offline_failure(self, time_ms, jobs=None):
        phones, truth, predictor, b = make_setup()
        plan = FailurePlan([PlannedFailure("p1", time_ms, online=False)])
        server = CentralServer(
            phones, truth, predictor, CwcScheduler(), b, failure_plan=plan
        )
        return server.run(jobs or make_jobs())

    def test_detection_is_delayed_by_keepalive(self):
        result = self.run_with_offline_failure(2000.0)
        (failure,) = result.trace.failures
        assert not failure.online
        assert failure.failed_at_ms == pytest.approx(2000.0)
        # 30 s probes, 3 misses -> detection at 90 s.
        assert failure.detected_at_ms == pytest.approx(90_000.0)

    def test_offline_progress_is_lost_but_work_completes(self):
        jobs = make_jobs()
        result = self.run_with_offline_failure(2000.0, jobs)
        assert not result.unfinished_jobs
        # All input is completed by surviving phones (progress lost, so
        # completions cover the *full* input).
        done = sum(c.input_kb for c in result.trace.completions)
        assert done == pytest.approx(total_input(jobs))

    def test_offline_failure_reports_zero_processed(self):
        result = self.run_with_offline_failure(2000.0)
        (failure,) = result.trace.failures
        assert failure.processed_kb == 0.0


class TestFleetCollapse:
    def test_all_phones_fail_leaves_unfinished(self):
        phones, truth, predictor, b = make_setup(n_phones=2)
        plan = FailurePlan(
            [
                PlannedFailure("p0", 1000.0, online=True),
                PlannedFailure("p1", 2000.0, online=True),
            ]
        )
        server = CentralServer(
            phones, truth, predictor, CwcScheduler(), b, failure_plan=plan
        )
        result = server.run(make_jobs())
        assert result.unfinished_jobs

    def test_max_rounds_caps_rescheduling(self):
        phones, truth, predictor, b = make_setup()
        plan = FailurePlan([PlannedFailure("p1", 1000.0, online=True)])
        server = CentralServer(
            phones,
            truth,
            predictor,
            CwcScheduler(),
            b,
            failure_plan=plan,
            max_rounds=1,
        )
        result = server.run(make_jobs())
        assert len(result.rounds) <= 1


class TestArrivals:
    def test_late_arrival_is_scheduled_in_new_round(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        late = Job("late", "primes", JobKind.BREAKABLE, 40.0, 300.0)
        jobs = make_jobs(n_breakable=2, n_atomic=0)
        result = server.run(jobs, arrivals=[(1_000_000.0, late)])
        assert "late" in result.trace.completed_job_ids()
        assert len(result.rounds) == 2
        done = sum(c.input_kb for c in result.trace.completions)
        assert done == pytest.approx(total_input(jobs) + late.input_kb)

    def test_arrival_during_round_waits_for_next_instant(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        late = Job("late", "primes", JobKind.BREAKABLE, 40.0, 300.0)
        result = server.run(make_jobs(), arrivals=[(10.0, late)])
        assert "late" in result.trace.completed_job_ids()
        late_round = next(
            r for r in result.rounds if "late" in r.job_ids
        )
        assert late_round.round_index > 0


class TestValidation:
    def test_unknown_failure_phone_rejected(self):
        phones, truth, predictor, b = make_setup()
        plan = FailurePlan([PlannedFailure("ghost", 1.0)])
        server = CentralServer(
            phones, truth, predictor, CwcScheduler(), b, failure_plan=plan
        )
        with pytest.raises(ValueError, match="ghost"):
            server.run(make_jobs())

    def test_missing_b_rejected(self):
        phones, truth, predictor, _ = make_setup()
        with pytest.raises(ValueError, match="missing measured b_i"):
            CentralServer(phones, truth, predictor, CwcScheduler(), {})

    def test_empty_jobs_rejected(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        with pytest.raises(ValueError):
            server.run(())

    def test_deterministic_runs(self):
        def one_run():
            phones, truth, predictor, b = make_setup()
            server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
            result = server.run(make_jobs())
            return [
                (s.phone_id, s.job_id, s.start_ms, s.end_ms)
                for s in result.trace.spans
            ]

        assert one_run() == one_run()
