"""Tests for ground-truth fleet runtimes."""

import pytest

from repro.core.model import PhoneSpec
from repro.core.prediction import TaskProfile
from repro.sim.entities import FleetGroundTruth, PhoneRuntime, PhoneState

PROFILES = {"t": TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=800.0)}


class TestFleetGroundTruth:
    def test_clock_proportional_without_deviation(self):
        truth = FleetGroundTruth(PROFILES)
        fast = PhoneSpec(phone_id="fast", cpu_mhz=1600.0)
        assert truth.true_ms_per_kb(fast, "t") == pytest.approx(5.0)

    def test_efficiency_factor_applies(self):
        truth = FleetGroundTruth(PROFILES)
        phone = PhoneSpec(phone_id="p", cpu_mhz=800.0, cpu_efficiency=2.0)
        assert truth.true_ms_per_kb(phone, "t") == pytest.approx(5.0)

    def test_deviation_is_deterministic_per_pair(self):
        truth_a = FleetGroundTruth(PROFILES, deviation_sigma=0.2, seed=5)
        truth_b = FleetGroundTruth(PROFILES, deviation_sigma=0.2, seed=5)
        phone = PhoneSpec(phone_id="p", cpu_mhz=1000.0)
        assert truth_a.true_ms_per_kb(phone, "t") == truth_b.true_ms_per_kb(
            phone, "t"
        )

    def test_deviation_differs_across_seeds(self):
        phone = PhoneSpec(phone_id="p", cpu_mhz=1000.0)
        values = {
            FleetGroundTruth(PROFILES, deviation_sigma=0.3, seed=s).true_ms_per_kb(
                phone, "t"
            )
            for s in range(5)
        }
        assert len(values) > 1

    def test_unknown_task_raises(self):
        truth = FleetGroundTruth(PROFILES)
        with pytest.raises(KeyError):
            truth.true_ms_per_kb(PhoneSpec(phone_id="p", cpu_mhz=800.0), "nope")

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            FleetGroundTruth(PROFILES, deviation_sigma=-0.1)

    def test_measured_speedup_reference_is_one(self):
        truth = FleetGroundTruth(PROFILES)
        ref = PhoneSpec(phone_id="ref", cpu_mhz=800.0)
        assert truth.measured_speedup(ref, ref, "t") == pytest.approx(1.0)

    def test_measured_speedup_matches_clock_ratio(self):
        truth = FleetGroundTruth(PROFILES)
        ref = PhoneSpec(phone_id="ref", cpu_mhz=800.0)
        fast = PhoneSpec(phone_id="fast", cpu_mhz=1200.0)
        assert truth.measured_speedup(fast, ref, "t") == pytest.approx(1.5)


class TestPhoneRuntime:
    def make(self, **kw):
        spec = PhoneSpec(phone_id="p", cpu_mhz=800.0)
        defaults = dict(spec=spec, true_b_ms_per_kb=2.0)
        defaults.update(kw)
        return PhoneRuntime(**defaults)

    def test_copy_time(self):
        assert self.make().copy_time_ms(50.0) == pytest.approx(100.0)

    def test_execute_time_includes_slowdown(self):
        runtime = self.make(compute_slowdown=1.25)
        truth = FleetGroundTruth(PROFILES)
        assert runtime.execute_time_ms(truth, "t", 10.0) == pytest.approx(125.0)

    def test_negative_kb_rejected(self):
        with pytest.raises(ValueError):
            self.make().copy_time_ms(-1.0)
        with pytest.raises(ValueError):
            self.make().execute_time_ms(FleetGroundTruth(PROFILES), "t", -1.0)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ValueError):
            self.make(compute_slowdown=0.5)

    def test_availability_by_state(self):
        runtime = self.make()
        for state in (PhoneState.IDLE, PhoneState.COPYING, PhoneState.EXECUTING):
            runtime.state = state
            assert runtime.available
        for state in (PhoneState.UNPLUGGED, PhoneState.OFFLINE):
            runtime.state = state
            assert not runtime.available
