"""Property-based tests of the central server's conservation invariants.

Whatever failures are injected, CWC must neither lose nor duplicate
input coverage: for every job, the input completed across all phones
plus the checkpointed progress (online failures save their partial
results at the server) plus whatever ends the run unfinished must
exactly equal the job's input.  Offline failures lose their in-flight
partition's *progress* (wall-clock work is redone) but the partition's
input is still completed exactly once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.server import CentralServer

PROFILES = {
    "primes": TaskProfile("primes", 10.0, 800.0),
    "blur": TaskProfile("blur", 20.0, 800.0),
}


def run_with_plan(failure_specs, n_phones=3, n_jobs=5):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 150.0 * i)
        for i in range(n_phones)
    )
    jobs = tuple(
        Job(
            f"j{i}",
            "primes" if i % 2 == 0 else "blur",
            JobKind.BREAKABLE if i % 3 else JobKind.ATOMIC,
            40.0,
            300.0 + 100.0 * i,
        )
        for i in range(n_jobs)
    )
    plan = FailurePlan(
        PlannedFailure(f"p{index % n_phones}", time_ms, online=online)
        for index, (time_ms, online) in enumerate(failure_specs)
    )
    truth = FleetGroundTruth(PROFILES)
    predictor = RuntimePredictor(PROFILES)
    b = {p.phone_id: 2.0 for p in phones}
    server = CentralServer(
        phones, truth, predictor, CwcScheduler(), b, failure_plan=plan
    )
    return jobs, server.run(jobs)


@st.composite
def failure_specs(draw):
    """Up to 3 distinct-phone failures at arbitrary instants."""
    count = draw(st.integers(min_value=0, max_value=3))
    specs = []
    for _ in range(count):
        specs.append(
            (
                draw(st.floats(min_value=1.0, max_value=300_000.0)),
                draw(st.booleans()),
            )
        )
    return specs


class TestConservation:
    @settings(max_examples=30, deadline=None)
    @given(specs=failure_specs())
    def test_no_work_lost_or_duplicated(self, specs):
        jobs, result = run_with_plan(specs)
        total_input = sum(job.input_kb for job in jobs)

        completed = sum(c.input_kb for c in result.trace.completions)
        checkpointed = sum(f.processed_kb for f in result.trace.failures)
        unfinished = sum(job.input_kb for job in result.unfinished_jobs)

        # Every KB of input is accounted exactly once: either a phone
        # completed it (offline failures re-complete their lost
        # partition, which never produced a completion the first time),
        # or an online failure checkpointed it (the server banks the
        # partial result), or it ended the run unfinished.
        assert completed + checkpointed + unfinished == pytest.approx(
            total_input, rel=1e-6
        )

    @settings(max_examples=20, deadline=None)
    @given(specs=failure_specs())
    def test_atomic_jobs_complete_on_single_phone_per_attempt(self, specs):
        jobs, result = run_with_plan(specs)
        atomic_ids = {job.job_id for job in jobs if job.is_atomic}
        for job_id in atomic_ids:
            completions = [
                c for c in result.trace.completions if c.job_id == job_id
            ]
            # An atomic job may be re-run after failure, but each
            # completion covers its full (remaining) input in one piece
            # on one phone.
            for completion in completions:
                assert completion.input_kb > 0

    @settings(max_examples=20, deadline=None)
    @given(specs=failure_specs())
    def test_failed_phones_never_work_after_detection(self, specs):
        _, result = run_with_plan(specs)
        for failure in result.trace.failures:
            for span in result.trace.spans_for(failure.phone_id):
                assert span.start_ms <= failure.detected_at_ms + 1e-6
