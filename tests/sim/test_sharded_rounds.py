"""The server's RoundRecord carries sharding context end to end."""

from repro.core.greedy import CwcScheduler
from repro.core.sharding import ShardedScheduler
from repro.sim.server import CentralServer

from .test_server import make_jobs, make_setup


def test_round_record_defaults_for_monolithic_scheduler():
    phones, truth, predictor, b = make_setup()
    server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
    result = server.run(make_jobs())
    record = result.rounds[0]
    assert record.pods == 1
    assert record.pod_assign == "none"
    assert record.pod_solve_ms_max == 0.0
    assert record.pod_solve_ms_sum == 0.0
    assert record.shard_bound_ratio == 0.0


def test_round_record_reports_sharding_context():
    phones, truth, predictor, b = make_setup(n_phones=8)
    scheduler = ShardedScheduler(pods=2, pod_workers=None)
    server = CentralServer(phones, truth, predictor, scheduler, b)
    result = server.run(make_jobs(n_breakable=6, n_atomic=2))
    record = result.rounds[0]
    assert record.pods == 2
    assert record.pod_assign == "greedy"
    assert record.pod_solve_ms_max > 0.0
    assert record.pod_solve_ms_sum >= record.pod_solve_ms_max
    assert record.shard_bound_ratio >= 1.0 - 1e-9
    assert len(result.unfinished_jobs) == 0


def test_campaign_threads_sharding_knobs():
    from repro.sim.campaign import ContinuousCampaign

    plain = ContinuousCampaign(seed=31)
    assert isinstance(plain._scheduler, CwcScheduler)
    sharded = ContinuousCampaign(
        seed=31, pods=2, pod_assign="hash", pod_workers=None
    )
    assert isinstance(sharded._scheduler, ShardedScheduler)
    result = sharded.run(1)
    assert result.total_submitted > 0


def test_round_record_sharded_pods1_reports_monolithic_context():
    phones, truth, predictor, b = make_setup()
    scheduler = ShardedScheduler(pods=1)
    server = CentralServer(phones, truth, predictor, scheduler, b)
    result = server.run(make_jobs())
    record = result.rounds[0]
    assert record.pods == 1
    assert record.pod_assign == "none"
    # Monolithic delegation still reports a diagnostic ratio.
    assert record.shard_bound_ratio > 0.0
