"""Tests for chaos injection and the resilient central server."""

import random

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.migration import FailureKind
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.netmodel.links import DegradationSchedule
from repro.sim.chaos import (
    BandwidthDegradation,
    ChaosMonkey,
    ChaosPlan,
    CpuSlowdown,
    ResiliencePolicy,
    ResultCorruption,
    TaskCrash,
)
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.metrics import compute_resilience_report
from repro.sim.server import CentralServer
from repro.sim.validation import check_run_invariants


def make_setup(n_phones=3, alpha=0.5):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 200.0 * i)
        for i in range(n_phones)
    )
    profiles = {"primes": TaskProfile("primes", 10.0, 800.0)}
    truth = FleetGroundTruth(profiles)
    predictor = RuntimePredictor(profiles, alpha=alpha)
    b = {p.phone_id: 2.0 for p in phones}
    return phones, truth, predictor, b


def make_jobs(n=4, input_kb=500.0):
    return tuple(
        Job(f"b{i}", "primes", JobKind.BREAKABLE, 40.0, input_kb)
        for i in range(n)
    )


def run_server(phones, truth, predictor, b, jobs, **kwargs):
    server = CentralServer(
        phones, truth, predictor, CwcScheduler(), b, **kwargs
    )
    result = server.run(jobs)
    check_run_invariants(result, jobs)
    return result


def total_input(jobs):
    return sum(j.input_kb for j in jobs)


def completed_kb(result):
    return sum(c.input_kb for c in result.trace.completions)


class TestDegradationSchedule:
    def test_empty_schedule_is_identity(self):
        schedule = DegradationSchedule()
        assert not schedule
        assert schedule.factor_at(0.0) == 1.0
        assert schedule.worst_factor() == 1.0

    def test_segment_boundaries(self):
        schedule = DegradationSchedule([(100.0, 200.0, 4.0)])
        assert schedule.factor_at(99.9) == 1.0
        assert schedule.factor_at(100.0) == 4.0  # start inclusive
        assert schedule.factor_at(199.9) == 4.0
        assert schedule.factor_at(200.0) == 1.0  # end exclusive

    def test_open_ended_segment(self):
        schedule = DegradationSchedule([(50.0, None, 3.0)])
        assert schedule.factor_at(1e12) == 3.0

    def test_overlapping_segments_compound(self):
        schedule = DegradationSchedule(
            [(0.0, 100.0, 2.0), (50.0, 150.0, 3.0)]
        )
        assert schedule.factor_at(75.0) == 6.0
        assert schedule.worst_factor() == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationSchedule([(-1.0, 10.0, 2.0)])
        with pytest.raises(ValueError):
            DegradationSchedule([(10.0, 5.0, 2.0)])
        with pytest.raises(ValueError):
            DegradationSchedule([(0.0, 10.0, 0.0)])


class TestChaosPlan:
    def test_empty_plan(self):
        plan = ChaosPlan.none()
        assert plan.is_empty
        assert plan.fault_count() == 0
        assert plan.phone_ids() == frozenset()

    def test_fault_count_and_phone_ids(self):
        plan = ChaosPlan(
            failures=[PlannedFailure("a", 10.0)],
            slowdowns=[CpuSlowdown("b", 0.0, 2.0)],
            crashes=[TaskCrash("c", 5.0)],
        )
        assert plan.fault_count() == 3
        assert plan.phone_ids() == frozenset({"a", "b", "c"})

    def test_compute_schedule_compiled_per_phone(self):
        plan = ChaosPlan(
            slowdowns=[CpuSlowdown("a", 100.0, 5.0, duration_ms=50.0)]
        )
        schedule = plan.compute_schedule("a")
        assert schedule.factor_at(120.0) == 5.0
        assert plan.compute_schedule("other") is None

    def test_merged(self):
        a = ChaosPlan(slowdowns=[CpuSlowdown("a", 0.0, 2.0)])
        b = ChaosPlan(crashes=[TaskCrash("b", 5.0)])
        merged = a.merged(b)
        assert merged.fault_count() == 2

    def test_dict_round_trip(self):
        plan = ChaosPlan(
            failures=[
                PlannedFailure("a", 10.0, online=False, rejoin_after_ms=5.0)
            ],
            slowdowns=[CpuSlowdown("b", 0.0, 2.0, duration_ms=100.0)],
            bandwidth=[BandwidthDegradation("c", 1.0, 3.0)],
            crashes=[TaskCrash("d", 5.0)],
            corruptions=[ResultCorruption("e", 6.0)],
        )
        restored = ChaosPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(ValueError):
            CpuSlowdown("a", -1.0, 2.0)
        with pytest.raises(ValueError):
            CpuSlowdown("a", 0.0, 0.0)
        with pytest.raises(ValueError):
            CpuSlowdown("a", 0.0, 2.0, duration_ms=0.0)


class TestResiliencePolicy:
    def test_default_disables_everything(self):
        policy = ResiliencePolicy()
        assert not policy.active

    def test_hardened_profile(self):
        policy = ResiliencePolicy.hardened()
        assert policy.active
        assert policy.speculate
        assert policy.max_retries > 0
        assert not policy.verify_results
        assert ResiliencePolicy.hardened(verify_results=True).verify_results

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(straggler_factor=1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(dispatch_timeout_factor=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="straggler"):
            ResiliencePolicy(speculate=True)


class TestChaosMonkey:
    def test_zero_rates_sample_empty_plan(self):
        monkey = ChaosMonkey()
        plan = monkey.sample_plan(
            ["a", "b"], duration_ms=600_000.0, rng=random.Random(1)
        )
        assert plan.is_empty

    def test_same_seed_same_plan(self):
        monkey = ChaosMonkey(
            flap_probability=0.5,
            straggler_probability=0.5,
            bandwidth_probability=0.5,
            crash_rate=1.0,
            corruption_rate=0.5,
        )
        ids = [f"p{i}" for i in range(10)]
        plan_a = monkey.sample_plan(
            ids, duration_ms=600_000.0, rng=random.Random(7)
        )
        plan_b = monkey.sample_plan(
            ids, duration_ms=600_000.0, rng=random.Random(7)
        )
        assert plan_a.to_dict() == plan_b.to_dict()
        assert not plan_a.is_empty

    def test_sampled_flapping_is_valid(self):
        """Sampled fail/rejoin cycles satisfy FailurePlan's stream rules."""
        monkey = ChaosMonkey(flap_probability=1.0, max_flap_cycles=3)
        plan = monkey.sample_plan(
            [f"p{i}" for i in range(20)],
            duration_ms=600_000.0,
            rng=random.Random(3),
        )
        assert len(plan.failures) >= 20  # every phone flaps at least once


class TestInertByDefault:
    def test_empty_chaos_and_default_policy_change_nothing(self):
        jobs = make_jobs()
        baseline = run_server(*make_setup(), jobs)
        chaosless = run_server(
            *make_setup(),
            jobs,
            chaos=ChaosPlan.none(),
            resilience=ResiliencePolicy(),
        )
        assert chaosless.trace.spans == baseline.trace.spans
        assert chaosless.trace.completions == baseline.trace.completions
        assert chaosless.measured_makespan_ms == baseline.measured_makespan_ms


class TestStragglersAndSpeculation:
    def chaos(self):
        # p0 silently becomes 10x slower for the whole run; the
        # scheduler still believes its clock-derived speed.
        return ChaosPlan(slowdowns=[CpuSlowdown("p0", 0.0, 10.0)])

    def test_straggler_detected(self):
        result = run_server(
            *make_setup(),
            make_jobs(),
            chaos=self.chaos(),
            resilience=ResiliencePolicy(straggler_factor=2.0),
        )
        assert result.trace.resilience_events_of("straggler_detected")
        assert not result.unfinished_jobs

    def test_speculation_reduces_makespan(self):
        jobs = make_jobs()
        without = run_server(
            *make_setup(),
            jobs,
            chaos=self.chaos(),
            resilience=ResiliencePolicy(straggler_factor=2.0),
        )
        with_spec = run_server(
            *make_setup(),
            jobs,
            chaos=self.chaos(),
            resilience=ResiliencePolicy(
                straggler_factor=2.0, speculate=True
            ),
        )
        assert with_spec.trace.resilience_events_of("speculation_launched")
        assert (
            with_spec.measured_makespan_ms < without.measured_makespan_ms
        )
        assert completed_kb(with_spec) == pytest.approx(total_input(jobs))

    def test_speculation_credits_each_partition_once(self):
        jobs = make_jobs()
        result = run_server(
            *make_setup(),
            jobs,
            chaos=self.chaos(),
            resilience=ResiliencePolicy(straggler_factor=2.0, speculate=True),
        )
        won = result.trace.resilience_events_of("speculation_won")
        launched = result.trace.resilience_events_of("speculation_launched")
        assert len(won) <= len(launched)
        assert completed_kb(result) == pytest.approx(total_input(jobs))

    def test_losing_copies_counted_as_wasted_work(self):
        result = run_server(
            *make_setup(),
            make_jobs(),
            chaos=self.chaos(),
            resilience=ResiliencePolicy(straggler_factor=2.0, speculate=True),
        )
        if result.trace.resilience_events_of("speculation_won"):
            assert result.trace.wasted_work_ms() > 0.0


class TestTimeouts:
    def test_degraded_copy_times_out_and_work_completes(self):
        jobs = make_jobs()
        chaos = ChaosPlan(
            bandwidth=[
                BandwidthDegradation(
                    "p0", 0.0, 20.0, duration_ms=30_000.0
                )
            ]
        )
        result = run_server(
            *make_setup(),
            jobs,
            chaos=chaos,
            resilience=ResiliencePolicy(
                dispatch_timeout_factor=4.0,
                max_retries=3,
                retry_backoff_ms=100.0,
            ),
        )
        assert result.trace.resilience_events_of("timeout")
        assert result.trace.resilience_events_of("retry")
        assert completed_kb(result) + sum(
            j.input_kb for j in result.unfinished_jobs
        ) == pytest.approx(total_input(jobs))


class TestCrashes:
    def test_crash_mid_execution_is_retried(self):
        phones, truth, predictor, b = make_setup(n_phones=1)
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 40.0, 500.0),)
        # Copy takes (40+500)*2 = 1080 ms; the crash lands mid-execute.
        chaos = ChaosPlan(crashes=[TaskCrash("p0", 3_000.0)])
        result = run_server(
            phones, truth, predictor, b, jobs,
            chaos=chaos,
            resilience=ResiliencePolicy(
                max_retries=2, retry_backoff_ms=100.0
            ),
        )
        assert result.trace.chaos_of("task_crash")[0].detail == "hit"
        assert result.trace.resilience_events_of("retry")
        assert not result.unfinished_jobs
        assert completed_kb(result) == pytest.approx(500.0)

    def test_crash_without_retry_budget_falls_to_next_round(self):
        phones, truth, predictor, b = make_setup(n_phones=1)
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 40.0, 500.0),)
        chaos = ChaosPlan(crashes=[TaskCrash("p0", 3_000.0)])
        result = run_server(
            phones, truth, predictor, b, jobs, chaos=chaos
        )
        assert result.trace.resilience_events_of("gave_up")
        assert len(result.rounds) == 2  # rescheduled, then completed
        assert completed_kb(result) == pytest.approx(500.0)

    def test_crash_on_idle_phone_is_noop(self):
        result = run_server(
            *make_setup(),
            make_jobs(),
            chaos=ChaosPlan(crashes=[TaskCrash("p0", 1e9)]),
        )
        assert result.trace.chaos_of("task_crash")[0].detail == "no-op"
        assert not result.trace.resilience_events_of("retry")


class TestVerification:
    def corrupting_chaos(self):
        return ChaosPlan(corruptions=[ResultCorruption("p0", 0.0)])

    def test_corruption_silently_aggregated_without_verification(self):
        payloads = []
        phones, truth, predictor, b = make_setup()
        server = CentralServer(
            phones, truth, predictor, CwcScheduler(), b,
            chaos=self.corrupting_chaos(),
            on_result=lambda job, task, pid, kb, payload: payloads.append(
                payload
            ),
        )
        result = server.run(make_jobs())
        assert not result.unfinished_jobs
        assert any(p[0] == "corrupt" for p in payloads)

    def test_verification_catches_corruption(self):
        payloads = []
        phones, truth, predictor, b = make_setup()
        server = CentralServer(
            phones, truth, predictor, CwcScheduler(), b,
            chaos=self.corrupting_chaos(),
            resilience=ResiliencePolicy(verify_results=True, max_retries=2),
            on_result=lambda job, task, pid, kb, payload: payloads.append(
                payload
            ),
        )
        jobs = make_jobs()
        result = server.run(jobs)
        check_run_invariants(result, jobs)
        assert result.trace.resilience_events_of("verify_mismatch")
        # The corrupted copy was retried: every credited payload is true.
        assert all(p[0] == "ok" for p in payloads)
        assert completed_kb(result) == pytest.approx(total_input(jobs))

    def test_exhausted_retries_quarantine_the_partition(self):
        phones, truth, predictor, b = make_setup(n_phones=2)
        jobs = make_jobs(n=2)
        result = run_server(
            phones, truth, predictor, b, jobs,
            chaos=self.corrupting_chaos(),
            resilience=ResiliencePolicy(verify_results=True, max_retries=0),
        )
        assert result.trace.resilience_events_of("quarantined")
        # Quarantined work re-enters via F_A and completes next round.
        assert len(result.rounds) >= 2
        assert completed_kb(result) == pytest.approx(total_input(jobs))

    def test_single_phone_fleet_skips_verification(self):
        phones, truth, predictor, b = make_setup(n_phones=1)
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 40.0, 500.0),)
        result = run_server(
            phones, truth, predictor, b, jobs,
            resilience=ResiliencePolicy(verify_results=True),
        )
        assert result.trace.resilience_events_of("verify_skipped")
        assert not result.trace.resilience_events_of("verify_launched")
        assert completed_kb(result) == pytest.approx(500.0)

    def test_failed_task_list_tracks_new_failure_kinds(self):
        from repro.core.migration import FailedTaskList

        failed = FailedTaskList()
        job = Job("j", "primes", JobKind.BREAKABLE, 40.0, 500.0)
        failed.record_crashed(job, 200.0)
        failed.record_quarantined(job, 300.0)
        counts = failed.counts_by_kind()
        assert counts[FailureKind.CRASH] == 1
        assert counts[FailureKind.QUARANTINE] == 1
        drained = failed.drain()
        assert len(drained) == 1
        assert drained[0].input_kb == pytest.approx(500.0)


class TestFlapping:
    def test_flapping_phone_run_completes(self):
        jobs = make_jobs(n=6)
        plan = FailurePlan.flapping(
            "p0", first_ms=2_000.0, down_ms=4_000.0, up_ms=6_000.0, cycles=3
        )
        result = run_server(
            *make_setup(),
            jobs,
            chaos=ChaosPlan(failures=plan),
        )
        assert len(result.trace.resilience_events_of("rejoin")) == 3
        assert completed_kb(result) + sum(
            j.input_kb for j in result.unfinished_jobs
        ) + sum(
            f.processed_kb for f in result.trace.failures
        ) == pytest.approx(total_input(jobs))

    def test_offline_flapping_with_hardened_server(self):
        jobs = make_jobs(n=6)
        plan = FailurePlan.flapping(
            "p0",
            first_ms=2_000.0,
            down_ms=3_000.0,
            up_ms=8_000.0,
            cycles=2,
            online=False,
        )
        result = run_server(
            *make_setup(),
            jobs,
            chaos=ChaosPlan(failures=plan),
            resilience=ResiliencePolicy.hardened(),
        )
        assert result.trace.chaos_of("unplug")
        assert not result.unfinished_jobs


class TestResilienceReport:
    def hardened_chaotic_run(self, seed=11):
        phones, truth, predictor, b = make_setup(n_phones=4)
        monkey = ChaosMonkey(
            flap_probability=0.5,
            straggler_probability=0.5,
            straggler_factor_range=(4.0, 8.0),
            crash_rate=0.5,
            corruption_rate=0.5,
            flap_down_range_ms=(3_000.0, 10_000.0),
            flap_up_range_ms=(5_000.0, 15_000.0),
        )
        chaos = monkey.sample_plan(
            [p.phone_id for p in phones],
            duration_ms=60_000.0,
            rng=random.Random(seed),
        )
        jobs = make_jobs(n=6)
        result = run_server(
            phones, truth, predictor, b, jobs,
            chaos=chaos,
            resilience=ResiliencePolicy.hardened(verify_results=True),
        )
        return result

    def test_report_counts_match_trace(self):
        result = self.hardened_chaotic_run()
        report = compute_resilience_report(result)
        assert report.total_faults_injected == len(result.trace.chaos)
        assert report.failures_detected == len(result.trace.failures)
        assert report.completed_partitions == len(result.trace.completions)
        assert report.makespan_ms == result.measured_makespan_ms
        assert 0.0 <= report.wasted_fraction <= 1.0

    def test_makespan_inflation_against_baseline(self):
        result = self.hardened_chaotic_run()
        report = compute_resilience_report(
            result, baseline_makespan_ms=result.measured_makespan_ms / 2
        )
        assert report.makespan_inflation == pytest.approx(2.0)
        assert compute_resilience_report(result).makespan_inflation == 0.0

    def test_same_seed_byte_identical_report_json(self):
        """Satellite: seeded determinism, byte-for-byte."""
        report_a = compute_resilience_report(self.hardened_chaotic_run())
        report_b = compute_resilience_report(self.hardened_chaotic_run())
        assert report_a.to_json() == report_b.to_json()

    def test_different_seed_differs(self):
        report_a = compute_resilience_report(self.hardened_chaotic_run(11))
        report_b = compute_resilience_report(
            self.hardened_chaotic_run(12)
        )
        assert report_a.to_json() != report_b.to_json()

    def test_summary_lines_render(self):
        report = compute_resilience_report(self.hardened_chaotic_run())
        lines = report.summary_lines()
        assert lines[0] == "resilience report:"
        assert any("faults injected" in line for line in lines)
