"""Tests for keep-alive based offline-failure detection."""

import pytest

from repro.sim.engine import EventLoop
from repro.sim.keepalive import KeepAliveMonitor


class Harness:
    def __init__(self, period_ms=30_000.0, misses=3):
        self.loop = EventLoop()
        self.alive = True
        self.detections = []
        self.monitor = KeepAliveMonitor(
            self.loop,
            "p0",
            is_responsive=lambda: self.alive,
            on_detect=self.detections.append,
            period_ms=period_ms,
            tolerated_misses=misses,
        )
        self.monitor.start()


class TestDetection:
    def test_healthy_phone_never_detected(self):
        h = Harness()
        h.loop.run(until_ms=10 * 30_000.0)
        assert h.detections == []

    def test_detection_after_three_misses(self):
        h = Harness()
        h.alive = False  # dies immediately
        h.loop.run(until_ms=10 * 30_000.0)
        # Probes at 30, 60, 90 s -> third miss at 90 s.
        assert h.detections == [90_000.0]

    def test_detection_time_depends_on_failure_instant(self):
        h = Harness()

        def kill():
            h.alive = False

        h.loop.schedule_at(31_000.0, kill)  # dies just after first probe
        h.loop.run(until_ms=300_000.0)
        # Misses at 60, 90, 120 s.
        assert h.detections == [120_000.0]

    def test_miss_counter_resets_on_response(self):
        h = Harness()
        # Dead for two probes, then back, then dead again.
        h.loop.schedule_at(1.0, lambda: setattr(h, "alive", False))
        h.loop.schedule_at(61_000.0, lambda: setattr(h, "alive", True))
        h.loop.schedule_at(91_000.0, lambda: setattr(h, "alive", False))
        h.loop.run(until_ms=400_000.0)
        # Misses at 30,60 (reset at 90); misses at 120,150,180 -> detect.
        assert h.detections == [180_000.0]

    def test_detection_fires_once(self):
        h = Harness()
        h.alive = False
        h.loop.run(until_ms=1_000_000.0)
        assert len(h.detections) == 1

    def test_stop_prevents_detection(self):
        h = Harness()
        h.alive = False
        h.monitor.stop()
        h.loop.run(until_ms=300_000.0)
        assert h.detections == []

    def test_stopped_monitor_cannot_restart(self):
        h = Harness()
        h.monitor.stop()
        with pytest.raises(RuntimeError):
            h.monitor.start()

    def test_custom_period_and_misses(self):
        h = Harness(period_ms=10_000.0, misses=2)
        h.alive = False
        h.loop.run(until_ms=100_000.0)
        assert h.detections == [20_000.0]

    def test_worst_case_detection_bound(self):
        h = Harness()
        assert h.monitor.worst_case_detection_ms() == 120_000.0

    def test_reset_allows_restart_after_stop(self):
        h = Harness()
        h.monitor.stop()
        h.monitor.reset()
        h.monitor.start()
        h.alive = False
        h.loop.run(until_ms=300_000.0)
        assert len(h.detections) == 1

    def test_reset_clears_miss_count(self):
        h = Harness()
        h.alive = False
        # Two misses accumulate (30 s, 60 s), then the monitor is reset
        # and restarted mid-count: detection needs three fresh misses.
        h.loop.schedule_at(61_000.0, h.monitor.reset)
        h.loop.schedule_at(61_000.0, h.monitor.start)
        h.loop.run(until_ms=400_000.0)
        # Fresh probes at 91, 121, 151 s -> third miss at 151 s.
        assert h.detections == [151_000.0]

    def test_reset_while_running_does_not_double_probe(self):
        h = Harness()
        probes = []
        original = h.monitor._is_responsive
        h.monitor._is_responsive = lambda: probes.append(h.loop.now_ms) or original()
        h.loop.schedule_at(15_000.0, h.monitor.reset)
        h.loop.schedule_at(15_000.0, h.monitor.start)
        h.loop.run(until_ms=100_000.0)
        # The pre-reset probe at 30 s was cancelled; probes restart from
        # 45 s on, one per period, never two in one period.
        assert probes == [45_000.0, 75_000.0]

    def test_detection_fires_after_reset_cycle(self):
        h = Harness()
        h.alive = False
        h.loop.run(until_ms=300_000.0)
        assert h.detections == [90_000.0]
        h.monitor.reset()
        h.alive = True
        h.monitor.start()
        h.loop.schedule_at(h.loop.now_ms + 1.0, lambda: setattr(h, "alive", False))
        h.loop.run(until_ms=600_000.0)
        assert len(h.detections) == 2


class TestBoundaries:
    def test_failure_at_exact_probe_instant_detected_at_worst_case(self):
        h = Harness()
        # The phone dies at exactly the first probe instant.  The probe
        # event was scheduled before the kill event, so the probe still
        # sees a live phone: misses land at 60, 90, and 120 s — the
        # monitor's worst-case detection latency.
        h.loop.schedule_at(30_000.0, lambda: setattr(h, "alive", False))
        h.loop.run(until_ms=300_000.0)
        assert h.detections == [120_000.0]
        assert (
            h.detections[0] - 30_000.0 < h.monitor.worst_case_detection_ms()
        )

    def test_rejoin_inside_miss_window_avoids_detection(self):
        h = Harness()
        h.loop.schedule_at(1.0, lambda: setattr(h, "alive", False))
        # Back just before the third (fatal) probe at 90 s.
        h.loop.schedule_at(89_999.0, lambda: setattr(h, "alive", True))
        h.loop.run(until_ms=400_000.0)
        assert h.detections == []
        assert h.monitor.consecutive_misses == 0

    def test_rejoin_at_exact_fatal_probe_instant_wins_by_schedule_order(self):
        h = Harness()
        h.loop.schedule_at(1.0, lambda: setattr(h, "alive", False))
        # The revival event at 90 s was enqueued at setup; the 90 s probe
        # is only enqueued at 60 s.  Same instant, earlier sequence wins:
        # the phone answers its would-be-fatal probe and survives.
        h.loop.schedule_at(90_000.0, lambda: setattr(h, "alive", True))
        h.loop.run(until_ms=400_000.0)
        assert h.detections == []
        assert h.monitor.consecutive_misses == 0

    def test_trace_honours_worst_case_detection_bound(self):
        """Server-level: offline detection latency stays within bound."""
        from repro.core.greedy import CwcScheduler
        from repro.core.model import Job, JobKind, NetworkTechnology, PhoneSpec
        from repro.core.prediction import RuntimePredictor, TaskProfile
        from repro.sim.entities import FleetGroundTruth
        from repro.sim.failures import FailurePlan, PlannedFailure
        from repro.sim.server import CentralServer

        profiles = {
            "t": TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=1000.0)
        }
        phones = tuple(
            PhoneSpec(
                phone_id=f"p{i}",
                cpu_mhz=1000.0,
                network=NetworkTechnology.WIFI_A,
            )
            for i in range(2)
        )
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 1.0 for p in phones},
            failure_plan=FailurePlan(
                # Dies 1 ms after the t=30 s probe: the worst case.
                [PlannedFailure("p0", 30_001.0, online=False)]
            ),
        )
        result = server.run(
            [
                Job(
                    job_id="j",
                    task="t",
                    kind=JobKind.BREAKABLE,
                    executable_kb=10.0,
                    input_kb=40_000.0,
                )
            ]
        )
        failure = result.trace.failures[0]
        assert not failure.online
        latency = failure.detected_at_ms - failure.failed_at_ms
        monitor = server._monitors["p0"]
        assert latency <= monitor.worst_case_detection_ms()
        # And the exact schedule: misses at 60, 90, 120 s.
        assert failure.detected_at_ms == 120_000.0

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            KeepAliveMonitor(
                loop, "p", is_responsive=lambda: True, on_detect=lambda t: None,
                period_ms=0.0,
            )
        with pytest.raises(ValueError):
            KeepAliveMonitor(
                loop, "p", is_responsive=lambda: True, on_detect=lambda t: None,
                tolerated_misses=0,
            )
