"""Tests for keep-alive based offline-failure detection."""

import pytest

from repro.sim.engine import EventLoop
from repro.sim.keepalive import KeepAliveMonitor


class Harness:
    def __init__(self, period_ms=30_000.0, misses=3):
        self.loop = EventLoop()
        self.alive = True
        self.detections = []
        self.monitor = KeepAliveMonitor(
            self.loop,
            "p0",
            is_responsive=lambda: self.alive,
            on_detect=self.detections.append,
            period_ms=period_ms,
            tolerated_misses=misses,
        )
        self.monitor.start()


class TestDetection:
    def test_healthy_phone_never_detected(self):
        h = Harness()
        h.loop.run(until_ms=10 * 30_000.0)
        assert h.detections == []

    def test_detection_after_three_misses(self):
        h = Harness()
        h.alive = False  # dies immediately
        h.loop.run(until_ms=10 * 30_000.0)
        # Probes at 30, 60, 90 s -> third miss at 90 s.
        assert h.detections == [90_000.0]

    def test_detection_time_depends_on_failure_instant(self):
        h = Harness()

        def kill():
            h.alive = False

        h.loop.schedule_at(31_000.0, kill)  # dies just after first probe
        h.loop.run(until_ms=300_000.0)
        # Misses at 60, 90, 120 s.
        assert h.detections == [120_000.0]

    def test_miss_counter_resets_on_response(self):
        h = Harness()
        # Dead for two probes, then back, then dead again.
        h.loop.schedule_at(1.0, lambda: setattr(h, "alive", False))
        h.loop.schedule_at(61_000.0, lambda: setattr(h, "alive", True))
        h.loop.schedule_at(91_000.0, lambda: setattr(h, "alive", False))
        h.loop.run(until_ms=400_000.0)
        # Misses at 30,60 (reset at 90); misses at 120,150,180 -> detect.
        assert h.detections == [180_000.0]

    def test_detection_fires_once(self):
        h = Harness()
        h.alive = False
        h.loop.run(until_ms=1_000_000.0)
        assert len(h.detections) == 1

    def test_stop_prevents_detection(self):
        h = Harness()
        h.alive = False
        h.monitor.stop()
        h.loop.run(until_ms=300_000.0)
        assert h.detections == []

    def test_stopped_monitor_cannot_restart(self):
        h = Harness()
        h.monitor.stop()
        with pytest.raises(RuntimeError):
            h.monitor.start()

    def test_custom_period_and_misses(self):
        h = Harness(period_ms=10_000.0, misses=2)
        h.alive = False
        h.loop.run(until_ms=100_000.0)
        assert h.detections == [20_000.0]

    def test_worst_case_detection_bound(self):
        h = Harness()
        assert h.monitor.worst_case_detection_ms() == 120_000.0

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            KeepAliveMonitor(
                loop, "p", is_responsive=lambda: True, on_detect=lambda t: None,
                period_ms=0.0,
            )
        with pytest.raises(ValueError):
            KeepAliveMonitor(
                loop, "p", is_responsive=lambda: True, on_detect=lambda t: None,
                tolerated_misses=0,
            )
