"""Tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(30.0, lambda: fired.append("c"))
        loop.schedule_at(10.0, lambda: fired.append("a"))
        loop.schedule_at(20.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(10.0, lambda: fired.append("first"))
        loop.schedule_at(10.0, lambda: fired.append("second"))
        loop.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(42.0, lambda: seen.append(loop.now_ms))
        loop.run()
        assert seen == [42.0]
        assert loop.now_ms == 42.0

    def test_schedule_after_is_relative(self):
        loop = EventLoop(start_ms=100.0)
        seen = []
        loop.schedule_after(5.0, lambda: seen.append(loop.now_ms))
        loop.run()
        assert seen == [105.0]

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop(start_ms=50.0)
        with pytest.raises(SimulationError, match="past"):
            loop.schedule_at(10.0, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_after(-1.0, lambda: None)

    def test_non_finite_time_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_at(float("nan"), lambda: None)

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain():
            fired.append(loop.now_ms)
            if len(fired) < 3:
                loop.schedule_after(10.0, chain)

        loop.schedule_at(0.0, chain)
        loop.run()
        assert fired == [0.0, 10.0, 20.0]


class TestCancel:
    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        fired = []
        token = loop.schedule_at(10.0, lambda: fired.append("x"))
        token.cancel()
        loop.run()
        assert fired == []
        assert token.cancelled

    def test_pending_count_excludes_cancelled(self):
        loop = EventLoop()
        loop.schedule_at(10.0, lambda: None)
        token = loop.schedule_at(20.0, lambda: None)
        token.cancel()
        assert loop.pending_events() == 1


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(10.0, lambda: fired.append("early"))
        loop.schedule_at(100.0, lambda: fired.append("late"))
        loop.run(until_ms=50.0)
        assert fired == ["early"]
        assert loop.now_ms == 50.0
        loop.run()
        assert fired == ["early", "late"]

    def test_run_until_with_empty_queue_advances_clock(self):
        loop = EventLoop()
        loop.run(until_ms=123.0)
        assert loop.now_ms == 123.0

    def test_reentrant_run_rejected(self):
        loop = EventLoop()

        def recurse():
            loop.run()

        loop.schedule_at(1.0, recurse)
        with pytest.raises(SimulationError, match="already running"):
            loop.run()
