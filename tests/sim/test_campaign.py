"""Tests for multi-night campaign simulation."""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind
from repro.core.prediction import RuntimePredictor
from repro.sim.campaign import (
    OvernightCampaign,
    parallel_map,
    run_campaign_sweep,
)
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import RandomUnplugModel
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def make_campaign(*, deviation=0.08, unplug_model=None, alpha=1.0, seed=4):
    testbed = paper_testbed()
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(profiles, deviation_sigma=deviation, seed=seed)
    predictor = RuntimePredictor(profiles, alpha=alpha)
    return OvernightCampaign(
        testbed.phones,
        testbed.links,
        truth,
        predictor,
        CwcScheduler(),
        unplug_model=unplug_model,
        window_start_hour=0.0,
        window_hours=6.0,
        seed=seed,
    )


def nightly(nights, per_night=8):
    return [
        evaluation_workload(seed=100 + night, instances_per_task=per_night)
        for night in range(nights)
    ]


class TestCampaign:
    def test_all_nights_recorded(self):
        result = make_campaign().run(nightly(3, per_night=4))
        assert len(result.nights) == 3
        assert result.final_backlog == ()
        for night in result.nights:
            assert night.unfinished == 0
            assert night.measured_makespan_ms > 0

    def test_prediction_error_converges_with_learning(self):
        """With full-weight learning the predictor converges to truth:
        by the third night the makespan prediction is near-exact.

        (Decay is not monotone: after one night only the exercised
        (phone, task) pairs are corrected, and a half-learned table can
        briefly predict *worse* than a uniformly biased one.)"""
        result = make_campaign(alpha=1.0).run(nightly(3, per_night=6))
        errors = result.prediction_errors()
        assert errors[-1] < 0.02
        assert errors[-1] <= errors[0] + 0.02

    def test_no_learning_keeps_error(self):
        result = make_campaign(alpha=0.0).run(nightly(2, per_night=4))
        errors = result.prediction_errors()
        # Truth deviates from clock scaling; without learning the error
        # persists night after night.
        assert errors[1] == pytest.approx(errors[0], abs=0.05)

    def test_empty_night_is_recorded_as_idle(self):
        jobs = [evaluation_workload(instances_per_task=2), ()]
        result = make_campaign().run(jobs)
        assert result.nights[1].jobs_submitted == 0
        assert result.nights[1].measured_makespan_ms == 0.0

    def test_failures_counted(self):
        risky = RandomUnplugModel([0.3] * 24, online_fraction=1.0)
        result = make_campaign(unplug_model=risky).run(nightly(2, per_night=4))
        assert result.total_failures > 0

    def test_backlog_rolls_forward(self):
        """With every phone failing almost immediately, night 1 cannot
        finish; the backlog must appear in night 2's carried-over count."""
        always = RandomUnplugModel([1.0] * 24, online_fraction=1.0)
        campaign = make_campaign(unplug_model=always)
        result = campaign.run(nightly(2, per_night=2))
        if result.nights[0].unfinished:
            assert result.nights[1].jobs_carried_over == result.nights[0].unfinished

    def test_validation(self):
        campaign = make_campaign()
        with pytest.raises(ValueError):
            campaign.run([])
        testbed = paper_testbed()
        profiles = paper_task_profiles()
        with pytest.raises(ValueError):
            OvernightCampaign(
                testbed.phones,
                testbed.links,
                FleetGroundTruth(profiles),
                RuntimePredictor(profiles),
                CwcScheduler(),
                window_hours=0.0,
            )


def _square(x):
    return x * x


def _sweep_factory(seed):
    """Module-level so the process-pool path can pickle it."""
    return make_campaign(seed=seed)


class TestParallelMap:
    def test_preserves_input_order(self):
        assert parallel_map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_serial_flag_gives_same_results(self):
        inputs = list(range(8))
        assert parallel_map(_square, inputs, parallel=False) == parallel_map(
            _square, inputs
        )

    def test_empty_and_singleton_inputs(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [7]) == [49]

    def test_unpicklable_fn_falls_back_to_serial(self):
        """A lambda cannot cross a process boundary; the computation
        must still complete in-process."""
        assert parallel_map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]


class TestCampaignSweep:
    def test_parallel_results_equal_serial(self):
        seeds = [11, 12, 13]
        jobs = nightly(2, per_night=3)
        serial = run_campaign_sweep(
            _sweep_factory, jobs, seeds, parallel=False
        )
        swept = run_campaign_sweep(
            _sweep_factory, jobs, seeds, max_workers=2
        )
        assert set(swept) == set(seeds)
        for seed in seeds:
            assert swept[seed].nights == serial[seed].nights
            assert swept[seed].final_backlog == serial[seed].final_backlog

    def test_seeds_are_independent(self):
        seeds = [21, 22]
        results = run_campaign_sweep(
            _sweep_factory, nightly(2, per_night=3), seeds, parallel=False
        )
        makespans = {
            seed: tuple(
                night.measured_makespan_ms for night in results[seed].nights
            )
            for seed in seeds
        }
        # Different ground-truth seeds must actually change the nights.
        assert makespans[21] != makespans[22]


class TestCampaignWithAdaptiveMeasurement:
    def test_stable_links_are_not_remeasured_nightly(self):
        from repro.netmodel.scheduler import MeasurementScheduler

        testbed = paper_testbed()
        profiles = paper_task_profiles()
        scheduler = MeasurementScheduler(
            min_interval_ms=3_600_000.0,
            max_interval_ms=7 * 24 * 3_600_000.0,
        )
        campaign = OvernightCampaign(
            testbed.phones,
            testbed.links,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            measurement_scheduler=scheduler,
            seed=2,
        )
        result = campaign.run(nightly(3, per_night=3))
        assert all(n.unfinished == 0 for n in result.nights)
        # The stable WiFi phones were measured once, not three times.
        wifi_phone = next(
            p for p in testbed.phones if testbed.links[p.phone_id].is_wifi
        )
        assert scheduler.state(wifi_phone.phone_id).measurements < 3
