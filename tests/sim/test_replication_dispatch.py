"""Server-side consumption of policy replica directives.

A :class:`~repro.core.policies.SchedulingPolicy` attaches
:class:`~repro.core.policies.base.ReplicaDirective` records to
``last_replicas``; the server must launch each one as a *proactive*
backup through the speculation machinery (first result wins, single
credit) while silently skipping directives that stopped making sense
between planning and dispatch — split jobs, absent or busy phones,
phones that already hold a copy.  These tests drive the server with a
directive-injecting stub so every skip rule and the credit accounting
are pinned directly, plus the real :class:`ReplicationPolicy` end to
end.
"""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.policies import make_policy
from repro.core.policies.base import ReplicaDirective
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.metrics import compute_resilience_report
from repro.sim.server import CentralServer


class DirectiveStub:
    """CwcScheduler plus hand-chosen replica directives per round."""

    name = "directive-stub"

    def __init__(self, directives_fn):
        self._inner = CwcScheduler()
        self._fn = directives_fn
        self.last_replicas = ()

    def schedule(self, instance):
        schedule = self._inner.schedule(instance)
        self.last_replicas = tuple(self._fn(instance, schedule))
        return schedule


def make_setup(cpu_mhz=(1000.0, 1000.0), efficiencies=None):
    # Equal clocks so the scheduler balances one job per phone; the
    # hidden efficiency factor (invisible to the scheduler, applied by
    # the simulator) makes a phone slow *in truth*, which is what gives
    # a proactive replica something to win.
    efficiencies = efficiencies or (1.0,) * len(cpu_mhz)
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=mhz, cpu_efficiency=eff)
        for i, (mhz, eff) in enumerate(zip(cpu_mhz, efficiencies))
    )
    profiles = {"blur": TaskProfile("blur", 20.0, 800.0)}
    truth = FleetGroundTruth(profiles, deviation_sigma=0.0, seed=1)
    predictor = RuntimePredictor(profiles, alpha=0.5)
    b = {p.phone_id: 2.0 for p in phones}
    return phones, truth, predictor, b


def atomic_jobs(n=2, input_kb=300.0):
    return tuple(
        Job(f"a{i}", "blur", JobKind.ATOMIC, 80.0, input_kb)
        for i in range(n)
    )


def notes(result, kind):
    return [
        e for e in result.trace.resilience_events if e.kind == kind
    ]


def run_with_directives(
    directives_fn, jobs=None, efficiencies=None
):
    phones, truth, predictor, b = make_setup(efficiencies=efficiencies)
    scheduler = DirectiveStub(directives_fn)
    server = CentralServer(phones, truth, predictor, scheduler, b)
    result = server.run(jobs if jobs is not None else atomic_jobs())
    assert not result.unfinished_jobs
    return result


def assert_single_credit(result, jobs):
    done = sum(c.input_kb for c in result.trace.completions)
    assert done == pytest.approx(sum(j.input_kb for j in jobs))


class TestProactiveDispatch:
    def test_replica_launches_and_fast_copy_wins(self):
        # Two atomic jobs, one per phone; p0 is secretly 5x slower
        # than its clock suggests, so its job's replica on p1 wins.
        jobs = atomic_jobs(2)

        def replicate_slow_job(instance, schedule):
            for a in schedule.for_phone("p0"):
                if a.whole:
                    return [ReplicaDirective("p1", a.job_id)]
            return []

        result = run_with_directives(
            replicate_slow_job, jobs, efficiencies=(0.2, 1.0)
        )
        assert len(notes(result, "replication_launched")) == 1
        assert len(notes(result, "replication_won")) == 1
        # Proactive replicas are not reactive speculation.
        assert notes(result, "speculation_launched") == []
        assert notes(result, "speculation_won") == []
        assert_single_credit(result, jobs)

    def test_round_record_and_telemetry_fields(self):
        jobs = atomic_jobs(2)

        def replicate_slow_job(instance, schedule):
            for a in schedule.for_phone("p0"):
                if a.whole:
                    return [ReplicaDirective("p1", a.job_id)]
            return []

        result = run_with_directives(
            replicate_slow_job, jobs, efficiencies=(0.2, 1.0)
        )
        record = result.rounds[0]
        assert record.policy == "directive-stub"
        assert record.replicas == 1

    def test_resilience_report_counts_replications(self):
        jobs = atomic_jobs(2)

        def replicate_slow_job(instance, schedule):
            for a in schedule.for_phone("p0"):
                if a.whole:
                    return [ReplicaDirective("p1", a.job_id)]
            return []

        result = run_with_directives(
            replicate_slow_job, jobs, efficiencies=(0.2, 1.0)
        )
        report = compute_resilience_report(result)
        assert report.replications_launched == 1
        assert report.replications_won == 1
        assert any(
            "replication" in line for line in report.summary_lines()
        )

    def test_losing_replica_is_not_credited(self):
        # Replicate the FAST phone's job onto the slow phone: the
        # primary wins, the replica is cancelled, credit stays single.
        jobs = atomic_jobs(2)

        def replicate_fast_job(instance, schedule):
            for a in schedule.for_phone("p1"):
                if a.whole:
                    return [ReplicaDirective("p0", a.job_id)]
            return []

        result = run_with_directives(replicate_fast_job, jobs)
        assert len(notes(result, "replication_launched")) == 1
        assert notes(result, "replication_won") == []
        assert_single_credit(result, jobs)


class TestSkipRules:
    def test_split_job_directive_is_ignored(self):
        # One big breakable job splits across both phones — no whole
        # placement exists, so the directive must be dropped.
        jobs = (Job("b0", "blur", JobKind.BREAKABLE, 80.0, 2000.0),)

        def replicate_the_split_job(instance, schedule):
            return [ReplicaDirective("p1", "b0")]

        result = run_with_directives(replicate_the_split_job, jobs)
        assert notes(result, "replication_launched") == []
        assert_single_credit(result, jobs)

    def test_absent_phone_directive_is_skipped(self):
        jobs = atomic_jobs(2)

        def replicate_onto_ghost(instance, schedule):
            for a in schedule.for_phone("p0"):
                if a.whole:
                    return [ReplicaDirective("ghost", a.job_id)]
            return []

        result = run_with_directives(replicate_onto_ghost, jobs)
        assert notes(result, "replication_launched") == []
        assert_single_credit(result, jobs)

    def test_phone_already_running_the_job_is_skipped(self):
        jobs = atomic_jobs(2)

        def replicate_onto_owner(instance, schedule):
            for a in schedule.for_phone("p0"):
                if a.whole:
                    return [ReplicaDirective("p0", a.job_id)]
            return []

        result = run_with_directives(replicate_onto_owner, jobs)
        assert notes(result, "replication_launched") == []
        assert_single_credit(result, jobs)

    def test_plain_scheduler_without_directives_unchanged(self):
        phones, truth, predictor, b = make_setup()
        server = CentralServer(phones, truth, predictor, CwcScheduler(), b)
        jobs = atomic_jobs(2)
        result = server.run(jobs)
        assert notes(result, "replication_launched") == []
        assert result.rounds[0].policy == "cwc-greedy"
        assert result.rounds[0].replicas == 0
        assert_single_credit(result, jobs)


class TestReplicationPolicyEndToEnd:
    def test_policy_replicas_flow_through_the_server(self):
        phones, truth, predictor, b = make_setup(
            cpu_mhz=(1000.0, 1000.0, 1000.0),
            efficiencies=(0.3, 1.0, 1.0),
        )
        policy = make_policy(
            "replication", unreliable=("p0", "p1", "p2")
        )
        server = CentralServer(phones, truth, predictor, policy, b)
        jobs = atomic_jobs(3)
        result = server.run(jobs)
        assert not result.unfinished_jobs
        launched = notes(result, "replication_launched")
        assert launched, "replication policy produced no replicas"
        assert result.rounds[0].policy == "replication"
        assert result.rounds[0].replicas >= len(launched)
        assert_single_credit(result, jobs)
        report = compute_resilience_report(result)
        assert report.replications_launched == len(launched)
