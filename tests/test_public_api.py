"""Public-API sanity: every exported name exists and is documented.

Guards against drift between ``__all__`` lists and module contents, and
enforces the documentation bar the repository sets for itself: every
public module, class, and function carries a docstring.
"""

import importlib
import inspect

import pytest

PACKAGES = (
    "repro",
    "repro.core",
    "repro.sim",
    "repro.netmodel",
    "repro.power",
    "repro.runtime",
    "repro.workloads",
    "repro.profiling",
    "repro.analysis",
    "repro.experiments",
    "repro.verify",
)

MODULES = (
    "repro.cli",
    "repro.core.model",
    "repro.core.instance",
    "repro.core.prediction",
    "repro.core.packing",
    "repro.core.capacity",
    "repro.core.greedy",
    "repro.core.baselines",
    "repro.core.lp_bound",
    "repro.core.schedule",
    "repro.core.migration",
    "repro.core.constraints",
    "repro.core.availability",
    "repro.core.whatif",
    "repro.core.serialize",
    "repro.sim.engine",
    "repro.sim.entities",
    "repro.sim.server",
    "repro.sim.keepalive",
    "repro.sim.failures",
    "repro.sim.chaos",
    "repro.sim.trace",
    "repro.sim.realrun",
    "repro.sim.campaign",
    "repro.netmodel.links",
    "repro.netmodel.measurement",
    "repro.netmodel.variability",
    "repro.netmodel.scheduler",
    "repro.power.battery",
    "repro.power.charging",
    "repro.power.throttle",
    "repro.power.plan",
    "repro.runtime.registry",
    "repro.runtime.executable",
    "repro.runtime.sandbox",
    "repro.workloads.primes",
    "repro.workloads.wordcount",
    "repro.workloads.photoblur",
    "repro.workloads.maxint",
    "repro.workloads.loganalysis",
    "repro.workloads.datagen",
    "repro.workloads.arrivals",
    "repro.workloads.mixes",
    "repro.profiling.behavior",
    "repro.profiling.logs",
    "repro.profiling.analysis",
    "repro.profiling.forecast",
    "repro.profiling.coremark",
    "repro.analysis.stats",
    "repro.analysis.costs",
    "repro.analysis.tables",
    "repro.analysis.gantt",
    "repro.analysis.compare",
    "repro.verify.invariants",
    "repro.verify.oracle",
    "repro.verify.differential",
    "repro.verify.fuzz",
)


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", ())
    for symbol in exported:
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert (
                obj.__doc__ and obj.__doc__.strip()
            ), f"{name}.{symbol} lacks a docstring"


def test_packages_reexport_consistently():
    """Spot-check that package-level names match their home modules."""
    import repro.core
    import repro.core.greedy

    assert repro.core.CwcScheduler is repro.core.greedy.CwcScheduler
