"""Smoke tests: every driver's rendered block carries its figure's rows.

The benchmark harness prints these blocks as the regenerated
tables/series; each must actually contain the content the paper's
figure shows, not just the measured dict.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments import fig05_bandwidth_variability, fig13_lp_gap


@pytest.fixture(scope="module")
def reports():
    cache = {}

    def get(eid):
        if eid not in cache:
            if eid == "fig13":
                cache[eid] = fig13_lp_gap.run(configurations=5)
            elif eid == "fig05":
                cache[eid] = fig05_bandwidth_variability.run(n_files=100)
            else:
                cache[eid] = run_experiment(eid)
        return cache[eid]

    return get


class TestRenderedBlocks:
    def test_fig01_lists_cpus(self, reports):
        rendered = reports("fig01").rendered
        assert "Tegra 3" in rendered
        assert "Core 2 Duo" in rendered

    def test_fig02_has_three_subfigures(self, reports):
        rendered = reports("fig02").rendered
        assert "Figure 2a" in rendered
        assert "Figure 2b" in rendered
        assert "Figure 2c" in rendered
        assert "user-03" in rendered

    def test_fig03_has_hourly_tables(self, reports):
        rendered = reports("fig03").rendered
        assert "Figure 3a" in rendered
        assert "00:00" in rendered
        assert "23:00" in rendered

    def test_fig04_lists_three_houses(self, reports):
        rendered = reports("fig04").rendered
        assert rendered.count("house-") == 3
        assert "cellular" in rendered

    def test_fig05_has_both_cdfs(self, reports):
        rendered = reports("fig05").rendered
        assert "6 phones" in rendered
        assert "4 fast phones" in rendered
        assert "p90" in rendered

    def test_fig06_scatter_columns(self, reports):
        rendered = reports("fig06").rendered
        assert "expected speedup" in rendered
        assert "measured speedup" in rendered

    def test_fig10_lists_schemes(self, reports):
        rendered = reports("fig10").rendered
        for scheme in ("no-task", "continuous", "mimd"):
            assert scheme in rendered
        assert "htc-sensation" in rendered
        assert "htc-g2" in rendered

    def test_fig13_quantiles_and_gap(self, reports):
        rendered = reports("fig13").rendered
        assert "median gap" in rendered
        assert "greedy makespan" in rendered

    def test_costs_lists_devices(self, reports):
        rendered = reports("costs").rendered
        assert "$" in rendered
        assert "smartphone" in rendered

    def test_report_str_includes_rendered(self, reports):
        report = reports("costs")
        assert report.rendered in str(report)
