"""Tests for markdown report generation."""

import pytest

from repro.experiments.base import ExperimentReport
from repro.experiments.report import generate_markdown_report


def make_report(eid="fig99", measured=None, rendered="table here"):
    return ExperimentReport(
        experiment_id=eid,
        title="A test figure",
        paper_claim="things happen",
        measured=measured if measured is not None else {"metric": 1.234},
        rendered=rendered,
    )


class TestGenerateMarkdownReport:
    def test_contains_sections_per_report(self):
        text = generate_markdown_report([make_report("a"), make_report("b")])
        assert "## a — A test figure" in text
        assert "## b — A test figure" in text

    def test_measured_table(self):
        text = generate_markdown_report([make_report()])
        assert "| metric | 1.234 |" in text

    def test_rendered_block_fenced(self):
        text = generate_markdown_report([make_report(rendered="ROWS")])
        assert "```\nROWS\n```" in text

    def test_empty_measured_omits_table(self):
        text = generate_markdown_report([make_report(measured={})])
        assert "| quantity |" not in text

    def test_custom_title(self):
        text = generate_markdown_report([make_report()], title="My Title")
        assert text.startswith("# My Title")

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            generate_markdown_report([])

    def test_real_driver_report_renders(self):
        from repro.experiments import run_experiment

        text = generate_markdown_report([run_experiment("costs")])
        assert "costs" in text
        assert "74.5" in text


class TestCliReportOutput:
    def test_experiments_output_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["experiments", "costs", "--output", str(out)]) == 0
        content = out.read_text()
        assert content.startswith("# CWC reproduction report")
        assert "costs" in content
