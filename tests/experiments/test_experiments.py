"""Paper-shape tests: every experiment driver must reproduce the
qualitative anchors its figure reports.

These run the real drivers (with reduced iteration counts where a knob
exists), so they double as integration tests of the whole stack.
"""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentReport, run_experiment
from repro.experiments import (
    fig02_charging,
    fig03_availability,
    fig05_bandwidth_variability,
    fig10_throttling,
    fig12_prototype,
    fig13_lp_gap,
)


class TestRegistry:
    def test_all_expected_ids_present(self):
        assert set(EXPERIMENTS) == {
            "fig01",
            "fig02",
            "fig03",
            "fig04",
            "fig05",
            "fig06",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "costs",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_report_renders_as_text(self):
        report = run_experiment("costs")
        text = str(report)
        assert "costs" in text
        assert "paper:" in text


class TestFig01:
    def test_paper_claims_hold(self):
        report = run_experiment("fig01")
        assert report.measured["tegra3_vs_core2duo"] > 1.0
        assert report.measured["best_other_vs_core2duo"] < 1 / 1.5


class TestFig02:
    @pytest.fixture(scope="class")
    def report(self):
        return fig02_charging.run(days=14, seed=31)

    def test_night_median_near_seven_hours(self, report):
        assert 6.0 <= report.measured["median_night_hours"] <= 9.0

    def test_day_median_under_an_hour(self, report):
        assert report.measured["median_day_hours"] < 1.0

    def test_fewer_night_than_day_intervals(self, report):
        assert report.measured["night_intervals"] < report.measured[
            "day_intervals"
        ]

    def test_most_night_intervals_under_2mb(self, report):
        assert report.measured["fraction_night_under_2mb"] >= 0.6

    def test_average_idle_hours_at_least_three(self, report):
        assert report.measured["min_mean_idle_hours"] >= 3.0

    def test_regular_users_reach_eight_hours(self, report):
        assert report.measured["max_mean_idle_hours"] >= 7.5


class TestFig03:
    @pytest.fixture(scope="class")
    def report(self):
        return fig03_availability.run(days=14, seed=31)

    def test_under_a_third_of_unplugs_before_8am(self, report):
        assert report.measured["cumulative_unplug_by_8am"] < 0.35

    def test_night_likelihood_low_for_representatives(self, report):
        assert report.measured["max_night_likelihood_representatives"] < 0.4


class TestFig04:
    def test_wifi_stable_cellular_not(self):
        report = run_experiment("fig04")
        assert report.measured["max_wifi_cv"] < 0.1
        assert report.measured["cellular_cv"] > report.measured["max_wifi_cv"]


class TestFig05:
    @pytest.fixture(scope="class")
    def report(self):
        return fig05_bandwidth_variability.run(n_files=600)

    def test_90th_percentile_all_phones_near_paper(self, report):
        assert report.measured["p90_all_phones_ms"] <= 1500.0

    def test_dropping_slow_links_improves_p90(self, report):
        assert (
            report.measured["p90_fast_phones_ms"]
            < report.measured["p90_all_phones_ms"]
        )

    def test_queueing_delay_increases_with_fewer_phones(self, report):
        assert report.measured["drain_fast_ms"] > report.measured["drain_all_ms"]


class TestFig06:
    def test_prediction_clusters_around_diagonal(self):
        report = run_experiment("fig06")
        assert report.measured["rms_relative_error"] < 0.4
        assert report.measured["fraction_fast_outliers"] > 0.0


class TestFig10:
    @pytest.fixture(scope="class")
    def report(self):
        return fig10_throttling.run(dt_s=2.0)

    def test_sensation_heavy_delay_near_35_percent(self, report):
        assert 0.2 <= report.measured["htc_sensation_heavy_delay"] <= 0.5

    def test_sensation_mimd_nearly_ideal(self, report):
        assert report.measured["htc_sensation_mimd_delay"] < 0.1

    def test_sensation_compute_penalty_in_range(self, report):
        assert 0.1 <= report.measured["htc_sensation_compute_penalty"] <= 0.5

    def test_g2_unaffected(self, report):
        assert report.measured["htc_g2_heavy_delay"] < 0.05


class TestFig12:
    @pytest.fixture(scope="class")
    def report(self):
        return fig12_prototype.run()

    def test_greedy_beats_both_baselines(self, report):
        assert report.measured["equal_split_ratio"] > 1.3
        assert report.measured["round_robin_ratio"] > 1.3

    def test_prediction_close_to_measured(self, report):
        assert (
            report.measured["greedy_prediction_error_s"]
            < report.measured["greedy_makespan_s"] * 0.1
        )

    def test_about_ninety_percent_unsplit(self, report):
        assert report.measured["unsplit_fraction"] >= 0.75

    def test_finish_spread_moderate(self, report):
        assert report.measured["finish_spread_fraction"] < 0.5

    def test_failures_recovered_with_bounded_overhead(self, report):
        assert report.measured["reschedule_overhead_s"] > 0
        assert (
            report.measured["reschedule_overhead_s"]
            < report.measured["greedy_makespan_s"]
        )


class TestFig13:
    def test_gap_positive_and_moderate(self):
        report = fig13_lp_gap.run(configurations=10)
        assert report.measured["bound_violations"] == 0
        assert 0.0 <= report.measured["median_gap"] <= 0.5


class TestCosts:
    def test_paper_dollars(self):
        report = run_experiment("costs")
        assert report.measured["core2duo_server_per_year"] == pytest.approx(
            74.5, abs=0.5
        )
        assert report.measured["phone_per_year"] == pytest.approx(1.33, abs=0.02)


class TestFig11:
    def test_layout_invariants(self):
        report = run_experiment("fig11")
        assert report.measured["houses"] == 3
        assert report.measured["phones"] == 18
        assert report.measured["b_max_ms_per_kb"] > report.measured[
            "b_min_ms_per_kb"
        ]


class TestModuleMain:
    def test_main_runs_named_experiments(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["costs"]) == 0
        assert "74.5" in capsys.readouterr().out

    def test_main_rejects_unknown(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err
