"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import job_to_dict, phone_to_dict
from repro.workloads.mixes import evaluation_workload, paper_testbed


@pytest.fixture
def fleet_files(tmp_path):
    testbed = paper_testbed()
    phones_path = tmp_path / "phones.json"
    jobs_path = tmp_path / "jobs.json"
    phones_path.write_text(
        json.dumps([phone_to_dict(p) for p in testbed.phones])
    )
    jobs_path.write_text(
        json.dumps(
            [job_to_dict(j) for j in evaluation_workload(instances_per_task=3)]
        )
    )
    return phones_path, jobs_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["experiments"],
            ["study"],
            ["simulate"],
            ["trace"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestExperimentsCommand:
    def test_runs_named_experiment(self, capsys):
        assert main(["experiments", "costs"]) == 0
        out = capsys.readouterr().out
        assert "costs" in out
        assert "74.5" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestScheduleCommand:
    def test_schedules_and_writes_output(self, fleet_files, tmp_path, capsys):
        phones_path, jobs_path = fleet_files
        out_path = tmp_path / "schedule.json"
        code = main(
            [
                "schedule",
                "--phones",
                str(phones_path),
                "--jobs",
                str(jobs_path),
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        assert "predicted makespan" in capsys.readouterr().out
        data = json.loads(out_path.read_text())
        assert data["assignments"]

    def test_explicit_b_file(self, fleet_files, tmp_path, capsys):
        phones_path, jobs_path = fleet_files
        testbed = paper_testbed()
        b_path = tmp_path / "b.json"
        b_path.write_text(
            json.dumps({p.phone_id: 5.0 for p in testbed.phones})
        )
        code = main(
            [
                "schedule",
                "--phones",
                str(phones_path),
                "--jobs",
                str(jobs_path),
                "--b",
                str(b_path),
                "--scheduler",
                "round-robin",
            ]
        )
        assert code == 0
        assert "round-robin" in capsys.readouterr().out


class TestStudyCommand:
    def test_prints_summary(self, capsys):
        assert main(["study", "--days", "7", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "15 users" in out
        assert "night" in out

    def test_writes_logs(self, tmp_path, capsys):
        out_path = tmp_path / "logs.tsv"
        assert (
            main(
                ["study", "--days", "5", "--output", str(out_path)]
            )
            == 0
        )
        from repro.profiling.logs import parse_log

        records = parse_log(out_path.read_text())
        assert records


class TestSimulateCommand:
    def test_clean_run_summary(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        code = main(["simulate", "--output", str(out_path)])
        assert code == 0
        summary = json.loads(out_path.read_text())
        assert summary["unfinished_jobs"] == 0
        assert summary["measured_makespan_s"] > 0

    def test_failure_run(self, capsys):
        assert main(["simulate", "--failures", "2"]) == 0
        out = capsys.readouterr().out
        assert "failures: 2" in out

    def test_reports_scheduling_wall_clock(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "scheduling wall-clock:" in out
        assert "packer passes" in out
        assert "bisection steps" in out

    def test_warm_start_run(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        code = main(
            ["simulate", "--warm-start", "--output", str(out_path)]
        )
        assert code == 0
        assert "warm-start hit" in capsys.readouterr().out
        summary = json.loads(out_path.read_text())
        assert summary["unfinished_jobs"] == 0
        scheduling = summary["scheduling"]
        assert scheduling["rounds"] >= 1
        assert scheduling["packer_passes"] >= 1
        assert scheduling["wall_ms"] >= 0.0

    def test_warm_start_matches_cold_summary(self, tmp_path):
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        assert main(["simulate", "--output", str(cold_path)]) == 0
        assert (
            main(["simulate", "--warm-start", "--output", str(warm_path)])
            == 0
        )
        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        # Warm starts change scheduler wall-clock, never the simulation.
        assert warm["measured_makespan_s"] == cold["measured_makespan_s"]
        assert warm["unfinished_jobs"] == cold["unfinished_jobs"]


class TestWhatifCommand:
    def test_finds_minimum_fleet(self, fleet_files, capsys):
        phones_path, jobs_path = fleet_files
        code = main(
            [
                "whatif",
                "--phones",
                str(phones_path),
                "--jobs",
                str(jobs_path),
                "--deadline-s",
                "100000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "minimum fleet" in out

    def test_impossible_deadline_fails(self, fleet_files, capsys):
        phones_path, jobs_path = fleet_files
        code = main(
            [
                "whatif",
                "--phones",
                str(phones_path),
                "--jobs",
                str(jobs_path),
                "--deadline-s",
                "0.001",
            ]
        )
        assert code == 1
        assert "no prefix" in capsys.readouterr().out


class TestPowerCommand:
    def test_sensation_curves(self, capsys):
        assert main(["power", "--phone-model", "sensation"]) == 0
        out = capsys.readouterr().out
        assert "no-task" in out
        assert "mimd" in out
        assert "compute penalty" in out

    def test_g2_curves(self, capsys):
        assert main(["power", "--phone-model", "g2"]) == 0
        assert "htc-g2" in capsys.readouterr().out

    def test_bad_start_percent(self, capsys):
        assert main(["power", "--start-percent", "150"]) == 2


class TestTelemetryCli:
    def run_instrumented(self, tmp_path):
        bundle_dir = tmp_path / "run"
        code = main(
            [
                "simulate",
                "--chaos-seed",
                "7",
                "--harden",
                "--telemetry",
                str(bundle_dir),
            ]
        )
        return code, bundle_dir

    def test_simulate_writes_bundle(self, tmp_path, capsys):
        code, bundle_dir = self.run_instrumented(tmp_path)
        assert code == 0
        assert "telemetry bundle written to" in capsys.readouterr().out
        assert (bundle_dir / "report.json").is_file()
        assert (bundle_dir / "events.jsonl").is_file()
        assert (bundle_dir / "prometheus.txt").is_file()
        assert list((bundle_dir / "series").glob("*.csv"))

        from repro.obs.events import read_events_jsonl

        events = read_events_jsonl(bundle_dir / "events.jsonl")
        assert events  # every line passed schema validation

    def test_report_renders_bundle(self, tmp_path, capsys):
        code, bundle_dir = self.run_instrumented(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(bundle_dir), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "run report:" in out
        assert "round latency" in out
        assert "faults injected" in out

    def test_report_on_missing_bundle_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "failed to load" in capsys.readouterr().err

    def test_report_no_validate_tolerates_bad_lines(
        self, tmp_path, capsys
    ):
        code, bundle_dir = self.run_instrumented(tmp_path)
        assert code == 0
        events_path = bundle_dir / "events.jsonl"
        events_path.write_text(
            events_path.read_text() + '{"run_id": "x"}\n'
        )
        capsys.readouterr()
        assert main(["report", str(bundle_dir)]) == 2
        assert main(["report", str(bundle_dir), "--no-validate"]) == 0

    def test_simulate_without_telemetry_unchanged(self, tmp_path):
        with_path = tmp_path / "with.json"
        without_path = tmp_path / "without.json"
        assert (
            main(
                [
                    "simulate",
                    "--telemetry",
                    str(tmp_path / "bundle"),
                    "--output",
                    str(with_path),
                ]
            )
            == 0
        )
        assert (
            main(["simulate", "--output", str(without_path)]) == 0
        )
        with_summary = json.loads(with_path.read_text())
        without_summary = json.loads(without_path.read_text())
        with_summary.pop("telemetry_bundle", None)
        # Wall-clock timings vary run to run; everything simulated
        # (schedules, makespans, completions) must be identical.
        for summary in (with_summary, without_summary):
            summary.get("scheduling", {}).pop("wall_ms", None)
            summary.get("scheduling", {}).pop("last_wall_ms", None)
        assert with_summary == without_summary


class TestTraceCommand:
    def test_capture_prints_self_time_table(self, capsys):
        assert main(["trace", "--seed", "5", "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "self wall ms" in out

    def test_capture_writes_artifacts_and_renders(self, tmp_path, capsys):
        out_dir = tmp_path / "trace-run"
        assert (
            main(
                [
                    "trace",
                    "--seed",
                    "5",
                    "--out",
                    str(out_dir),
                    "--critical-path",
                ]
            )
            == 0
        )
        assert (out_dir / "trace.json").is_file()
        capsys.readouterr()
        # Render mode accepts the bundle directory and the file itself.
        assert main(["trace", str(out_dir)]) == 0
        assert main(["trace", str(out_dir / "trace.json")]) == 0
        assert "self wall ms" in capsys.readouterr().out

    def test_sharded_capture(self, capsys):
        assert main(["trace", "--seed", "3", "--pods", "2"]) == 0
        assert "self wall ms" in capsys.readouterr().out

    def test_render_missing_path_fails(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2

    def test_simulate_trace_requires_telemetry(self, capsys):
        assert main(["simulate", "--trace"]) == 2

    def test_simulate_trace_writes_bundle_artifacts(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert (
            main(
                ["simulate", "--telemetry", str(bundle), "--trace"]
            )
            == 0
        )
        assert (bundle / "trace.json").is_file()
        assert (bundle / "profile.txt").is_file()
