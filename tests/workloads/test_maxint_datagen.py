"""Tests for the maxint task and the synthetic input generators."""

import random

import pytest

from repro.workloads.datagen import integer_file, pixel_grid, text_file, text_size_kb
from repro.workloads.maxint import MaxIntTask


def run_task(task, lines):
    state = task.initial_state()
    for line in lines:
        state = task.process_item(state, line)
    return task.finalize(state)


class TestMaxIntTask:
    def test_finds_max(self):
        assert run_task(MaxIntTask(), ["3", "99", "7"]) == 99

    def test_negative_values(self):
        assert run_task(MaxIntTask(), ["-5", "-2", "-10"]) == -2

    def test_skips_malformed(self):
        assert run_task(MaxIntTask(), ["x", "42", ""]) == 42

    def test_empty_input_is_none(self):
        assert run_task(MaxIntTask(), []) is None
        assert run_task(MaxIntTask(), ["junk"]) is None

    def test_aggregate_takes_max(self):
        assert MaxIntTask().aggregate([5, None, 12, 3]) == 12

    def test_aggregate_all_none(self):
        assert MaxIntTask().aggregate([None, None]) is None

    def test_partition_equivalence(self):
        rng = random.Random(1)
        lines = [str(rng.randint(-1000, 1000)) for _ in range(200)]
        task = MaxIntTask()
        whole = run_task(task, lines)
        split = task.aggregate([run_task(task, lines[:67]), run_task(task, lines[67:])])
        assert split == whole


class TestDatagen:
    def test_integer_file_hits_target_size(self):
        text = integer_file(50.0, random.Random(1))
        assert text_size_kb(text) == pytest.approx(50.0, rel=0.05)

    def test_integer_file_lines_parse(self):
        text = integer_file(5.0, random.Random(2))
        for line in text.splitlines():
            int(line)

    def test_text_file_hits_target_size(self):
        text = text_file(30.0, random.Random(3))
        assert text_size_kb(text) == pytest.approx(30.0, rel=0.05)

    def test_generators_deterministic(self):
        assert integer_file(5.0, random.Random(7)) == integer_file(
            5.0, random.Random(7)
        )
        assert text_file(5.0, random.Random(7)) == text_file(
            5.0, random.Random(7)
        )

    def test_pixel_grid_shape_and_range(self):
        grid = pixel_grid(8, 12, random.Random(4), depth=255)
        assert grid.shape == (8, 12)
        assert grid.min() >= 0
        assert grid.max() <= 255

    def test_validation(self):
        with pytest.raises(ValueError):
            integer_file(0.0, random.Random(1))
        with pytest.raises(ValueError):
            text_file(-1.0, random.Random(1))
        with pytest.raises(ValueError):
            pixel_grid(0, 5, random.Random(1))
        with pytest.raises(ValueError):
            text_file(1.0, random.Random(1), words_per_line=0)
