"""Tests for the testbed and workload builders (Section 6 setup)."""

import pytest

from repro.core.model import JobKind, NetworkTechnology
from repro.workloads.mixes import (
    REFERENCE_MHZ,
    evaluation_workload,
    fig5_testbed,
    fig5_workload,
    paper_base_times,
    paper_task_profiles,
    paper_testbed,
)


class TestPaperTestbed:
    def test_eighteen_phones(self):
        assert len(paper_testbed().phones) == 18

    def test_three_houses_of_six(self):
        testbed = paper_testbed()
        houses = {}
        for phone in testbed.phones:
            houses.setdefault(phone.location, []).append(phone)
        assert len(houses) == 3
        assert all(len(group) == 6 for group in houses.values())

    def test_two_wifi_four_cellular_per_house(self):
        testbed = paper_testbed()
        wifi = {NetworkTechnology.WIFI_A, NetworkTechnology.WIFI_G}
        houses = {}
        for phone in testbed.phones:
            houses.setdefault(phone.location, []).append(phone)
        for group in houses.values():
            n_wifi = sum(1 for p in group if p.network in wifi)
            assert n_wifi == 2

    def test_edge_to_4g_present(self):
        technologies = {p.network for p in paper_testbed().phones}
        assert NetworkTechnology.EDGE in technologies
        assert NetworkTechnology.FOUR_G in technologies

    def test_clock_range_matches_paper(self):
        clocks = [p.cpu_mhz for p in paper_testbed().phones]
        assert min(clocks) == REFERENCE_MHZ
        assert max(clocks) == 1500.0

    def test_every_phone_has_a_link(self):
        testbed = paper_testbed()
        assert set(testbed.links) == {p.phone_id for p in testbed.phones}

    def test_efficiencies_at_least_one(self):
        assert all(p.cpu_efficiency >= 1.0 for p in paper_testbed().phones)

    def test_deterministic_per_seed(self):
        a = paper_testbed(seed=99)
        b = paper_testbed(seed=99)
        assert a.phones == b.phones

    def test_phone_lookup(self):
        testbed = paper_testbed()
        assert testbed.phone("phone-00").phone_id == "phone-00"
        with pytest.raises(KeyError):
            testbed.phone("missing")


class TestWorkloads:
    def test_150_tasks(self):
        jobs = evaluation_workload()
        assert len(jobs) == 150

    def test_task_mix(self):
        jobs = evaluation_workload()
        by_task = {}
        for job in jobs:
            by_task.setdefault(job.task, []).append(job)
        assert set(by_task) == {"primes", "wordcount", "blur"}
        assert all(len(group) == 50 for group in by_task.values())

    def test_blur_atomic_rest_breakable(self):
        for job in evaluation_workload():
            if job.task == "blur":
                assert job.kind is JobKind.ATOMIC
            else:
                assert job.kind is JobKind.BREAKABLE

    def test_input_sizes_within_ranges(self):
        jobs = evaluation_workload(
            primes_kb_range=(100.0, 200.0),
            wordcount_kb_range=(300.0, 400.0),
            blur_kb_range=(10.0, 20.0),
        )
        for job in jobs:
            low, high = {
                "primes": (100.0, 200.0),
                "wordcount": (300.0, 400.0),
                "blur": (10.0, 20.0),
            }[job.task]
            assert low <= job.input_kb <= high

    def test_unique_job_ids(self):
        jobs = evaluation_workload()
        assert len({j.job_id for j in jobs}) == len(jobs)

    def test_profiles_cover_workload_tasks(self):
        profiles = paper_task_profiles()
        for job in evaluation_workload():
            assert job.task in profiles

    def test_base_times_positive(self):
        assert all(t > 0 for t in paper_base_times().values())


class TestFig5:
    def test_600_identical_files(self):
        jobs = fig5_workload()
        assert len(jobs) == 600
        assert len({j.input_kb for j in jobs}) == 1
        assert all(j.kind is JobKind.ATOMIC for j in jobs)

    def test_identical_cpus_different_links(self):
        testbed = fig5_testbed()
        assert len(testbed.phones) == 6
        assert len({p.cpu_mhz for p in testbed.phones}) == 1
        means = {round(link.mean_kbps) for link in testbed.links.values()}
        assert len(means) > 1

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            fig5_workload(n_files=0)
        with pytest.raises(ValueError):
            fig5_workload(file_kb=0.0)
        with pytest.raises(ValueError):
            evaluation_workload(instances_per_task=0)
