"""Tests for the photo-blur task and its pixel-text pre-processing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.workloads.photoblur import (
    PhotoBlurTask,
    box_blur,
    grid_to_text,
    text_to_grid,
)


def naive_box_blur(grid, radius):
    grid = np.asarray(grid, dtype=float)
    height, width = grid.shape
    out = np.empty_like(grid)
    for i in range(height):
        for j in range(width):
            window = grid[
                max(0, i - radius) : min(height, i + radius + 1),
                max(0, j - radius) : min(width, j + radius + 1),
            ]
            out[i, j] = window.mean()
    return out


class TestBoxBlur:
    def test_radius_zero_is_identity(self):
        grid = np.arange(12.0).reshape(3, 4)
        assert np.allclose(box_blur(grid, 0), grid)

    def test_uniform_image_unchanged(self):
        grid = np.full((5, 5), 7.0)
        assert np.allclose(box_blur(grid, 2), grid)

    def test_matches_naive_small(self):
        grid = np.arange(30.0).reshape(5, 6)
        assert np.allclose(box_blur(grid, 1), naive_box_blur(grid, 1))

    def test_matches_naive_large_radius(self):
        grid = np.arange(20.0).reshape(4, 5)
        assert np.allclose(box_blur(grid, 10), naive_box_blur(grid, 10))

    def test_single_pixel(self):
        grid = np.array([[5.0]])
        assert np.allclose(box_blur(grid, 3), grid)

    def test_preserves_mean_under_full_window(self):
        grid = np.random.default_rng(1).uniform(0, 255, (4, 4))
        blurred = box_blur(grid, 10)  # window covers everything
        assert np.allclose(blurred, grid.mean())

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            box_blur(np.ones((2, 2)), -1)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            box_blur(np.ones(5), 1)

    @settings(max_examples=25, deadline=None)
    @given(
        grid=arrays(
            float,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=8),
            ),
            elements=st.floats(min_value=0, max_value=255),
        ),
        radius=st.integers(min_value=0, max_value=4),
    )
    def test_matches_naive_property(self, grid, radius):
        assert np.allclose(box_blur(grid, radius), naive_box_blur(grid, radius))


class TestPixelText:
    def test_round_trip(self):
        grid = np.arange(12.0).reshape(3, 4)
        assert np.allclose(text_to_grid(grid_to_text(grid)), grid)

    def test_header_carries_dimensions(self):
        text = grid_to_text(np.zeros((2, 5)))
        assert text.splitlines()[0] == "2 5"

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            text_to_grid("")

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            text_to_grid("not a header\n1\n2")

    def test_truncated_pixels_rejected(self):
        with pytest.raises(ValueError, match="pixel lines"):
            text_to_grid("2 2\n1\n2\n3")

    def test_non_2d_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_to_text(np.zeros(5))


class TestPhotoBlurTask:
    def run_task(self, task, text):
        state = task.initial_state()
        for item in task.items_from_text(text):
            state = task.process_item(state, item)
        return task.finalize(state)

    def test_end_to_end_matches_direct_blur(self):
        grid = np.arange(24.0).reshape(4, 6)
        task = PhotoBlurTask(radius=1)
        result_text = self.run_task(task, grid_to_text(grid))
        assert np.allclose(text_to_grid(result_text), box_blur(grid, 1))

    def test_is_atomic(self):
        task = PhotoBlurTask()
        assert not task.breakable
        with pytest.raises(ValueError):
            task.aggregate(["a", "b"])

    def test_single_partial_aggregate_passthrough(self):
        assert PhotoBlurTask().aggregate(["x"]) == "x"

    def test_finalize_without_header_rejected(self):
        task = PhotoBlurTask()
        with pytest.raises(ValueError, match="header"):
            task.finalize(task.initial_state())

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            PhotoBlurTask(radius=-1)

    def test_metadata(self):
        task = PhotoBlurTask()
        assert task.name == "blur"
        assert task.executable_kb > 0
