"""Tests for the prime-counting task."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.primes import PrimeCountTask, is_prime


def naive_is_prime(n):
    if n < 2:
        return False
    return all(n % d for d in range(2, n))


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 97, 7919, 104729])
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [-7, -1, 0, 1, 4, 9, 100, 7917, 104730])
    def test_known_composites_and_edge_cases(self, n):
        assert not is_prime(n)

    @given(n=st.integers(min_value=-100, max_value=2000))
    def test_matches_naive_reference(self, n):
        assert is_prime(n) == naive_is_prime(n)

    def test_large_prime_square_boundary(self):
        # 25 = 5*5 exercises the divisor*divisor <= n boundary.
        assert not is_prime(25)
        assert not is_prime(49)
        assert is_prime(53)


class TestPrimeCountTask:
    def test_counts_primes_in_lines(self):
        task = PrimeCountTask()
        state = task.initial_state()
        for line in ["2", "3", "4", "17", "18"]:
            state = task.process_item(state, line)
        assert task.finalize(state) == 3

    def test_malformed_lines_counted_as_nonprime(self):
        task = PrimeCountTask()
        state = task.initial_state()
        for line in ["hello", "", "  7  ", "3.14", None]:
            state = task.process_item(state, line)
        assert task.finalize(state) == 1  # only "  7  "

    def test_aggregate_sums(self):
        assert PrimeCountTask().aggregate([3, 4, 0]) == 7

    def test_partition_equivalence(self):
        """Counting over partitions then aggregating equals counting whole."""
        lines = [str(n) for n in range(500)]
        task = PrimeCountTask()

        def count(chunk):
            state = task.initial_state()
            for line in chunk:
                state = task.process_item(state, line)
            return task.finalize(state)

        whole = count(lines)
        parts = task.aggregate([count(lines[:100]), count(lines[100:])])
        assert parts == whole

    def test_metadata(self):
        task = PrimeCountTask()
        assert task.name == "primes"
        assert task.breakable
        assert task.executable_kb > 0

    def test_items_from_text(self):
        items = list(PrimeCountTask().items_from_text("1\n2\n3"))
        assert items == ["1", "2", "3"]
