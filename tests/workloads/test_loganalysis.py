"""Tests for the log-analysis task (the paper's IT-department example)."""

import random

import pytest

from repro.workloads.loganalysis import (
    DEFAULT_SIGNATURES,
    LogAnalysisTask,
    LogReport,
    machine_log,
)


def run_task(task, text):
    state = task.initial_state()
    for line in task.items_from_text(text):
        state = task.process_item(state, line)
    return task.finalize(state)


class TestLogAnalysisTask:
    def test_counts_signatures(self):
        task = LogAnalysisTask(("ERROR", "FATAL"))
        report = run_task(
            task, "a ERROR b\nclean line\nc FATAL d\ne ERROR f"
        )
        assert report.counts == {"ERROR": 2, "FATAL": 1}
        assert report.lines_scanned == 4

    def test_word_boundary_matching(self):
        task = LogAnalysisTask(("OOM",))
        report = run_task(task, "ROOM booked\nOOM killer fired")
        assert report.counts == {"OOM": 1}

    def test_samples_capped(self):
        task = LogAnalysisTask(("ERROR",), max_samples=2)
        report = run_task(task, "\n".join(f"x ERROR {i}" for i in range(10)))
        assert report.counts["ERROR"] == 10
        assert len(report.samples["ERROR"]) == 2
        assert report.samples["ERROR"][0] == "x ERROR 0"

    def test_line_can_match_multiple_signatures(self):
        task = LogAnalysisTask(("ERROR", "TIMEOUT"))
        report = run_task(task, "req ERROR after TIMEOUT")
        assert report.counts == {"ERROR": 1, "TIMEOUT": 1}

    def test_empty_signatures_rejected(self):
        with pytest.raises(ValueError):
            LogAnalysisTask(())

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            LogAnalysisTask(("X",), max_samples=-1)

    def test_partition_equivalence(self):
        """Scanning partitions then merging equals scanning whole —
        including the sample lists (order-preserving merge)."""
        rng = random.Random(3)
        text = machine_log(2000, rng, failure_rate=0.1)
        task = LogAnalysisTask()
        whole = run_task(task, text)
        lines = text.splitlines()
        cuts = (0, 500, 1200, 2000)
        partials = [
            run_task(task, "\n".join(lines[a:b]))
            for a, b in zip(cuts, cuts[1:])
        ]
        merged = task.aggregate(partials)
        assert merged.counts == whole.counts
        assert merged.samples == whole.samples
        assert merged.lines_scanned == whole.lines_scanned

    def test_aggregate_empty(self):
        merged = LogAnalysisTask().aggregate([])
        assert merged.counts == {}
        assert merged.lines_scanned == 0


class TestMachineLog:
    def test_line_count(self):
        rng = random.Random(1)
        assert len(machine_log(100, rng).splitlines()) == 100

    def test_failure_rate_zero_has_no_signatures(self):
        rng = random.Random(2)
        text = machine_log(500, rng, failure_rate=0.0)
        report = run_task(LogAnalysisTask(), text)
        assert report.counts == {}

    def test_failure_rate_one_flags_every_line(self):
        rng = random.Random(2)
        text = machine_log(200, rng, failure_rate=1.0)
        report = run_task(LogAnalysisTask(), text)
        assert sum(report.counts.values()) == 200

    def test_validation(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            machine_log(0, rng)
        with pytest.raises(ValueError):
            machine_log(10, rng, failure_rate=1.5)

    def test_default_signatures_nonempty(self):
        assert DEFAULT_SIGNATURES


class TestLogReport:
    def test_merge_sums_counts(self):
        a = LogReport(counts={"X": 1}, samples={"X": ["a"]}, lines_scanned=10)
        b = LogReport(counts={"X": 2, "Y": 1}, samples={"X": ["b"]}, lines_scanned=5)
        merged = a.merge(b, max_samples=3)
        assert merged.counts == {"X": 3, "Y": 1}
        assert merged.samples["X"] == ["a", "b"]
        assert merged.lines_scanned == 15

    def test_merge_does_not_mutate_operands(self):
        a = LogReport(counts={"X": 1}, samples={"X": ["a"]}, lines_scanned=1)
        b = LogReport(counts={"X": 1}, samples={"X": ["b"]}, lines_scanned=1)
        a.merge(b, max_samples=1)
        assert a.samples["X"] == ["a"]
        assert b.samples["X"] == ["b"]
