"""Tests for schedule-driven input partitioning and arrival processes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Job, JobKind
from repro.workloads.arrivals import batched_arrivals, poisson_arrivals
from repro.workloads.datagen import integer_file, split_text_by_kb


class TestSplitTextByKb:
    def test_partitions_cover_all_lines_in_order(self):
        text = "\n".join(str(i) for i in range(1000))
        parts = split_text_by_kb(text, [1.0, 2.0, 1.0])
        assert "\n".join(part for part in parts if part) == text

    def test_single_partition_is_whole_text(self):
        text = "a\nb\nc"
        assert split_text_by_kb(text, [5.0]) == [text]

    def test_sizes_roughly_proportional(self):
        rng = random.Random(1)
        text = integer_file(100.0, rng)
        parts = split_text_by_kb(text, [25.0, 50.0, 25.0])
        sizes = [len(part.encode()) for part in parts]
        total = sum(sizes)
        assert sizes[1] / total == pytest.approx(0.5, abs=0.05)

    def test_more_partitions_than_lines(self):
        text = "one\ntwo"
        parts = split_text_by_kb(text, [1.0, 1.0, 1.0, 1.0])
        assert len(parts) == 4
        non_empty = [part for part in parts if part]
        assert "\n".join(non_empty) == text

    def test_validation(self):
        with pytest.raises(ValueError):
            split_text_by_kb("x", [])
        with pytest.raises(ValueError):
            split_text_by_kb("x", [1.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(
        n_lines=st.integers(min_value=1, max_value=200),
        sizes=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=6
        ),
    )
    def test_lossless_property(self, n_lines, sizes):
        text = "\n".join(f"line-{i}" for i in range(n_lines))
        parts = split_text_by_kb(text, sizes)
        assert len(parts) == len(sizes)
        reassembled = [line for part in parts for line in part.splitlines()]
        assert reassembled == text.splitlines()


def make_jobs(n):
    return [
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 10.0, 100.0) for i in range(n)
    ]


class TestPoissonArrivals:
    def test_times_sorted_and_positive(self):
        arrivals = poisson_arrivals(
            make_jobs(50), rate_per_hour=10.0, rng=random.Random(1)
        )
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_jobs_keep_order(self):
        jobs = make_jobs(10)
        arrivals = poisson_arrivals(
            jobs, rate_per_hour=5.0, rng=random.Random(2)
        )
        assert [job.job_id for _, job in arrivals] == [j.job_id for j in jobs]

    def test_mean_gap_matches_rate(self):
        arrivals = poisson_arrivals(
            make_jobs(2000), rate_per_hour=60.0, rng=random.Random(3)
        )
        times = [t for t, _ in arrivals]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap_min = sum(gaps) / len(gaps) / 60_000.0
        assert mean_gap_min == pytest.approx(1.0, rel=0.1)

    def test_start_offset(self):
        arrivals = poisson_arrivals(
            make_jobs(3), rate_per_hour=10.0, rng=random.Random(4),
            start_ms=500.0,
        )
        assert all(t >= 500.0 for t, _ in arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(make_jobs(1), rate_per_hour=0.0, rng=random.Random(1))
        with pytest.raises(ValueError):
            poisson_arrivals(
                make_jobs(1), rate_per_hour=1.0, rng=random.Random(1),
                start_ms=-1.0,
            )


class TestBatchedArrivals:
    def test_batches_land_at_intervals(self):
        batches = [make_jobs(2), make_jobs(3)]
        arrivals = batched_arrivals(batches, interval_ms=1000.0)
        times = sorted({t for t, _ in arrivals})
        assert times == [0.0, 1000.0]
        assert len(arrivals) == 5

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            batched_arrivals([make_jobs(1)], interval_ms=10.0, jitter_ms=5.0)

    def test_jitter_applied(self):
        arrivals = batched_arrivals(
            [make_jobs(1), make_jobs(1)],
            interval_ms=1000.0,
            jitter_ms=100.0,
            rng=random.Random(5),
        )
        times = [t for t, _ in arrivals]
        assert times[0] != 0.0 or times[1] != 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batched_arrivals([make_jobs(1)], interval_ms=0.0)
        with pytest.raises(ValueError):
            batched_arrivals([make_jobs(1)], interval_ms=10.0, jitter_ms=-1.0)


class TestArrivalsThroughServer:
    def test_trickled_jobs_all_complete(self):
        from repro.core.greedy import CwcScheduler
        from repro.core.model import PhoneSpec
        from repro.core.prediction import RuntimePredictor, TaskProfile
        from repro.sim.entities import FleetGroundTruth
        from repro.sim.server import CentralServer

        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(3)
        )
        profiles = {"primes": TaskProfile("primes", 5.0, 1000.0)}
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 2.0 for p in phones},
        )
        first = make_jobs(2)
        later = [
            Job(f"late{i}", "primes", JobKind.BREAKABLE, 10.0, 100.0)
            for i in range(4)
        ]
        arrivals = poisson_arrivals(
            later, rate_per_hour=3600.0, rng=random.Random(6), start_ms=100.0
        )
        result = server.run(first, arrivals=arrivals)
        done = result.trace.completed_job_ids()
        assert {j.job_id for j in first + later} <= done
        assert len(result.rounds) >= 2
