"""Tests for job arrival processes (poisson and batched streams)."""

import random

import pytest

from repro.core.model import Job, JobKind
from repro.workloads.arrivals import (
    BatchedArrivalStream,
    PoissonArrivalStream,
    batched_arrivals,
    poisson_arrivals,
)


def make_jobs(n):
    return tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 10.0, 100.0 + i)
        for i in range(n)
    )


class TestPoissonArrivals:
    def test_seed_determinism(self):
        jobs = make_jobs(10)
        first = poisson_arrivals(jobs, rate_per_hour=60.0,
                                 rng=random.Random(7))
        second = poisson_arrivals(jobs, rate_per_hour=60.0,
                                  rng=random.Random(7))
        assert first == second

    def test_times_are_sorted_and_order_preserved(self):
        jobs = make_jobs(20)
        arrivals = poisson_arrivals(jobs, rate_per_hour=600.0,
                                    rng=random.Random(1))
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert [job.job_id for _, job in arrivals] == [
            job.job_id for job in jobs
        ]

    def test_start_offset_applies(self):
        jobs = make_jobs(5)
        arrivals = poisson_arrivals(
            jobs, rate_per_hour=60.0, rng=random.Random(2), start_ms=5_000.0
        )
        assert all(t > 5_000.0 for t, _ in arrivals)

    def test_mean_gap_matches_rate(self):
        # 1200 jobs/hour -> mean gap 3000 ms; the sample mean over a
        # long stream should land within 10%.
        jobs = make_jobs(2_000)
        arrivals = poisson_arrivals(jobs, rate_per_hour=1_200.0,
                                    rng=random.Random(3))
        mean_gap = arrivals[-1][0] / len(arrivals)
        assert 2_700.0 < mean_gap < 3_300.0

    def test_empty_jobs_empty_stream(self):
        assert poisson_arrivals((), rate_per_hour=60.0,
                                rng=random.Random(0)) == []

    @pytest.mark.parametrize("rate", (0.0, -1.0))
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate_per_hour"):
            poisson_arrivals(make_jobs(1), rate_per_hour=rate,
                             rng=random.Random(0))

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_ms"):
            poisson_arrivals(make_jobs(1), rate_per_hour=60.0,
                             rng=random.Random(0), start_ms=-1.0)


class TestBatchedArrivals:
    def test_batches_land_on_the_grid(self):
        jobs = make_jobs(6)
        batches = (jobs[:2], jobs[2:4], jobs[4:])
        arrivals = batched_arrivals(batches, interval_ms=1_000.0)
        assert [t for t, _ in arrivals] == [
            0.0, 0.0, 1_000.0, 1_000.0, 2_000.0, 2_000.0
        ]

    def test_start_offset_applies(self):
        arrivals = batched_arrivals(
            (make_jobs(1),), interval_ms=500.0, start_ms=250.0
        )
        assert arrivals[0][0] == 250.0

    def test_jitter_stays_bounded(self):
        jobs = make_jobs(8)
        batches = tuple((job,) for job in jobs)
        arrivals = batched_arrivals(
            batches, interval_ms=1_000.0, jitter_ms=100.0,
            rng=random.Random(4),
        )
        for index, (time_ms, _) in enumerate(
            sorted(arrivals, key=lambda p: p[0])
        ):
            base = index * 1_000.0
            assert base <= time_ms <= base + 100.0

    def test_output_is_sorted(self):
        jobs = make_jobs(10)
        batches = tuple((job,) for job in jobs)
        arrivals = batched_arrivals(
            batches, interval_ms=10.0, jitter_ms=500.0,
            rng=random.Random(5),
        )
        times = [t for t, _ in arrivals]
        assert times == sorted(times)

    def test_empty_batches_empty_stream(self):
        assert batched_arrivals((), interval_ms=1_000.0) == []

    @pytest.mark.parametrize("interval", (0.0, -5.0))
    def test_nonpositive_interval_rejected(self, interval):
        with pytest.raises(ValueError, match="interval_ms"):
            batched_arrivals((make_jobs(1),), interval_ms=interval)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter_ms"):
            batched_arrivals(
                (make_jobs(1),), interval_ms=1.0, jitter_ms=-1.0
            )

    def test_jitter_without_rng_rejected(self):
        with pytest.raises(ValueError, match="requires an rng"):
            batched_arrivals(
                (make_jobs(1),), interval_ms=1.0, jitter_ms=1.0
            )


class TestPoissonStream:
    def test_chained_takes_match_one_legacy_call(self):
        jobs = make_jobs(12)
        legacy = poisson_arrivals(
            jobs, rate_per_hour=120.0, rng=random.Random(7)
        )
        stream = PoissonArrivalStream(
            rate_per_hour=120.0, rng=random.Random(7)
        )
        chained = stream.take(jobs[:5]) + stream.take(jobs[5:])
        assert chained == legacy

    def test_state_round_trip_continues_the_stream(self):
        jobs = make_jobs(10)
        reference = PoissonArrivalStream(
            rate_per_hour=60.0, rng=random.Random(3)
        )
        expected = reference.take(jobs)

        stream = PoissonArrivalStream(
            rate_per_hour=60.0, rng=random.Random(3)
        )
        first = stream.take(jobs[:4])
        # Freeze/thaw across a process boundary (JSON round trip).
        import json

        thawed = PoissonArrivalStream.from_state(
            json.loads(json.dumps(stream.state()))
        )
        assert first + thawed.take(jobs[4:]) == expected
        assert thawed.emitted == len(jobs)

    def test_advance_to_enforces_monotonic_time(self):
        stream = PoissonArrivalStream(
            rate_per_hour=60.0, rng=random.Random(1)
        )
        stream.take(make_jobs(3))
        with pytest.raises(ValueError, match="monotonic"):
            stream.advance_to(0.0)
        stream.advance_to(stream.last_ms + 1_000.0)

    def test_advance_to_offsets_future_arrivals(self):
        stream = PoissonArrivalStream(
            rate_per_hour=60.0, rng=random.Random(2)
        )
        stream.advance_to(1_000_000.0)
        arrivals = stream.take(make_jobs(3))
        assert all(t > 1_000_000.0 for t, _ in arrivals)


class TestBatchedStream:
    def test_chained_takes_match_one_legacy_call(self):
        jobs = make_jobs(6)
        batches = tuple((job,) for job in jobs)
        legacy = batched_arrivals(
            batches, interval_ms=250.0, jitter_ms=50.0,
            rng=random.Random(4),
        )
        stream = BatchedArrivalStream(
            interval_ms=250.0, jitter_ms=50.0, rng=random.Random(4)
        )
        chained = stream.take(batches[:2]) + stream.take(batches[2:])
        assert sorted(chained) == sorted(legacy)

    def test_state_round_trip_keeps_the_grid(self):
        jobs = make_jobs(4)
        batches = tuple((job,) for job in jobs)
        stream = BatchedArrivalStream(interval_ms=1_000.0)
        first = stream.take(batches[:2])
        thawed = BatchedArrivalStream.from_state(stream.state())
        rest = thawed.take(batches[2:])
        assert [t for t, _ in first + rest] == [
            0.0, 1_000.0, 2_000.0, 3_000.0
        ]

    def test_advance_to_rejects_regression(self):
        stream = BatchedArrivalStream(interval_ms=100.0)
        stream.take((make_jobs(1),))
        with pytest.raises(ValueError, match="monotonic"):
            stream.advance_to(-50.0)


class TestServerIntegration:
    def test_arrival_stream_feeds_the_server(self):
        from repro.core.greedy import CwcScheduler
        from repro.core.model import PhoneSpec
        from repro.core.prediction import RuntimePredictor, TaskProfile
        from repro.sim.entities import FleetGroundTruth
        from repro.sim.server import CentralServer
        from repro.sim.validation import check_run_invariants

        profiles = {"primes": TaskProfile("primes", 10.0, 800.0)}
        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=900.0) for i in range(2)
        )
        jobs = make_jobs(4)
        arrivals = poisson_arrivals(
            jobs[2:], rate_per_hour=3_600.0, rng=random.Random(6)
        )
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 2.0 for p in phones},
        )
        result = server.run(jobs[:2], arrivals=arrivals)
        check_run_invariants(result, jobs)
        completed = {c.job_id for c in result.trace.completions}
        assert completed == {job.job_id for job in jobs}
