"""Tests for the word-counting task."""

import pytest

from repro.workloads.wordcount import WordCountTask


def count_text(task, text):
    state = task.initial_state()
    for line in task.items_from_text(text):
        state = task.process_item(state, line)
    return task.finalize(state)


class TestWordCountTask:
    def test_basic_counting(self):
        task = WordCountTask("the")
        assert count_text(task, "the cat and the dog\nthe end") == 3

    def test_case_insensitive(self):
        task = WordCountTask("The")
        assert count_text(task, "the THE tHe") == 3

    def test_word_boundaries(self):
        task = WordCountTask("the")
        assert count_text(task, "there other weather lathe") == 0

    def test_punctuation_boundaries(self):
        task = WordCountTask("night")
        assert count_text(task, "night, night. (night) night!") == 4

    def test_regex_metacharacters_escaped(self):
        task = WordCountTask("a.b")
        assert count_text(task, "a.b axb") == 1

    def test_no_occurrences(self):
        assert count_text(WordCountTask("zebra"), "plain text") == 0

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            WordCountTask("")
        with pytest.raises(ValueError):
            WordCountTask("   ")

    def test_aggregate_sums(self):
        assert WordCountTask("x").aggregate([1, 2, 3]) == 6

    def test_partition_equivalence(self):
        lines = ["the fox the hen"] * 20 + ["no match here"] * 10
        task = WordCountTask("the")

        def count(chunk):
            state = task.initial_state()
            for line in chunk:
                state = task.process_item(state, line)
            return task.finalize(state)

        whole = count(lines)
        assert task.aggregate([count(lines[:7]), count(lines[7:])]) == whole

    def test_default_word(self):
        assert WordCountTask().word == "the"

    def test_metadata(self):
        task = WordCountTask()
        assert task.name == "wordcount"
        assert task.breakable
