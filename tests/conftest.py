"""Shared fixtures: small scheduling instances used across test modules."""

import random

import pytest

from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor


def make_phones(count=4, base_mhz=800.0, step_mhz=200.0):
    return tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=base_mhz + i * step_mhz)
        for i in range(count)
    )


def make_predictor(phones, base_times=None, alpha=0.5):
    slowest = min(phones, key=lambda p: p.cpu_mhz)
    return RuntimePredictor.from_reference_phone(
        slowest, base_times or {"primes": 10.0, "blur": 20.0}, alpha=alpha
    )


def make_instance(
    *,
    n_breakable=4,
    n_atomic=2,
    n_phones=4,
    seed=1,
    input_range=(100.0, 2000.0),
    b_range=(1.0, 70.0),
):
    rng = random.Random(seed)
    phones = make_phones(n_phones)
    predictor = make_predictor(phones)
    jobs = [
        Job(f"b{i}", "primes", JobKind.BREAKABLE, 40.0, rng.uniform(*input_range))
        for i in range(n_breakable)
    ]
    jobs += [
        Job(f"a{i}", "blur", JobKind.ATOMIC, 80.0, rng.uniform(*input_range))
        for i in range(n_atomic)
    ]
    b = {p.phone_id: rng.uniform(*b_range) for p in phones}
    return SchedulingInstance.build(jobs, phones, b, predictor)


@pytest.fixture
def small_instance():
    return make_instance()


@pytest.fixture
def single_phone_instance():
    return make_instance(n_phones=1, n_breakable=2, n_atomic=1)
