"""Tests for iperf-like bandwidth measurement."""

import pytest

from repro.core.model import NetworkTechnology
from repro.netmodel.links import WirelessLink
from repro.netmodel.measurement import (
    BandwidthMeasurement,
    measure_fleet,
    measure_link,
)


class TestMeasureLink:
    def test_statistics_are_consistent(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_G, seed=1)
        measurement = measure_link(link, duration_s=120.0)
        assert measurement.min_kbps <= measurement.mean_kbps <= measurement.max_kbps
        assert measurement.std_kbps >= 0
        assert len(measurement.samples) == 120

    def test_b_is_inverse_of_mean(self):
        link = WirelessLink.for_technology(NetworkTechnology.FOUR_G, seed=2)
        measurement = measure_link(link, duration_s=60.0)
        assert measurement.b_ms_per_kb == pytest.approx(
            1000.0 / measurement.mean_kbps
        )

    def test_wifi_cv_is_small(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_A, seed=3)
        measurement = measure_link(link, duration_s=600.0)
        assert measurement.coefficient_of_variation < 0.1

    def test_cellular_cv_is_larger_than_wifi(self):
        wifi = measure_link(
            WirelessLink.for_technology(NetworkTechnology.WIFI_A, seed=4),
            duration_s=600.0,
        )
        cellular = measure_link(
            WirelessLink.for_technology(NetworkTechnology.THREE_G, seed=4),
            duration_s=600.0,
        )
        assert cellular.coefficient_of_variation > wifi.coefficient_of_variation

    def test_single_sample_measurement(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_G, seed=5)
        measurement = measure_link(link, duration_s=1.0, interval_s=1.0)
        assert len(measurement.samples) == 1
        assert measurement.std_kbps == 0.0


class TestMeasureFleet:
    def test_returns_b_per_phone(self):
        links = {
            "fast": WirelessLink.for_technology(NetworkTechnology.FOUR_G, seed=6),
            "slow": WirelessLink.for_technology(NetworkTechnology.EDGE, seed=7),
        }
        b = measure_fleet(links)
        assert set(b) == {"fast", "slow"}
        assert b["fast"] < b["slow"]

    def test_empty_fleet(self):
        assert measure_fleet({}) == {}

    def test_b_values_positive(self):
        links = {
            f"p{i}": WirelessLink.for_technology(NetworkTechnology.WIFI_G, seed=i)
            for i in range(5)
        }
        assert all(value > 0 for value in measure_fleet(links).values())
