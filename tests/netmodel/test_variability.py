"""Tests for the AR(1) bandwidth-variability process."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel.variability import Ar1Process


class TestValidation:
    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            Ar1Process(mean=0.0, sigma=1.0, rho=0.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            Ar1Process(mean=10.0, sigma=-1.0, rho=0.5)

    def test_rho_one_rejected(self):
        with pytest.raises(ValueError):
            Ar1Process(mean=10.0, sigma=1.0, rho=1.0)

    def test_negative_count_rejected(self):
        process = Ar1Process(mean=10.0, sigma=1.0, rho=0.5)
        with pytest.raises(ValueError):
            process.samples(-1, random.Random(0))


class TestBehaviour:
    def test_sample_count(self):
        process = Ar1Process(mean=10.0, sigma=1.0, rho=0.5)
        assert len(process.samples(100, random.Random(0))) == 100

    def test_zero_sigma_is_constant_at_mean(self):
        process = Ar1Process(mean=10.0, sigma=0.0, rho=0.5)
        samples = process.samples(50, random.Random(0))
        assert all(s == pytest.approx(10.0) for s in samples)

    def test_samples_stay_positive(self):
        # Mean close to zero with large noise: the floor must hold.
        process = Ar1Process(mean=1.0, sigma=5.0, rho=0.2)
        samples = process.samples(500, random.Random(1))
        assert all(s > 0 for s in samples)

    def test_mean_reversion(self):
        process = Ar1Process(mean=100.0, sigma=2.0, rho=0.5)
        samples = process.samples(5000, random.Random(2))
        assert statistics.fmean(samples) == pytest.approx(100.0, rel=0.05)

    def test_stationary_std_formula(self):
        process = Ar1Process(mean=100.0, sigma=3.0, rho=0.8)
        expected = 3.0 / (1 - 0.64) ** 0.5
        assert process.stationary_std() == pytest.approx(expected)

    def test_higher_rho_means_smoother_series(self):
        smooth = Ar1Process(mean=100.0, sigma=1.0, rho=0.95)
        rough = Ar1Process(mean=100.0, sigma=1.0, rho=0.0)
        smooth_samples = smooth.samples(2000, random.Random(3))
        rough_samples = rough.samples(2000, random.Random(3))

        def mean_abs_step(xs):
            return statistics.fmean(
                abs(b - a) for a, b in zip(xs, xs[1:])
            )

        assert mean_abs_step(smooth_samples) < mean_abs_step(rough_samples)

    def test_determinism_per_rng_seed(self):
        process = Ar1Process(mean=10.0, sigma=1.0, rho=0.5)
        a = process.samples(20, random.Random(7))
        b = process.samples(20, random.Random(7))
        assert a == b

    @settings(max_examples=30, deadline=None)
    @given(
        mean=st.floats(min_value=0.1, max_value=1e4),
        sigma=st.floats(min_value=0.0, max_value=100.0),
        rho=st.floats(min_value=0.0, max_value=0.99),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_always_positive_property(self, mean, sigma, rho, seed):
        process = Ar1Process(mean=mean, sigma=sigma, rho=rho)
        assert all(
            s >= process.floor for s in process.samples(100, random.Random(seed))
        )
