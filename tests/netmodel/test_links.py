"""Tests for wireless link models."""

import statistics

import pytest

from repro.core.model import NetworkTechnology
from repro.netmodel.links import (
    DEFAULT_PROFILES,
    LinkProfile,
    WirelessLink,
    kbps_to_b_ms_per_kb,
)


class TestConversion:
    def test_kbps_to_b(self):
        assert kbps_to_b_ms_per_kb(1000.0) == pytest.approx(1.0)
        assert kbps_to_b_ms_per_kb(14.2857) == pytest.approx(70.0, rel=1e-3)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            kbps_to_b_ms_per_kb(0.0)


class TestProfiles:
    def test_all_technologies_have_profiles(self):
        for technology in NetworkTechnology:
            assert technology in DEFAULT_PROFILES

    def test_fleet_spans_paper_b_range(self):
        """Fastest ≈1 ms/KB (4G), slowest ≈70 ms/KB (EDGE)."""
        b_values = {
            tech: kbps_to_b_ms_per_kb(profile.nominal_kbps)
            for tech, profile in DEFAULT_PROFILES.items()
        }
        assert min(b_values.values()) == pytest.approx(1.0, rel=0.3)
        assert max(b_values.values()) == pytest.approx(70.0, rel=0.3)

    def test_wifi_jitter_is_lower_than_cellular(self):
        wifi = DEFAULT_PROFILES[NetworkTechnology.WIFI_G].jitter_fraction
        cellular = DEFAULT_PROFILES[NetworkTechnology.THREE_G].jitter_fraction
        assert wifi < cellular

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(NetworkTechnology.WIFI_G, nominal_kbps=0.0,
                        jitter_fraction=0.1, rho=0.5)
        with pytest.raises(ValueError):
            LinkProfile(NetworkTechnology.WIFI_G, nominal_kbps=100.0,
                        jitter_fraction=1.5, rho=0.5)


class TestWirelessLink:
    def test_for_technology_uses_defaults(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_A)
        assert link.technology is NetworkTechnology.WIFI_A
        assert link.mean_kbps == DEFAULT_PROFILES[NetworkTechnology.WIFI_A].nominal_kbps

    def test_interference_scales_mean(self):
        link = WirelessLink.for_technology(
            NetworkTechnology.WIFI_G, interference_factor=0.5
        )
        assert link.mean_kbps == pytest.approx(
            DEFAULT_PROFILES[NetworkTechnology.WIFI_G].nominal_kbps * 0.5
        )

    def test_bad_interference_rejected(self):
        with pytest.raises(ValueError):
            WirelessLink.for_technology(
                NetworkTechnology.WIFI_G, interference_factor=0.0
            )
        with pytest.raises(ValueError):
            WirelessLink.for_technology(
                NetworkTechnology.WIFI_G, interference_factor=1.5
            )

    def test_is_wifi(self):
        assert WirelessLink.for_technology(NetworkTechnology.WIFI_A).is_wifi
        assert WirelessLink.for_technology(NetworkTechnology.WIFI_G).is_wifi
        assert not WirelessLink.for_technology(NetworkTechnology.EDGE).is_wifi

    def test_trace_length(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_G)
        assert len(link.bandwidth_trace(600.0, 1.0)) == 600
        assert len(link.bandwidth_trace(10.0, 2.0)) == 5

    def test_trace_validation(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_G)
        with pytest.raises(ValueError):
            link.bandwidth_trace(0.0)
        with pytest.raises(ValueError):
            link.bandwidth_trace(10.0, 0.0)

    def test_trace_centred_on_mean(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_G, seed=2)
        trace = link.bandwidth_trace(3000.0, 1.0)
        assert statistics.fmean(trace) == pytest.approx(
            link.mean_kbps, rel=0.05
        )

    def test_same_seed_same_trace(self):
        a = WirelessLink.for_technology(NetworkTechnology.THREE_G, seed=9)
        b = WirelessLink.for_technology(NetworkTechnology.THREE_G, seed=9)
        assert a.bandwidth_trace(60.0) == b.bandwidth_trace(60.0)

    def test_degraded_lowers_mean(self):
        link = WirelessLink.for_technology(NetworkTechnology.WIFI_G)
        worse = link.degraded(0.5)
        assert worse.mean_kbps == pytest.approx(link.mean_kbps * 0.5)
