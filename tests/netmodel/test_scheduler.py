"""Tests for adaptive bandwidth re-measurement scheduling."""

import pytest

from repro.core.model import NetworkTechnology
from repro.netmodel.links import WirelessLink
from repro.netmodel.measurement import measure_link
from repro.netmodel.scheduler import MeasurementScheduler


def measured(technology, seed=1, duration_s=120.0):
    link = WirelessLink.for_technology(technology, seed=seed)
    return measure_link(link, duration_s=duration_s)


class TestIntervals:
    def make(self):
        return MeasurementScheduler(
            min_interval_ms=60_000.0, max_interval_ms=3_600_000.0, cv_scale=0.15
        )

    def test_unmeasured_link_due_immediately(self):
        scheduler = self.make()
        assert scheduler.is_due("p", now_ms=0.0)
        assert scheduler.interval_ms("p") == 0.0

    def test_stable_link_gets_long_interval(self):
        scheduler = self.make()
        scheduler.record("wifi", measured(NetworkTechnology.WIFI_A), 0.0)
        assert scheduler.interval_ms("wifi") > 2_000_000.0

    def test_jittery_link_gets_short_interval(self):
        scheduler = self.make()
        scheduler.record("edge", measured(NetworkTechnology.EDGE), 0.0)
        scheduler.record("wifi", measured(NetworkTechnology.WIFI_A), 0.0)
        assert scheduler.interval_ms("edge") < scheduler.interval_ms("wifi")

    def test_due_follows_interval(self):
        scheduler = self.make()
        scheduler.record("wifi", measured(NetworkTechnology.WIFI_A), 0.0)
        interval = scheduler.interval_ms("wifi")
        assert not scheduler.is_due("wifi", now_ms=interval / 2)
        assert scheduler.is_due("wifi", now_ms=interval + 1)

    def test_cv_above_scale_clamps_to_min_interval(self):
        scheduler = MeasurementScheduler(
            min_interval_ms=100.0, max_interval_ms=1000.0, cv_scale=0.01
        )
        scheduler.record("cell", measured(NetworkTechnology.THREE_G), 0.0)
        assert scheduler.interval_ms("cell") == pytest.approx(100.0)

    def test_state_lookup(self):
        scheduler = self.make()
        scheduler.record("p", measured(NetworkTechnology.WIFI_G), 5.0)
        state = scheduler.state("p")
        assert state.measurements == 1
        assert state.last_measured_ms == 5.0
        with pytest.raises(KeyError):
            scheduler.state("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementScheduler(min_interval_ms=0.0)
        with pytest.raises(ValueError):
            MeasurementScheduler(min_interval_ms=100.0, max_interval_ms=50.0)
        with pytest.raises(ValueError):
            MeasurementScheduler(cv_scale=0.0)
        with pytest.raises(ValueError):
            MeasurementScheduler(ewma=0.0)


class TestMeasureDue:
    def test_first_call_measures_everything(self):
        scheduler = MeasurementScheduler()
        links = {
            "a": WirelessLink.for_technology(NetworkTechnology.WIFI_A, seed=1),
            "b": WirelessLink.for_technology(NetworkTechnology.EDGE, seed=2),
        }
        b = scheduler.measure_due(links, now_ms=0.0)
        assert set(b) == {"a", "b"}
        assert all(value > 0 for value in b.values())

    def test_second_call_uses_cache_when_not_due(self):
        scheduler = MeasurementScheduler(min_interval_ms=1e6, max_interval_ms=1e9)
        links = {
            "a": WirelessLink.for_technology(NetworkTechnology.WIFI_A, seed=1),
        }
        first = scheduler.measure_due(links, now_ms=0.0)
        second = scheduler.measure_due(links, now_ms=10.0)
        assert first == second
        assert scheduler.state("a").measurements == 1

    def test_remeasures_when_due(self):
        scheduler = MeasurementScheduler(
            min_interval_ms=10.0, max_interval_ms=20.0
        )
        links = {
            "a": WirelessLink.for_technology(NetworkTechnology.THREE_G, seed=3),
        }
        scheduler.measure_due(links, now_ms=0.0)
        scheduler.measure_due(links, now_ms=1e6)
        assert scheduler.state("a").measurements == 2
