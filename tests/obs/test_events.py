"""Tests for the structured event bus and envelope schema."""

import io
import json

import pytest

from repro.obs.events import (
    Event,
    EventBus,
    EventOrderError,
    EventSchemaError,
    read_events_jsonl,
    validate_event_dict,
)


def make_bus(**kwargs):
    return EventBus("run-1", wall_clock=lambda: 123.5, **kwargs)


class TestEmit:
    def test_envelope_fields(self):
        bus = make_bus()
        event = bus.emit(
            "server", "dispatch", sim_time_ms=10.0, phone_id="p0"
        )
        assert event.run_id == "run-1"
        assert event.seq == 0
        assert event.sim_time_ms == 10.0
        assert event.wall_time_s == 123.5
        assert event.component == "server"
        assert event.kind == "dispatch"
        assert event.severity == "info"
        assert event.payload == {"phone_id": "p0"}

    def test_seq_increments(self):
        bus = make_bus()
        bus.emit("server", "a", sim_time_ms=0.0)
        bus.emit("server", "b", sim_time_ms=0.0)
        assert [e.seq for e in bus.events] == [0, 1]
        assert len(bus) == 2

    def test_sim_time_must_not_decrease(self):
        bus = make_bus()
        bus.emit("server", "a", sim_time_ms=100.0)
        with pytest.raises(EventOrderError):
            bus.emit("server", "b", sim_time_ms=99.9)

    def test_equal_sim_time_allowed(self):
        bus = make_bus()
        bus.emit("server", "a", sim_time_ms=100.0)
        bus.emit("server", "b", sim_time_ms=100.0)
        assert len(bus) == 2

    def test_bad_severity_rejected(self):
        with pytest.raises(EventSchemaError):
            make_bus().emit("server", "a", sim_time_ms=0.0, severity="loud")

    def test_empty_run_id_rejected(self):
        with pytest.raises(ValueError):
            EventBus("")

    def test_filters(self):
        bus = make_bus()
        bus.emit("server", "dispatch", sim_time_ms=0.0)
        bus.emit("chaos", "unplug", sim_time_ms=1.0, severity="warning")
        bus.emit("server", "complete", sim_time_ms=2.0)
        assert len(bus.of_component("server")) == 2
        assert len(bus.of_kind("unplug")) == 1

    def test_sink_streams_jsonl(self):
        sink = io.StringIO()
        bus = make_bus(sink=sink)
        bus.emit("server", "a", sim_time_ms=0.0)
        bus.emit("server", "b", sim_time_ms=1.0)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_event_dict(json.loads(line))


class TestValidation:
    def valid(self):
        return Event(
            run_id="r",
            seq=0,
            sim_time_ms=0.0,
            wall_time_s=1.0,
            component="server",
            kind="dispatch",
            severity="info",
            payload={},
        ).to_dict()

    def test_valid_envelope_passes(self):
        validate_event_dict(self.valid())

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda d: d.pop("run_id"),
            lambda d: d.pop("payload"),
            lambda d: d.update(run_id=""),
            lambda d: d.update(seq=-1),
            lambda d: d.update(seq=1.5),
            lambda d: d.update(sim_time_ms=-1.0),
            lambda d: d.update(sim_time_ms="zero"),
            lambda d: d.update(component=""),
            lambda d: d.update(severity="loud"),
            lambda d: d.update(payload=[1, 2]),
            lambda d: d.update(extra_field=1),
        ],
    )
    def test_malformed_envelope_rejected(self, mutation):
        data = self.valid()
        mutation(data)
        with pytest.raises(EventSchemaError):
            validate_event_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event_dict([1, 2, 3])


class TestJsonlRoundtrip:
    def test_write_and_read(self, tmp_path):
        bus = make_bus()
        bus.emit("server", "a", sim_time_ms=0.0, n=1)
        bus.emit("chaos", "unplug", sim_time_ms=5.0, severity="warning")
        path = tmp_path / "events.jsonl"
        assert bus.write_jsonl(path) == 2
        loaded = read_events_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0]["payload"] == {"n": 1}
        assert loaded[1]["severity"] == "warning"

    def test_invalid_json_line_names_location(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(EventSchemaError, match="1"):
            read_events_jsonl(path)

    def test_schema_violation_caught(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"run_id": "r"}) + "\n")
        with pytest.raises(EventSchemaError):
            read_events_jsonl(path)
        # But loads without validation.
        assert read_events_jsonl(path, validate=False) == [{"run_id": "r"}]
