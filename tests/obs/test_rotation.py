"""Tests for bounded telemetry: rotating sinks, ring buffers, stitching."""

import json

import pytest

from repro.obs import (
    EventBus,
    EventSchemaError,
    RotatingJsonlSink,
    Telemetry,
    read_events_jsonl,
)
from repro.obs.samplers import SamplerSet, Series


def fill(bus, n):
    for i in range(n):
        bus.emit("server", "tick", sim_time_ms=float(i), n=i)


class TestRotatingSink:
    def test_segments_rotate_on_line_count(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path, max_lines_per_segment=7)
        fill(EventBus("r", sink=sink, wall_clock=lambda: 0.0), 23)
        sink.close()
        index = json.loads((tmp_path / "events.index.json").read_text())
        assert [s["lines"] for s in index["segments"]] == [7, 7, 7, 2]
        assert index["dropped_lines"] == 0

    def test_segments_rotate_on_bytes(self, tmp_path):
        sink = RotatingJsonlSink(
            tmp_path, max_lines_per_segment=10_000,
            max_bytes_per_segment=500,
        )
        fill(EventBus("r", sink=sink, wall_clock=lambda: 0.0), 20)
        sink.close()
        assert len(sink.segment_paths) > 1
        for seg_path in sink.segment_paths[:-1]:
            assert seg_path.stat().st_size >= 500

    def test_max_segments_bounds_disk(self, tmp_path):
        sink = RotatingJsonlSink(
            tmp_path, max_lines_per_segment=5, max_segments=2
        )
        fill(EventBus("r", sink=sink, wall_clock=lambda: 0.0), 23)
        sink.close()
        on_disk = sorted(p.name for p in tmp_path.glob("*.jsonl"))
        assert len(on_disk) == 2
        assert sink.dropped_lines == 15
        assert sink.total_lines == 8

    def test_stitched_read_recovers_every_event(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path, max_lines_per_segment=4)
        fill(EventBus("r", sink=sink, wall_clock=lambda: 0.0), 11)
        sink.close()
        by_dir = read_events_jsonl(tmp_path)
        by_index = read_events_jsonl(tmp_path / "events.index.json")
        assert by_dir == by_index
        assert [e["seq"] for e in by_dir] == list(range(11))

    def test_single_file_read_still_works(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path, max_lines_per_segment=4)
        fill(EventBus("r", sink=sink, wall_clock=lambda: 0.0), 6)
        sink.close()
        first = read_events_jsonl(tmp_path / "events-000000.jsonl")
        assert len(first) == 4

    def test_missing_segment_detected(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path, max_lines_per_segment=3)
        fill(EventBus("r", sink=sink, wall_clock=lambda: 0.0), 7)
        sink.close()
        (tmp_path / "events-000001.jsonl").unlink()
        with pytest.raises(EventSchemaError, match="missing"):
            read_events_jsonl(tmp_path)

    def test_line_count_mismatch_detected(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path, max_lines_per_segment=3)
        bus = EventBus("r", sink=sink, wall_clock=lambda: 0.0)
        fill(bus, 6)
        sink.close()
        seg = tmp_path / "events-000000.jsonl"
        lines = seg.read_text().splitlines()
        seg.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(EventSchemaError, match="records 3 lines"):
            read_events_jsonl(tmp_path)

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(EventSchemaError, match="no .*index"):
            read_events_jsonl(tmp_path)

    def test_param_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_lines_per_segment"):
            RotatingJsonlSink(tmp_path, max_lines_per_segment=0)
        with pytest.raises(ValueError, match="max_segments"):
            RotatingJsonlSink(tmp_path, max_segments=0)


class TestEventBusRing:
    def test_ring_bounds_memory_not_seq(self):
        bus = EventBus("r", wall_clock=lambda: 0.0, max_events=5)
        fill(bus, 23)
        assert len(bus) == 5
        assert bus.dropped_events == 18
        assert [e.seq for e in bus.events] == list(range(18, 23))

    def test_sink_still_receives_everything(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path, max_lines_per_segment=100)
        bus = EventBus("r", sink=sink, wall_clock=lambda: 0.0, max_events=3)
        fill(bus, 12)
        sink.close()
        assert len(read_events_jsonl(tmp_path)) == 12

    def test_unbounded_by_default(self):
        bus = EventBus("r", wall_clock=lambda: 0.0)
        fill(bus, 50)
        assert len(bus) == 50
        assert bus.dropped_events == 0

    def test_max_events_validated(self):
        with pytest.raises(ValueError, match="max_events"):
            EventBus("r", max_events=0)


class TestSeriesRing:
    def test_ring_keeps_newest(self):
        series = Series(name="s", max_samples=3)
        for i in range(10):
            series.append(float(i), float(i))
        assert series.times_ms == [7.0, 8.0, 9.0]
        assert series.dropped == 7

    def test_dropped_survives_serialisation(self):
        series = Series(name="s", max_samples=2)
        for i in range(5):
            series.append(float(i), float(i))
        again = Series.from_dict(series.to_dict())
        assert again.dropped == 3
        assert again.values == [3.0, 4.0]

    def test_sampler_set_applies_bound(self):
        sams = SamplerSet(period_ms=1.0, max_samples=4)
        sams.add_probe("x", lambda: 1.0)
        for i in range(10):
            sams.sample_now(float(i))
        (series,) = sams.series
        assert len(series) == 4
        assert sams.dropped_samples == 6

    def test_max_samples_validated(self):
        with pytest.raises(ValueError, match="max_samples"):
            SamplerSet(max_samples=0)
        with pytest.raises(ValueError, match="max_samples"):
            Series(name="s", max_samples=-1)


class TestTelemetryPassthrough:
    def test_create_wires_the_bounds(self):
        tel = Telemetry.create(
            "run", wall_clock=lambda: 0.0, max_events=3, max_samples=4
        )
        for i in range(10):
            tel.event("run", "k", sim_time_ms=float(i))
            tel.record_sample("s", float(i), 1.0)
        assert len(tel.bus) == 3
        assert tel.bus.dropped_events == 7
        assert tel.samplers.dropped_samples == 6

    def test_defaults_stay_unbounded(self):
        tel = Telemetry.create("run", wall_clock=lambda: 0.0)
        for i in range(10):
            tel.event("run", "k", sim_time_ms=float(i))
        assert len(tel.bus) == 10
        assert tel.bus.dropped_events == 0
