"""Tests for the columnar time series and the sampler set."""

import pytest

from repro.obs.samplers import SamplerSet, Series


class TestSeries:
    def test_append_and_len(self):
        series = Series(name="util")
        series.append(0.0, 0.5)
        series.append(10.0, 0.7)
        assert len(series) == 2
        assert series.last_value() == 0.7

    def test_time_must_not_decrease(self):
        series = Series(name="util")
        series.append(10.0, 1.0)
        with pytest.raises(ValueError):
            series.append(9.0, 1.0)

    def test_key_includes_sorted_labels(self):
        series = Series(name="busy", labels={"id": "p0", "a": "1"})
        assert series.key() == "busy{a=1,id=p0}"
        assert Series(name="busy").key() == "busy"

    def test_dict_roundtrip(self):
        series = Series(name="util", labels={"id": "p0"})
        series.append(0.0, 0.25)
        clone = Series.from_dict(series.to_dict())
        assert clone.key() == series.key()
        assert clone.times_ms == series.times_ms
        assert clone.values == series.values

    def test_csv_roundtrip(self, tmp_path):
        series = Series(name="util")
        series.append(0.0, 0.25)
        series.append(5000.0, 0.75)
        path = tmp_path / "util.csv"
        series.write_csv(path)
        clone = Series.read_csv(path, name="util")
        assert clone.times_ms == series.times_ms
        assert clone.values == series.values

    def test_read_csv_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            Series.read_csv(path, name="x")


class TestSamplerSet:
    def test_probe_sampled_once_per_period(self):
        values = iter(range(100))
        sampler = SamplerSet(period_ms=1000.0)
        sampler.add_probe("depth", lambda: float(next(values)))
        assert sampler.maybe_sample(0.0) is True
        assert sampler.maybe_sample(500.0) is False  # within period
        assert sampler.maybe_sample(1000.0) is True
        series = sampler.get_series("depth")
        assert series.times_ms == [0.0, 1000.0]
        assert series.values == [0.0, 1.0]

    def test_sample_now_forces_row(self):
        sampler = SamplerSet(period_ms=1000.0)
        sampler.add_probe("depth", lambda: 1.0)
        sampler.maybe_sample(0.0)
        sampler.sample_now(10.0)  # well within the period
        assert len(sampler.get_series("depth")) == 2

    def test_clock_cannot_go_backwards(self):
        sampler = SamplerSet(period_ms=10.0)
        sampler.add_probe("depth", lambda: 1.0)
        sampler.sample_now(100.0)
        with pytest.raises(ValueError):
            sampler.sample_now(99.0)

    def test_multi_probe_splits_series_per_label(self):
        sampler = SamplerSet(period_ms=10.0)
        sampler.add_multi_probe(
            "busy", lambda: {"p0": 1.0, "p1": 0.0}
        )
        sampler.sample_now(0.0)
        assert sampler.get_series("busy", id="p0").values == [1.0]
        assert sampler.get_series("busy", id="p1").values == [0.0]

    def test_series_sorted_by_key(self):
        sampler = SamplerSet()
        sampler.add_probe("zeta", lambda: 0.0)
        sampler.add_probe("alpha", lambda: 0.0)
        sampler.sample_now(0.0)
        assert [s.key() for s in sampler.series] == ["alpha", "zeta"]

    def test_direct_record_bypasses_probes(self):
        sampler = SamplerSet()
        sampler.record("battery", 0.0, 10.0, policy="mimd")
        sampler.record("battery", 60_000.0, 25.0, policy="mimd")
        series = sampler.get_series("battery", policy="mimd")
        assert series.values == [10.0, 25.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SamplerSet(period_ms=0.0)
