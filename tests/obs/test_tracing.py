"""Unit tests for the span tracer core (repro.obs.tracing)."""

import pickle

import pytest

from repro.obs.tracing import (
    SpanContext,
    SpanError,
    SpanOrderError,
    SpanSchemaError,
    Tracer,
    TraceSpan,
    validate_span_dict,
)


class FakeClock:
    """Deterministic wall clock: advances by `step` on every read."""

    def __init__(self, start=100.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value

    def jump(self, delta):
        self.now += delta


def make_tracer(**kw):
    kw.setdefault("wall_clock", FakeClock())
    return Tracer("t-run", **kw)


def test_stack_spans_nest_and_parent_link():
    tracer = make_tracer()
    with tracer.span("outer", category="a") as outer:
        with tracer.span("inner", category="b") as inner:
            assert inner.parent_id == outer.span_id
    spans = tracer.spans
    assert [s.name for s in spans] == ["inner", "outer"]  # close order
    inner_s, outer_s = spans
    assert outer_s.parent_id is None
    assert inner_s.parent_id == outer_s.span_id
    assert inner_s.start_wall_s >= outer_s.start_wall_s
    assert inner_s.end_wall_s <= outer_s.end_wall_s


def test_explicit_handles_allow_overlap():
    tracer = make_tracer()
    root = tracer.start("round", sim_time_ms=0.0)
    a = tracer.start("copy", parent=root, sim_time_ms=10.0, phone="p1")
    b = tracer.start("copy", parent=root, sim_time_ms=12.0, phone="p2")
    tracer.end(b, sim_time_ms=20.0)
    tracer.end(a, sim_time_ms=25.0)
    tracer.end(root, sim_time_ms=30.0)
    spans = {s.attrs.get("phone"): s for s in tracer.spans if s.name == "copy"}
    assert spans["p1"].sim_ms == 15.0
    assert spans["p2"].sim_ms == 8.0
    assert all(s.parent_id == root.span_id for s in spans.values())


def test_exception_marks_span_error_but_closes_it():
    tracer = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    (span,) = tracer.spans
    assert span.status == "error"
    assert tracer.open_count == 0


def test_double_close_and_closed_parent_raise():
    tracer = make_tracer()
    h = tracer.start("once")
    tracer.end(h)
    with pytest.raises(SpanError):
        tracer.end(h)
    with pytest.raises(SpanError):
        tracer.start("child", parent=h)


def test_sim_clock_backwards_raises():
    tracer = make_tracer()
    h = tracer.start("x", sim_time_ms=100.0)
    with pytest.raises(SpanOrderError):
        tracer.end(h, sim_time_ms=50.0)


def test_wall_clock_backwards_raises():
    clock = FakeClock(step=0.0)
    tracer = Tracer("t", wall_clock=clock)
    h = tracer.start("x")
    clock.jump(-5.0)
    with pytest.raises(SpanOrderError):
        tracer.end(h)


def test_end_without_sim_carries_start_sim():
    tracer = make_tracer()
    h = tracer.start("x", sim_time_ms=42.0)
    span = tracer.end(h)
    assert span.start_sim_ms == 42.0 and span.end_sim_ms == 42.0


def test_ring_bound_drops_oldest():
    tracer = make_tracer(max_spans=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert [s.name for s in tracer.spans] == ["s3", "s4"]
    assert tracer.dropped_spans == 3


def test_as_current_makes_explicit_handle_the_stack_parent():
    tracer = make_tracer()
    round_h = tracer.start("round")
    with tracer.as_current(round_h):
        with tracer.span("schedule") as sched:
            assert sched.parent_id == round_h.span_id
    tracer.end(round_h)
    with pytest.raises(SpanError):
        with tracer.as_current(round_h):
            pass


def test_abort_open_closes_innermost_first_as_interrupted():
    tracer = make_tracer()
    outer = tracer.start("outer")
    tracer.start("inner", parent=outer)
    assert tracer.abort_open() == 2
    assert tracer.open_count == 0
    statuses = {s.name: s.status for s in tracer.spans}
    assert statuses == {"outer": "interrupted", "inner": "interrupted"}
    # innermost closed first -> its end precedes the outer's
    inner_s = next(s for s in tracer.spans if s.name == "inner")
    outer_s = next(s for s in tracer.spans if s.name == "outer")
    assert inner_s.end_wall_s <= outer_s.end_wall_s


def test_context_pickles_and_adopt_rehomes_worker_spans():
    clock = FakeClock(start=200.0, step=0.1)
    parent = Tracer("t", wall_clock=clock)
    wait = parent.start("probe_wait")
    ctx = parent.context(wait, process="workers/w-1")
    ctx = pickle.loads(pickle.dumps(ctx))
    assert isinstance(ctx, SpanContext)

    worker = Tracer.from_context(ctx, wall_clock=FakeClock(start=200.05, step=0.1))
    with worker.span("probe_pack", capacity_ms=123.0):
        pass
    shipped = worker.drain_dicts()
    assert worker.spans == ()

    adopted = parent.adopt(shipped, parent=wait)
    parent.end(wait)
    (child,) = adopted
    assert child.parent_id == wait.span_id
    assert child.process == "workers/w-1"
    assert child.attrs["capacity_ms"] == 123.0
    # remapped into the parent's id space
    assert child.span_id > wait.span_id


def test_adopt_remaps_internal_parent_links():
    parent = make_tracer()
    root = parent.start("pod_solves")
    worker = Tracer("w", wall_clock=FakeClock(start=100.2, step=0.01))
    with worker.span("a"):
        with worker.span("b"):
            pass
    adopted = parent.adopt(worker.drain_dicts(), parent=root)
    by_name = {s.name: s for s in adopted}
    assert by_name["a"].parent_id == root.span_id
    assert by_name["b"].parent_id == by_name["a"].span_id


def test_adopt_clamps_jitter_but_rejects_gross_skew():
    clock = FakeClock(start=100.0, step=0.0)
    parent = Tracer("t", wall_clock=clock)
    h = parent.start("window")  # starts at 100.0
    jittered = {
        "span_id": 1,
        "parent_id": None,
        "name": "w",
        "category": "",
        "process": "worker",
        "start_wall_s": 99.95,  # 50 ms before the window: clamped
        "end_wall_s": 100.0,
        "status": "ok",
        "attrs": {},
    }
    (span,) = parent.adopt([jittered], parent=h)
    assert span.start_wall_s == 100.0
    skewed = dict(jittered, span_id=2, start_wall_s=90.0, end_wall_s=91.0)
    with pytest.raises(SpanOrderError):
        parent.adopt([skewed], parent=h)


def test_span_dict_roundtrip_and_validation():
    tracer = make_tracer()
    with tracer.span("x", category="c", sim_time_ms=1.0, k="v"):
        pass
    (span,) = tracer.spans
    data = span.to_dict()
    validate_span_dict(data)
    assert TraceSpan.from_dict(data) == span

    for corrupt in (
        {**data, "span_id": 0},
        {**data, "name": ""},
        {**data, "status": "weird"},
        {**data, "end_wall_s": data["start_wall_s"] - 1.0},
        {**data, "end_sim_ms": -5.0},
        {**data, "attrs": []},
        {**data, "parent_id": "nope"},
        "not-a-dict",
    ):
        with pytest.raises(SpanSchemaError):
            validate_span_dict(corrupt)


def test_deterministic_with_injected_clock():
    def run():
        tracer = Tracer("t", wall_clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        return tracer.to_dicts()

    assert run() == run()
