"""End-to-end tests: instrumented runs, report bundles, equivalence.

The load-bearing guarantees:

* an instrumented chaos run emits a schema-valid event stream with a
  non-empty round-latency histogram and per-phone utilisation series;
* :func:`repro.obs.report.run_metrics_from_events` reproduces
  :func:`repro.sim.metrics.compute_run_metrics` exactly from the
  unified stream alone;
* telemetry disabled changes nothing: schedules stay byte-identical.
"""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.core.serialize import schedule_to_dict
from repro.obs import Telemetry, build_run_report, load_run_report
from repro.obs.events import validate_event_dict
from repro.obs.report import render_report_lines, run_metrics_from_events
from repro.sim.chaos import ChaosPlan, CpuSlowdown, ResiliencePolicy, TaskCrash
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.metrics import compute_run_metrics
from repro.sim.server import CentralServer


def make_fleet(n_phones=4):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 100.0 * i)
        for i in range(n_phones)
    )
    profiles = {"primes": TaskProfile("primes", 10.0, 800.0)}
    truth = FleetGroundTruth(profiles)
    predictor = RuntimePredictor(profiles, alpha=0.5)
    b = {p.phone_id: 2.0 for p in phones}
    return phones, truth, predictor, b


def make_jobs(n=8):
    return tuple(
        Job(f"b{i}", "primes", JobKind.BREAKABLE, 40.0, 500.0)
        for i in range(n)
    )


def run_instrumented(telemetry, *, chaos=None, resilience=None, plan=None):
    phones, truth, predictor, b = make_fleet()
    server = CentralServer(
        phones,
        truth,
        predictor,
        CwcScheduler(telemetry=telemetry),
        b,
        failure_plan=plan if plan is not None else FailurePlan.none(),
        chaos=chaos if chaos is not None else ChaosPlan(),
        resilience=resilience,
        telemetry=telemetry,
    )
    return server.run(make_jobs())


@pytest.fixture(scope="module")
def chaos_run():
    """One instrumented chaos run shared by the assertions below."""
    telemetry = Telemetry.create(run_id="test-chaos", sample_period_ms=1000.0)
    chaos = ChaosPlan(
        crashes=(TaskCrash("p1", 2_000.0),),
        slowdowns=(CpuSlowdown("p2", 1_000.0, 3.0),),
    )
    plan = FailurePlan(
        [PlannedFailure("p3", 3_000.0, online=False, rejoin_after_ms=20_000.0)]
    )
    result = run_instrumented(
        telemetry,
        chaos=chaos,
        plan=plan,
        resilience=ResiliencePolicy.hardened(),
    )
    return telemetry, result


class TestInstrumentedRun:
    def test_all_events_validate(self, chaos_run):
        telemetry, _ = chaos_run
        events = telemetry.bus.events
        assert len(events) > 20
        for event in events:
            validate_event_dict(event.to_dict())

    def test_event_stream_is_monotone(self, chaos_run):
        telemetry, _ = chaos_run
        times = [e.sim_time_ms for e in telemetry.bus.events]
        assert times == sorted(times)
        seqs = [e.seq for e in telemetry.bus.events]
        assert seqs == list(range(len(seqs)))

    def test_lifecycle_events_present(self, chaos_run):
        telemetry, _ = chaos_run
        bus = telemetry.bus
        assert len(bus.of_kind("run_start")) == 1
        assert len(bus.of_kind("run_end")) == 1
        assert bus.of_kind("dispatch")
        assert bus.of_kind("complete")
        assert bus.of_kind("round_start")
        assert bus.of_kind("round_end")
        assert bus.of_component("chaos")

    def test_round_latency_histogram_non_empty(self, chaos_run):
        telemetry, _ = chaos_run
        latency = telemetry.registry.histogram("round_latency_ms")
        assert latency is not None
        assert latency.count >= 1
        assert latency.percentile(50.0) > 0.0

    def test_per_phone_series_non_empty(self, chaos_run):
        telemetry, _ = chaos_run
        busy = telemetry.samplers.get_series("phone_busy", id="p0")
        assert busy is not None and len(busy) > 0
        util = telemetry.samplers.get_series("fleet_utilisation")
        assert util is not None and len(util) > 0
        assert all(0.0 <= v <= 1.0 for v in util.values)

    def test_metrics_counters_match_trace(self, chaos_run):
        telemetry, result = chaos_run
        registry = telemetry.registry
        assert registry.counter_value("completions_total") == len(
            result.trace.completions
        )
        assert registry.counter_value("scheduler_rounds_total") == len(
            result.rounds
        )
        chaos_total = sum(
            registry.counter_value("chaos_faults_total", kind=k)
            for k in ("task_crash", "cpu_slowdown", "unplug")
        )
        assert chaos_total == len(result.trace.chaos)

    def test_run_metrics_from_events_matches_trace(self, chaos_run):
        telemetry, result = chaos_run
        from_events = run_metrics_from_events(telemetry.bus.events)
        from_trace = compute_run_metrics(result.trace)
        assert from_events == from_trace


class TestRunReportBundle:
    def test_write_load_render_roundtrip(self, chaos_run, tmp_path):
        telemetry, result = chaos_run
        report = build_run_report(
            telemetry, meta={"seed": 7}, top_n=3
        )
        bundle_dir = report.write(tmp_path / "bundle")
        assert (bundle_dir / "report.json").is_file()
        assert (bundle_dir / "events.jsonl").is_file()
        assert (bundle_dir / "prometheus.txt").is_file()
        assert list((bundle_dir / "series").glob("*.csv"))

        loaded = load_run_report(bundle_dir)
        assert loaded.run_id == telemetry.run_id
        assert loaded.meta == {"seed": 7}
        assert len(loaded.events) == len(telemetry.bus.events)
        assert len(loaded.series) == len(telemetry.samplers.series)
        assert loaded.summary["completions"] == len(result.trace.completions)
        assert loaded.summary["round_latency_ms"]["count"] >= 1
        assert len(loaded.summary["slowest_phones"]) == 3

        lines = render_report_lines(loaded)
        text = "\n".join(lines)
        assert "run report: test-chaos" in text
        assert "round latency" in text
        assert "faults injected" in text

    def test_prometheus_text_parses(self, chaos_run):
        telemetry, _ = chaos_run
        report = build_run_report(telemetry)
        text = report.render_prometheus()
        assert "completions_total" in text
        assert "round_latency_ms_bucket" in text

    def test_load_rejects_corrupt_events(self, chaos_run, tmp_path):
        telemetry, _ = chaos_run
        bundle_dir = build_run_report(telemetry).write(tmp_path / "b")
        events_path = bundle_dir / "events.jsonl"
        events_path.write_text(
            events_path.read_text() + '{"run_id": "x"}\n'
        )
        from repro.obs.events import EventSchemaError

        with pytest.raises(EventSchemaError):
            load_run_report(bundle_dir)
        # Validation can be waived for forensics.
        loaded = load_run_report(bundle_dir, validate=False)
        assert loaded.events

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_report(tmp_path / "nope")

    def test_disabled_telemetry_cannot_build(self):
        from repro.obs import NULL_TELEMETRY

        with pytest.raises(ValueError):
            build_run_report(NULL_TELEMETRY)


class TestZeroOverheadEquivalence:
    """Telemetry off (default) must change nothing observable."""

    def test_schedules_byte_identical(self):
        from ..conftest import make_instance

        instance = make_instance(
            n_breakable=12, n_atomic=6, n_phones=16, seed=99
        )
        plain = CwcScheduler().schedule(instance)
        instrumented = CwcScheduler(
            telemetry=Telemetry.create(run_id="x")
        ).schedule(instance)
        defaulted = CwcScheduler(telemetry=None).schedule(instance)
        assert schedule_to_dict(plain) == schedule_to_dict(instrumented)
        assert schedule_to_dict(plain) == schedule_to_dict(defaulted)

    def test_sim_results_identical(self):
        def run(telemetry):
            return run_instrumented(telemetry)

        with_tel = run(Telemetry.create(run_id="a"))
        without = run(None)
        assert (
            with_tel.measured_makespan_ms == without.measured_makespan_ms
        )
        assert len(with_tel.trace.completions) == len(
            without.trace.completions
        )
