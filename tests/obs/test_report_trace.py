"""Report-bundle trace artifacts and load/render error paths.

PR 9 adds ``trace.json`` + ``profile.txt`` to the RunReport bundle
(present only when the run traced spans) and ``RunReport.spans``.
These tests pin the trace-gated artifact behaviour plus the loader's
error paths: missing ``report.json`` / ``events.jsonl``, unsupported
schemas, and malformed series CSVs.
"""

import json

import pytest

from repro.obs import Telemetry, build_run_report, load_run_report
from repro.obs.report import REPORT_SCHEMA, render_report_lines
from repro.obs.samplers import Series
from repro.obs.trace_export import load_chrome_trace

from .test_report import run_instrumented


@pytest.fixture(scope="module")
def traced_run():
    telemetry = Telemetry.create(run_id="test-traced", tracing=True)
    result = run_instrumented(telemetry)
    return telemetry, result


class TestTracedBundle:
    def test_report_carries_spans(self, traced_run):
        telemetry, _ = traced_run
        report = build_run_report(telemetry)
        assert report.spans
        assert report.spans == telemetry.tracer.to_dicts()

    def test_write_emits_trace_and_profile(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        report = build_run_report(telemetry)
        report.write(tmp_path)
        doc = load_chrome_trace(tmp_path / "trace.json")
        assert doc["traceEvents"]
        profile = (tmp_path / "profile.txt").read_text()
        assert "critical path" in profile
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["span_count"] == len(report.spans)

    def test_load_roundtrips_spans(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        report = build_run_report(telemetry)
        report.write(tmp_path)
        loaded = load_run_report(tmp_path)
        assert loaded.spans == report.spans

    def test_render_mentions_spans(self, traced_run):
        telemetry, _ = traced_run
        report = build_run_report(telemetry)
        assert any(
            "trace spans" in line for line in render_report_lines(report)
        )

    def test_untraced_bundle_has_no_trace_artifacts(self, tmp_path):
        telemetry = Telemetry.create(run_id="test-untraced")
        run_instrumented(telemetry)
        report = build_run_report(telemetry)
        assert report.spans == []
        report.write(tmp_path)
        assert not (tmp_path / "trace.json").exists()
        assert not (tmp_path / "profile.txt").exists()
        loaded = load_run_report(tmp_path)
        assert loaded.spans == []


class TestLoadErrorPaths:
    def test_missing_report_json_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no report.json"):
            load_run_report(tmp_path)

    def test_unsupported_schema_rejected(self, tmp_path):
        (tmp_path / "report.json").write_text(
            json.dumps({"schema": REPORT_SCHEMA + 99, "run_id": "x"})
        )
        with pytest.raises(ValueError, match="unsupported report schema"):
            load_run_report(tmp_path)

    def test_missing_events_jsonl_raises_under_validation(self, tmp_path):
        (tmp_path / "report.json").write_text(
            json.dumps({"schema": REPORT_SCHEMA, "run_id": "x"})
        )
        with pytest.raises(FileNotFoundError, match="missing events.jsonl"):
            load_run_report(tmp_path)

    def test_missing_events_jsonl_tolerated_without_validation(
        self, tmp_path
    ):
        (tmp_path / "report.json").write_text(
            json.dumps({"schema": REPORT_SCHEMA, "run_id": "x"})
        )
        loaded = load_run_report(tmp_path, validate=False)
        assert loaded.run_id == "x"
        assert loaded.events == []

    def test_corrupt_trace_json_rejected(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        build_run_report(telemetry).write(tmp_path)
        (tmp_path / "trace.json").write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="not a Chrome trace"):
            load_run_report(tmp_path)


class TestSeriesCsvEdges:
    def test_empty_series_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        Series(name="idle").write_csv(path)
        loaded = Series.read_csv(path, name="idle")
        assert len(loaded) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="not a series CSV"):
            Series.read_csv(path, name="idle")

    def test_malformed_row_names_the_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_ms,value\n1.0,2.0\noops\n")
        with pytest.raises(ValueError, match="bad.csv:3.*malformed"):
            Series.read_csv(path, name="idle")

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time_ms,value\n1.0\n")
        with pytest.raises(ValueError, match="malformed series row"):
            Series.read_csv(path, name="idle")

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("time_ms,value\n1.0,2.0\n\n3.0,4.0\n")
        loaded = Series.read_csv(path, name="idle")
        assert loaded.times_ms == [1.0, 3.0]
        assert loaded.values == [2.0, 4.0]
