"""Tests for Chrome trace export + profile aggregation."""

import json

import pytest

from repro.obs.profile import (
    critical_path,
    render_critical_path_lines,
    render_profile_lines,
    self_time_table,
)
from repro.obs.trace_export import (
    chrome_trace,
    load_chrome_trace,
    spans_from_chrome,
    write_chrome_trace,
)
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def sample_spans():
    """root(0..7) -> [bounds(1..2), probe(3..6) -> pack(4..5)]"""
    clock = FakeClock()
    tracer = Tracer("t", wall_clock=clock)
    with tracer.span("root", category="capacity"):  # 0..7
        with tracer.span("bounds"):  # 1..2
            pass
        with tracer.span("probe", process="pods/pod-1"):  # 3..6
            with tracer.span("pack", process="pods/pod-1"):  # 4..5
                pass
    return tracer.to_dicts()


def test_chrome_trace_structure_and_pid_tid_mapping():
    data = chrome_trace(sample_spans(), run_id="r1")
    events = data["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == 4
    proc_names = {e["args"]["name"] for e in metas if e["name"] == "process_name"}
    assert proc_names == {"main", "pods"}
    thread_names = {e["args"]["name"] for e in metas if e["name"] == "thread_name"}
    assert "pod-1" in thread_names
    # pods/pod-1 spans share a (pid, tid) distinct from main's
    pod_events = [e for e in xs if e["name"] in ("probe", "pack")]
    main_events = [e for e in xs if e["name"] in ("root", "bounds")]
    assert len({(e["pid"], e["tid"]) for e in pod_events}) == 1
    assert {(e["pid"], e["tid"]) for e in pod_events}.isdisjoint(
        {(e["pid"], e["tid"]) for e in main_events}
    )
    # ts rebased to the earliest span; µs scale
    root = next(e for e in xs if e["name"] == "root")
    assert root["ts"] == 0.0 and root["dur"] == pytest.approx(7e6)
    assert data["otherData"]["span_count"] == 4


def test_write_load_roundtrip(tmp_path):
    spans = sample_spans()
    path = write_chrome_trace(tmp_path / "trace.json", spans, run_id="r1")
    data = load_chrome_trace(path)
    assert json.loads(path.read_text())["displayTimeUnit"] == "ms"
    assert spans_from_chrome(data) == spans


def test_load_rejects_malformed(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_chrome_trace(p)
    p.write_text(json.dumps({"traceEvents": ["zzz"]}))
    with pytest.raises(ValueError):
        load_chrome_trace(p)


def test_sim_clock_export_skips_wall_only_spans():
    clock = FakeClock()
    tracer = Tracer("t", wall_clock=clock)
    h = tracer.start("round", sim_time_ms=1_000.0)
    tracer.end(h, sim_time_ms=4_000.0)
    with tracer.span("wall_only"):
        pass
    data = chrome_trace(tracer.to_dicts(), clock="sim")
    xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in xs] == ["round"]
    assert xs[0]["ts"] == pytest.approx(1_000.0 * 1e3)
    assert xs[0]["dur"] == pytest.approx(3_000.0 * 1e3)
    with pytest.raises(ValueError):
        chrome_trace([], clock="cpu")


def test_self_time_table_subtracts_direct_children():
    rows = {r.name: r for r in self_time_table(sample_spans())}
    # root 7s total, children bounds(1)+probe(3) -> self 3s
    assert rows["root"].total_ms == pytest.approx(7e3)
    assert rows["root"].self_ms == pytest.approx(3e3)
    assert rows["probe"].self_ms == pytest.approx(2e3)
    assert rows["pack"].self_ms == pytest.approx(1e3)
    assert rows["bounds"].count == 1
    # sorted by self time desc
    table = self_time_table(sample_spans())
    assert [r.name for r in table][0] == "root"


def test_self_time_floors_at_zero_for_overlapping_children():
    # parent 0..2 with two adopted children each 0..2 (pool overlap)
    spans = [
        {
            "span_id": 1,
            "parent_id": None,
            "name": "wait",
            "category": "",
            "process": "main",
            "start_wall_s": 0.0,
            "end_wall_s": 2.0,
            "status": "ok",
            "attrs": {},
        },
        *(
            {
                "span_id": i,
                "parent_id": 1,
                "name": "work",
                "category": "",
                "process": f"w{i}",
                "start_wall_s": 0.0,
                "end_wall_s": 2.0,
                "status": "ok",
                "attrs": {},
            }
            for i in (2, 3)
        ),
    ]
    rows = {r.name: r for r in self_time_table(spans)}
    assert rows["wait"].self_ms == 0.0
    assert rows["work"].total_ms == pytest.approx(4e3)


def test_critical_path_telescopes_to_root_duration():
    path = critical_path(sample_spans())
    assert [s.name for s in path] == ["root", "probe", "pack"]
    total = sum(s.contribution_ms for s in path)
    assert total == pytest.approx(7e3)
    with pytest.raises(ValueError):
        critical_path(sample_spans(), root_id=999)
    assert critical_path([]) == []


def test_critical_path_explicit_root():
    spans = sample_spans()
    probe_id = next(s["span_id"] for s in spans if s["name"] == "probe")
    path = critical_path(spans, root_id=probe_id)
    assert [s.name for s in path] == ["probe", "pack"]


def test_render_helpers_produce_text():
    spans = sample_spans()
    lines = render_profile_lines(self_time_table(spans), top=2)
    assert len(lines) == 4  # header + rule + 2 rows
    assert "self wall ms" in lines[0]
    cp = render_critical_path_lines(critical_path(spans))
    assert cp[0].startswith("critical path")
    assert cp[-1].startswith("total contribution")


def test_profile_sim_clock():
    clock = FakeClock()
    tracer = Tracer("t", wall_clock=clock)
    h = tracer.start("round", sim_time_ms=0.0)
    c = tracer.start("copy", parent=h, sim_time_ms=100.0)
    tracer.end(c, sim_time_ms=400.0)
    tracer.end(h, sim_time_ms=1_000.0)
    with tracer.span("wall_only"):
        pass
    rows = {r.name: r for r in self_time_table(tracer.to_dicts(), clock="sim")}
    assert "wall_only" not in rows
    assert rows["round"].self_ms == pytest.approx(700.0)
    path = critical_path(tracer.to_dicts(), clock="sim")
    assert [s.name for s in path] == ["round", "copy"]
