"""Tests for the telemetry facade (enabled and no-op paths)."""

import pickle

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.telemetry import new_run_id


class TestDisabledFacade:
    def test_singleton(self):
        assert Telemetry.disabled() is NULL_TELEMETRY
        assert NULL_TELEMETRY.enabled is False

    def test_allocates_nothing(self):
        assert NULL_TELEMETRY.registry is None
        assert NULL_TELEMETRY.bus is None
        assert NULL_TELEMETRY.samplers is None

    def test_recording_is_noop(self):
        # None of these may touch the (absent) backing stores.
        NULL_TELEMETRY.inc("c")
        NULL_TELEMETRY.set_gauge("g", 1.0)
        NULL_TELEMETRY.observe("h", 1.0)
        NULL_TELEMETRY.record_sample("s", 0.0, 1.0)
        NULL_TELEMETRY.maybe_sample(0.0)
        NULL_TELEMETRY.sample_now(0.0)
        assert NULL_TELEMETRY.event("server", "x", sim_time_ms=0.0) is None


class TestEnabledFacade:
    def test_create_arms_everything(self):
        tel = Telemetry.create(run_id="r1")
        assert tel.enabled
        assert tel.run_id == "r1"
        tel.inc("c", 2.0)
        tel.set_gauge("g", 3.0)
        tel.observe("h", 4.0)
        event = tel.event("server", "x", sim_time_ms=1.0, a=1)
        tel.record_sample("s", 0.0, 1.0)
        assert tel.registry.counter_value("c") == 2.0
        assert tel.registry.gauge_value("g") == 3.0
        assert tel.registry.histogram("h").count == 1
        assert event.payload == {"a": 1}
        assert tel.samplers.get_series("s").values == [1.0]

    def test_generated_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()
        tel = Telemetry.create()
        assert tel.run_id

    def test_sampler_hooks_delegate(self):
        tel = Telemetry.create(run_id="r", sample_period_ms=100.0)
        tel.samplers.add_probe("depth", lambda: 5.0)
        tel.maybe_sample(0.0)
        tel.maybe_sample(10.0)  # within period: skipped
        tel.sample_now(20.0)  # forced
        assert len(tel.samplers.get_series("depth")) == 2

    def test_registry_snapshot_pickles(self):
        # Campaign sweeps ship snapshots across process pools.
        tel = Telemetry.create(run_id="r")
        tel.inc("c", kind="a")
        snapshot = tel.registry.to_dict()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
