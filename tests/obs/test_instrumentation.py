"""Instrumentation coverage across the non-server layers.

The server integration is exercised in ``test_report``; here each of
the other instrumented layers — capacity search, scheduler wrapper,
event engine, MIMD throttle, charging simulation, overnight campaigns —
is checked in isolation.
"""

import pytest

from repro.core.capacity import CapacitySearch
from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.packing import GreedyPacker
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.obs import Telemetry
from repro.sim.campaign import OvernightCampaign, merge_campaign_metrics
from repro.sim.engine import EventLoop
from repro.sim.entities import FleetGroundTruth

from ..conftest import make_instance


class TestCapacityAndSchedulerMetrics:
    def test_capacity_search_counts_probes(self):
        tel = Telemetry.create(run_id="cap")
        instance = make_instance(
            n_breakable=8, n_atomic=4, n_phones=8, seed=3
        )
        CapacitySearch(telemetry=tel).run(instance)
        registry = tel.registry
        assert registry.counter_value("capacity_searches_total", kernel="python") >= 1
        probes = registry.counter_value(
            "capacity_probes_total", outcome="feasible"
        ) + registry.counter_value(
            "capacity_probes_total", outcome="infeasible"
        )
        assert probes > 0
        assert registry.counter_value("capacity_bisection_steps_total") > 0
        assert registry.histogram("capacity_packs_per_search").count == 1
        assert registry.histogram("pack_wall_ms", kernel="python").count > 0

    def test_scheduler_wrapper_metrics(self):
        tel = Telemetry.create(run_id="sched")
        scheduler = CwcScheduler(telemetry=tel)
        instance = make_instance(
            n_breakable=6, n_atomic=2, n_phones=6, seed=4
        )
        scheduler.schedule(instance)
        registry = tel.registry
        assert registry.counter_value("schedule_items_total") == 8
        assert registry.counter_value("schedule_bins_total") == 6
        assert (
            registry.histogram("schedule_wall_ms", scheduler=scheduler.name)
            .count
            == 1
        )
        assert registry.gauge_value("schedule_last_capacity_ms") > 0

    def test_packer_stats_always_on(self):
        instance = make_instance(
            n_breakable=4, n_atomic=2, n_phones=4, seed=5
        )
        packer = GreedyPacker(instance)
        result = packer.pack(1e9)
        assert packer.packs_issued == 1
        assert packer.last_pack_wall_ms >= 0.0
        assert packer.total_pack_wall_ms >= packer.last_pack_wall_ms
        assert packer.last_pack_feasible == result.feasible


class TestEngineCounters:
    def test_dispatch_and_cancel_counts(self):
        tel = Telemetry.create(run_id="engine")
        loop = EventLoop(telemetry=tel)
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(2.0, lambda: fired.append(2))
        token = loop.schedule_at(3.0, lambda: fired.append(3))
        token.cancel()
        loop.run()
        assert fired == [1, 2]
        assert tel.registry.counter_value("engine_events_dispatched_total") == 2.0
        assert tel.registry.counter_value("engine_events_cancelled_total") == 1.0

    def test_disabled_costs_nothing(self):
        loop = EventLoop()  # no telemetry at all
        loop.schedule_at(1.0, lambda: None)
        loop.run()


class TestThrottleEvents:
    def test_duty_adjust_events_and_gauges(self):
        from repro.power.battery import HTC_SENSATION
        from repro.power.charging import simulate_charging
        from repro.power.throttle import MimdThrottle

        tel = Telemetry.create(run_id="throttle")
        throttle = MimdThrottle(telemetry=tel)
        simulate_charging(HTC_SENSATION, throttle)
        events = tel.bus.of_kind("duty_adjust")
        assert events
        assert all(e.component == "throttle" for e in events)
        directions = tel.registry.counter_value(
            "throttle_adjustments_total", direction="more_cpu"
        ) + tel.registry.counter_value(
            "throttle_adjustments_total", direction="less_cpu"
        )
        assert directions == len(events) == len(throttle.adjustments)
        assert tel.registry.gauge_value("throttle_sleep_s") is not None


class TestChargingSeries:
    def test_battery_series_recorded(self):
        from repro.power.battery import HTC_SENSATION
        from repro.power.charging import simulate_charging
        from repro.power.throttle import ContinuousPolicy

        tel = Telemetry.create(run_id="charge")
        trace = simulate_charging(
            HTC_SENSATION,
            ContinuousPolicy(),
            start_percent=20.0,
            target_percent=40.0,
            telemetry=tel,
            phone_id="p0",
            sample_every_s=120.0,
        )
        series = tel.samplers.get_series(
            "battery_percent", id="p0", policy=trace.policy_name
        )
        assert series is not None
        assert len(series) >= 3
        assert series.values[0] == pytest.approx(20.0)
        assert series.values[-1] == pytest.approx(trace.percents[-1])
        # Samples ride the charging sim's own clock.
        assert series.times_ms == sorted(series.times_ms)

    def test_disabled_changes_nothing(self):
        from repro.power.battery import HTC_SENSATION
        from repro.power.charging import simulate_charging
        from repro.power.throttle import ContinuousPolicy

        kwargs = dict(start_percent=20.0, target_percent=30.0)
        plain = simulate_charging(
            HTC_SENSATION, ContinuousPolicy(), **kwargs
        )
        instrumented = simulate_charging(
            HTC_SENSATION,
            ContinuousPolicy(),
            telemetry=Telemetry.create(run_id="x"),
            **kwargs,
        )
        assert plain.percents == instrumented.percents
        assert plain.duration_s == instrumented.duration_s


class TestCampaignTelemetry:
    def make_campaign(self, telemetry=None):
        from repro.core.model import NetworkTechnology
        from repro.netmodel.links import WirelessLink

        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(3)
        )
        profiles = {"primes": TaskProfile("primes", 10.0, 1000.0)}
        links = {
            p.phone_id: WirelessLink.for_technology(
                NetworkTechnology.WIFI_G, seed=i
            )
            for i, p in enumerate(phones)
        }
        return OvernightCampaign(
            phones,
            links,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles, alpha=0.5),
            CwcScheduler(),
            telemetry=telemetry,
        )

    def nightly_jobs(self, nights=2):
        return [
            [
                Job(f"n{night}j{i}", "primes", JobKind.BREAKABLE, 20.0, 500.0)
                for i in range(4)
            ]
            for night in range(nights)
        ]

    def test_nights_merge_into_campaign_registry(self):
        tel = Telemetry.create(run_id="camp")
        result = self.make_campaign(tel).run(self.nightly_jobs())
        assert tel.registry.counter_value("campaign_nights_total") == 2.0
        # Completed partitions from both nights accumulate in the merged
        # registry (breakable jobs may split across phones, so at least
        # one completion per job).
        assert tel.registry.counter_value("completions_total") >= 8.0
        night_ends = tel.bus.of_kind("night_end")
        assert len(night_ends) == 2
        times = [e.sim_time_ms for e in night_ends]
        assert times == sorted(times)
        assert result.metrics is not None
        assert result.metrics["counters"]["campaign_nights_total"] == 2.0

    def test_untelemetered_campaign_has_no_metrics(self):
        result = self.make_campaign().run(self.nightly_jobs(1))
        assert result.metrics is None

    def test_merge_campaign_metrics_folds_sweeps(self):
        results = [
            self.make_campaign(Telemetry.create(run_id=f"c{i}")).run(
                self.nightly_jobs(1)
            )
            for i in range(2)
        ]
        merged = merge_campaign_metrics(results)
        assert merged.counter_value("campaign_nights_total") == 2.0
        assert merged.counter_value("completions_total") == sum(
            r.metrics["counters"]["completions_total"] for r in results
        )

    def test_campaign_results_identical_with_and_without(self):
        with_tel = self.make_campaign(
            Telemetry.create(run_id="a")
        ).run(self.nightly_jobs())
        without = self.make_campaign().run(self.nightly_jobs())
        assert [n.measured_makespan_ms for n in with_tel.nights] == [
            n.measured_makespan_ms for n in without.nights
        ]
