"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    metric_key,
)


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("hits", None) == ("hits", ())
        assert metric_key("hits", {}) == ("hits", ())

    def test_labels_sorted(self):
        key = metric_key("hits", {"b": "2", "a": "1"})
        assert key == ("hits", (("a", "1"), ("b", "2")))

    def test_label_values_stringified(self):
        assert metric_key("hits", {"n": 3}) == ("hits", (("n", "3"),))


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total")
        registry.inc("jobs_total", 2.0)
        assert registry.counter_value("jobs_total") == 3.0

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total", kind="a")
        registry.inc("jobs_total", 5.0, kind="b")
        assert registry.counter_value("jobs_total", kind="a") == 1.0
        assert registry.counter_value("jobs_total", kind="b") == 5.0
        assert registry.counter_value("jobs_total") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("jobs_total", -1.0)

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("ghost") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue_depth", 4.0)
        registry.set_gauge("queue_depth", 2.0)
        assert registry.gauge_value("queue_depth") == 2.0

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("ghost") is None


class TestHistogram:
    def test_observe_fills_buckets(self):
        histogram = Histogram(buckets=(10.0, 100.0))
        histogram.observe(5.0)
        histogram.observe(50.0)
        histogram.observe(500.0)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(555.0)

    def test_boundary_lands_in_lower_bucket(self):
        histogram = Histogram(buckets=(10.0, 100.0))
        histogram.observe(10.0)
        assert histogram.counts == [1, 0, 0]

    def test_percentiles(self):
        histogram = Histogram(buckets=(10.0, 100.0, 1000.0))
        for value in (1.0, 2.0, 3.0, 50.0):
            histogram.observe(value)
        assert histogram.percentile(50.0) == 10.0
        assert histogram.percentile(100.0) == 100.0
        assert histogram.percentile(0.0) == 10.0

    def test_percentile_empty_is_zero(self):
        assert Histogram(buckets=(1.0,)).percentile(99.0) == 0.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).percentile(101.0)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 5.0))

    def test_merge_mismatched_buckets_rejected(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_registry_observe_uses_default_buckets(self):
        registry = MetricsRegistry()
        registry.observe("latency_ms", 42.0)
        histogram = registry.histogram("latency_ms")
        assert histogram is not None
        assert histogram.buckets == DEFAULT_BUCKETS_MS

    def test_declared_buckets_apply_and_conflict_raises(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency_ms", (1.0, 2.0))
        registry.observe("latency_ms", 1.5)
        assert registry.histogram("latency_ms").buckets == (1.0, 2.0)
        with pytest.raises(ValueError):
            registry.declare_histogram("latency_ms", (5.0,))


class TestMergeAndSerialise:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total", 3.0, kind="a")
        registry.set_gauge("queue_depth", 7.0)
        registry.observe("latency_ms", 12.0)
        return registry

    def test_merge_adds_counters_and_histograms(self):
        a = self.make_registry()
        b = self.make_registry()
        b.set_gauge("queue_depth", 1.0)
        a.merge(b)
        assert a.counter_value("jobs_total", kind="a") == 6.0
        assert a.gauge_value("queue_depth") == 1.0  # other wins
        assert a.histogram("latency_ms").count == 2

    def test_to_dict_roundtrip(self):
        registry = self.make_registry()
        snapshot = registry.to_dict()
        clone = MetricsRegistry.from_dict(snapshot)
        assert clone.to_dict() == snapshot
        assert clone.counter_value("jobs_total", kind="a") == 3.0
        assert clone.histogram("latency_ms").count == 1

    def test_to_dict_is_deterministic(self):
        a = self.make_registry().to_dict()
        b = self.make_registry().to_dict()
        assert a == b

    def test_merge_dict_wire_form(self):
        a = self.make_registry()
        a.merge_dict(self.make_registry().to_dict())
        assert a.counter_value("jobs_total", kind="a") == 6.0

    def test_len_counts_every_series(self):
        assert len(self.make_registry()) == 3


class TestPrometheusRendering:
    def test_counter_gauge_histogram_lines(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total", 3.0, kind="a")
        registry.set_gauge("queue_depth", 7.0)
        registry.declare_histogram("latency_ms", (10.0, 100.0))
        registry.observe("latency_ms", 5.0)
        registry.observe("latency_ms", 50.0)
        text = registry.render_prometheus()
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="a"} 3' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 7" in text
        assert 'latency_ms_bucket{le="10"} 1' in text
        assert 'latency_ms_bucket{le="100"} 2' in text
        assert 'latency_ms_bucket{le="+Inf"} 2' in text
        assert "latency_ms_sum 55" in text
        assert "latency_ms_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        registry.inc("bad name")
        with pytest.raises(ValueError):
            registry.render_prometheus()
