"""Smoke tests: every shipped example must run end to end.

Examples are executable documentation; these tests keep them from
rotting as the library evolves.  Each example's ``main()`` is invoked
in-process (they are all deterministic and self-verifying — most
contain their own asserts comparing distributed against direct
results).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = (
    "quickstart",
    "sales_analytics",
    "photo_render_farm",
    "overnight_window",
    "it_log_audit",
    "fleet_planning",
)


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_to_completion(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_examples_directory_is_fully_covered():
    """Every example file on disk is exercised by this test module."""
    on_disk = {
        path.stem for path in EXAMPLES_DIR.glob("*.py")
    }
    assert on_disk == set(EXAMPLES)
