"""Tests for the CoreMark comparison data and micro-benchmark."""

import pytest

from repro.profiling.coremark import (
    PUBLISHED_SCORES,
    CoremarkScore,
    coremark_ratios,
    python_coremark,
)


class TestPublishedScores:
    def test_reference_present(self):
        cpus = {s.cpu for s in PUBLISHED_SCORES}
        assert "Intel Core 2 Duo (T7500)" in cpus

    def test_paper_claim_tegra3_beats_core2duo(self):
        ratios = coremark_ratios()
        assert ratios["Nvidia Tegra 3"] > 1.0

    def test_paper_claim_core2duo_beats_others_by_50_percent(self):
        ratios = coremark_ratios()
        for cpu, ratio in ratios.items():
            if cpu in ("Intel Core 2 Duo (T7500)", "Nvidia Tegra 3"):
                continue
            assert ratio < 1 / 1.5

    def test_ratios_reference_is_one(self):
        assert coremark_ratios()["Intel Core 2 Duo (T7500)"] == pytest.approx(1.0)

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError):
            coremark_ratios(reference_cpu="AMD Something")

    def test_custom_score_table(self):
        scores = (
            CoremarkScore("a", 100.0, 1, False),
            CoremarkScore("b", 50.0, 1, True),
        )
        ratios = coremark_ratios(scores, reference_cpu="a")
        assert ratios["b"] == pytest.approx(0.5)


class TestPythonCoremark:
    def test_returns_positive_rate(self):
        assert python_coremark(iterations=500) > 0

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            python_coremark(iterations=0)

    def test_rate_scales_roughly_with_work(self):
        """Twice the iterations should not run more than ~4x slower per
        iteration (sanity against accidental quadratic kernels)."""
        slow = python_coremark(iterations=400)
        fast = python_coremark(iterations=800)
        assert fast > slow / 4
