"""Tests for the charging-log analysis pipeline (Figs. 2–3 machinery)."""

import pytest

from repro.profiling.analysis import (
    IDLE_TRANSFER_LIMIT_BYTES,
    ChargingInterval,
    extract_intervals,
    hourly_unplug_likelihood,
    idle_night_hours_by_user,
    is_night_interval,
    night_day_split,
    unplug_hour_cdf,
    unplug_hour_histogram,
)
from repro.profiling.logs import LogRecord, PhoneChargeState

HOUR = 3600.0
DAY = 86_400.0


def rec(t, state, transferred=0, user="u"):
    return LogRecord(
        user_id=user,
        timestamp_s=t,
        state=state,
        bytes_transferred=transferred,
    )


def interval(start_hour, duration_h, transferred=0, shutdown=False, day=0):
    start = day * DAY + start_hour * HOUR
    return ChargingInterval(
        user_id="u",
        start_s=start,
        end_s=start + duration_h * HOUR,
        bytes_transferred=transferred,
        ended_by_shutdown=shutdown,
    )


class TestExtractIntervals:
    def test_pairs_entry_with_exit(self):
        records = [
            rec(100.0, PhoneChargeState.PLUGGED),
            rec(500.0, PhoneChargeState.UNPLUGGED, transferred=42),
        ]
        (got,) = extract_intervals(records)
        assert got.start_s == 100.0
        assert got.end_s == 500.0
        assert got.bytes_transferred == 42
        assert not got.ended_by_shutdown

    def test_shutdown_exit_flagged(self):
        records = [
            rec(0.0, PhoneChargeState.PLUGGED),
            rec(50.0, PhoneChargeState.SHUTDOWN),
        ]
        (got,) = extract_intervals(records)
        assert got.ended_by_shutdown

    def test_unpaired_trailing_entry_dropped(self):
        records = [rec(0.0, PhoneChargeState.PLUGGED)]
        assert extract_intervals(records) == []

    def test_exit_without_entry_ignored(self):
        records = [rec(0.0, PhoneChargeState.UNPLUGGED)]
        assert extract_intervals(records) == []

    def test_out_of_order_input_is_sorted(self):
        records = [
            rec(500.0, PhoneChargeState.UNPLUGGED),
            rec(100.0, PhoneChargeState.PLUGGED),
        ]
        (got,) = extract_intervals(records)
        assert got.duration_s == 400.0

    def test_multiple_intervals(self):
        records = [
            rec(0.0, PhoneChargeState.PLUGGED),
            rec(100.0, PhoneChargeState.UNPLUGGED),
            rec(200.0, PhoneChargeState.PLUGGED),
            rec(350.0, PhoneChargeState.UNPLUGGED),
        ]
        got = extract_intervals(records)
        assert [i.duration_s for i in got] == [100.0, 150.0]


class TestNightClassification:
    def test_late_evening_is_night(self):
        assert is_night_interval(interval(22.5, 8.0))
        assert is_night_interval(interval(23.9, 8.0))

    def test_early_morning_is_night(self):
        assert is_night_interval(interval(0.0, 5.0))
        assert is_night_interval(interval(4.9, 2.0))

    def test_boundaries(self):
        assert is_night_interval(interval(22.0, 1.0))  # inclusive start
        assert not is_night_interval(interval(5.0, 1.0))  # exclusive end
        assert not is_night_interval(interval(21.99, 1.0))

    def test_daytime_is_day(self):
        assert not is_night_interval(interval(12.0, 0.5))

    def test_split(self):
        night, day = night_day_split(
            [interval(23.0, 8.0), interval(12.0, 0.5), interval(3.0, 2.0)]
        )
        assert len(night) == 2
        assert len(day) == 1


class TestIdleCriterion:
    def test_idle_night_under_limit(self):
        assert interval(23.0, 8.0, transferred=1024).is_idle

    def test_busy_night_not_idle(self):
        assert not interval(
            23.0, 8.0, transferred=IDLE_TRANSFER_LIMIT_BYTES
        ).is_idle

    def test_day_interval_never_idle(self):
        assert not interval(12.0, 1.0, transferred=0).is_idle

    def test_idle_hours_by_user(self):
        intervals = {
            "quiet": [interval(23.0, 8.0, transferred=0)] * 3,
            "noisy": [
                interval(23.0, 8.0, transferred=IDLE_TRANSFER_LIMIT_BYTES + 1)
            ],
        }
        result = idle_night_hours_by_user(intervals)
        assert result["quiet"][0] == pytest.approx(8.0)
        assert result["quiet"][1] == pytest.approx(0.0)
        assert result["noisy"] == (0.0, 0.0)


class TestUnplugActivity:
    def unplug_at(self, hour, day=0):
        return rec(day * DAY + hour * HOUR, PhoneChargeState.UNPLUGGED)

    def test_histogram_buckets_by_hour(self):
        records = [self.unplug_at(7.5), self.unplug_at(7.9), self.unplug_at(18.0)]
        histogram = unplug_hour_histogram(records)
        assert histogram[7] == 2
        assert histogram[18] == 1
        assert sum(histogram) == 3

    def test_histogram_ignores_other_states(self):
        records = [rec(100.0, PhoneChargeState.PLUGGED)]
        assert sum(unplug_hour_histogram(records)) == 0

    def test_cdf_monotone_and_ends_at_one(self):
        records = [self.unplug_at(h) for h in (2.0, 7.0, 12.0, 19.0)]
        cdf = unplug_hour_cdf(records)
        assert len(cdf) == 24
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)

    def test_empty_cdf_is_zero(self):
        assert unplug_hour_cdf([]) == [0.0] * 24

    def test_hourly_likelihood_counts_days_not_events(self):
        # Two unplugs in hour 7 on the same day count once.
        records = [
            self.unplug_at(7.1, day=0),
            self.unplug_at(7.8, day=0),
            self.unplug_at(7.5, day=1),
        ]
        likelihood = hourly_unplug_likelihood(records, days=4)
        assert likelihood[7] == pytest.approx(0.5)

    def test_likelihood_bounds(self):
        records = [self.unplug_at(9.0, day=d) for d in range(10)]
        likelihood = hourly_unplug_likelihood(records, days=10)
        assert likelihood[9] == 1.0
        assert all(0.0 <= p <= 1.0 for p in likelihood)

    def test_days_validation(self):
        with pytest.raises(ValueError):
            hourly_unplug_likelihood([], days=0)


def test_interval_validation():
    with pytest.raises(ValueError):
        ChargingInterval(
            user_id="u",
            start_s=100.0,
            end_s=50.0,
            bytes_transferred=0,
            ended_by_shutdown=False,
        )
