"""Tests for per-user availability forecasting."""

import pytest

from repro.profiling.behavior import generate_study
from repro.profiling.forecast import AvailabilityForecast


def night_quiet_profile():
    """No unplug risk 0–8, certain unplug 8–24."""
    return [0.0] * 8 + [1.0] * 16


class TestSurvival:
    def test_quiet_window_survives(self):
        forecast = AvailabilityForecast({"p": night_quiet_profile()})
        assert forecast.survival_probability(
            "p", start_hour=0.0, duration_hours=8.0
        ) == pytest.approx(1.0)

    def test_risky_window_dies(self):
        forecast = AvailabilityForecast({"p": night_quiet_profile()})
        assert forecast.survival_probability(
            "p", start_hour=9.0, duration_hours=2.0
        ) == pytest.approx(0.0)

    def test_partial_hour_scales_risk(self):
        forecast = AvailabilityForecast({"p": [0.5] * 24})
        half = forecast.survival_probability(
            "p", start_hour=0.0, duration_hours=0.5
        )
        assert half == pytest.approx(0.75)

    def test_multi_hour_window_compounds(self):
        forecast = AvailabilityForecast({"p": [0.1] * 24})
        survival = forecast.survival_probability(
            "p", start_hour=0.0, duration_hours=3.0
        )
        assert survival == pytest.approx(0.9**3)

    def test_window_wraps_midnight(self):
        forecast = AvailabilityForecast({"p": night_quiet_profile()})
        survival = forecast.survival_probability(
            "p", start_hour=23.0, duration_hours=2.0
        )
        assert survival == pytest.approx(0.0)  # hour 23 has p=1

    def test_zero_duration_is_certain(self):
        forecast = AvailabilityForecast({"p": [1.0] * 24})
        assert forecast.survival_probability(
            "p", start_hour=0.0, duration_hours=0.0
        ) == 1.0

    def test_unknown_phone_uses_default(self):
        forecast = AvailabilityForecast({}, default_hourly=[0.0] * 24)
        assert forecast.survival_probability(
            "mystery", start_hour=0.0, duration_hours=24.0
        ) == 1.0

    def test_negative_duration_rejected(self):
        forecast = AvailabilityForecast({"p": [0.1] * 24})
        with pytest.raises(ValueError):
            forecast.survival_probability(
                "p", start_hour=0.0, duration_hours=-1.0
            )


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="24"):
            AvailabilityForecast({"p": [0.1] * 23})

    def test_out_of_range_rejected(self):
        profile = [0.1] * 24
        profile[5] = 1.5
        with pytest.raises(ValueError):
            AvailabilityForecast({"p": profile})


class TestRanking:
    def test_reliable_phone_ranks_first(self):
        forecast = AvailabilityForecast(
            {"flaky": [0.5] * 24, "solid": [0.01] * 24}
        )
        ranked = forecast.rank_phones(
            ["flaky", "solid"], start_hour=0.0, duration_hours=6.0
        )
        assert ranked[0][0] == "solid"
        assert ranked[0][1] > ranked[1][1]


class TestFromStudy:
    def test_built_from_generated_logs(self):
        study = generate_study(days=14, seed=5)
        users = sorted(study)
        phone_owner = {f"phone-{i}": users[i % len(users)] for i in range(6)}
        forecast = AvailabilityForecast.from_study(
            study, phone_owner, days=14
        )
        # Overnight windows should look safe for everyone.
        for phone_id in phone_owner:
            survival = forecast.survival_probability(
                phone_id, start_hour=0.0, duration_hours=5.0
            )
            assert survival > 0.5

    def test_unknown_owner_rejected(self):
        study = generate_study(days=7, seed=5)
        with pytest.raises(KeyError):
            AvailabilityForecast.from_study(
                study, {"phone-0": "nobody"}, days=7
            )
