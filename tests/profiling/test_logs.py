"""Tests for charging-state log records and parsing."""

import pytest

from repro.profiling.logs import (
    LogRecord,
    PhoneChargeState,
    parse_log,
    serialize_log,
)


def record(**kw):
    defaults = dict(
        user_id="u1",
        timestamp_s=1000.0,
        state=PhoneChargeState.PLUGGED,
        bytes_transferred=0,
    )
    defaults.update(kw)
    return LogRecord(**defaults)


class TestLogRecord:
    def test_hour_of_day(self):
        assert record(timestamp_s=0.0).hour_of_day == 0.0
        assert record(timestamp_s=3 * 86_400 + 6.5 * 3600).hour_of_day == 6.5

    def test_empty_user_rejected(self):
        with pytest.raises(ValueError):
            record(user_id="")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            record(bytes_transferred=-1)

    def test_nan_timestamp_rejected(self):
        with pytest.raises(ValueError):
            record(timestamp_s=float("nan"))


class TestSerialization:
    def sample_records(self):
        return [
            record(timestamp_s=10.0, state=PhoneChargeState.PLUGGED),
            record(
                timestamp_s=5000.0,
                state=PhoneChargeState.UNPLUGGED,
                bytes_transferred=123456,
            ),
            record(
                user_id="u2",
                timestamp_s=7000.0,
                state=PhoneChargeState.SHUTDOWN,
                bytes_transferred=9,
            ),
        ]

    def test_round_trip(self):
        records = self.sample_records()
        assert parse_log(serialize_log(records)) == records

    def test_blank_lines_ignored(self):
        text = serialize_log(self.sample_records())
        padded = "\n\n" + text + "\n\n"
        assert len(parse_log(padded)) == 3

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_log("u1\t100.0\tplugged")

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_log("u1\t100.0\tsleeping\t0")

    def test_bad_number_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_log("u1\tnoon\tplugged\t0")

    def test_error_reports_line_number(self):
        good = serialize_log(self.sample_records())
        with pytest.raises(ValueError, match="line 4"):
            parse_log(good + "\nbroken line\textra\tfields\tmore\tfields")

    def test_empty_log(self):
        assert parse_log("") == []
