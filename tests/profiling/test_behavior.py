"""Tests for the synthetic charging-behaviour generator."""

import random

import pytest

from repro.profiling.behavior import (
    UserBehavior,
    default_study_users,
    generate_study,
    generate_user_log,
)
from repro.profiling.logs import PhoneChargeState


class TestUserBehavior:
    def test_defaults_valid(self):
        UserBehavior(user_id="u")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            UserBehavior(user_id="")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            UserBehavior(user_id="u", night_skip_prob=1.5)

    def test_bad_regularity_rejected(self):
        with pytest.raises(ValueError):
            UserBehavior(user_id="u", regularity=0.0)


class TestDefaultStudyUsers:
    def test_fifteen_users(self):
        users = default_study_users()
        assert len(users) == 15
        assert len({u.user_id for u in users}) == 15

    def test_regular_users_are_more_consistent(self):
        users = {u.user_id: u for u in default_study_users()}
        regular = users["user-03"]
        ordinary = users["user-01"]
        assert regular.regularity < ordinary.regularity
        assert regular.night_skip_prob < ordinary.night_skip_prob

    def test_count_validation(self):
        with pytest.raises(ValueError):
            default_study_users(count=0)


class TestGenerateUserLog:
    def make_log(self, days=28, seed=1, **user_kw):
        user = UserBehavior(user_id="u", **user_kw)
        return generate_user_log(user, days=days, rng=random.Random(seed))

    def test_records_sorted_by_time(self):
        records = self.make_log()
        times = [r.timestamp_s for r in records]
        assert times == sorted(times)

    def test_states_alternate_plugged_then_exit(self):
        records = self.make_log()
        # Build per-interval pairs: every PLUGGED is followed (somewhere
        # later) by its exit; entry records carry 0 bytes.
        for r in records:
            if r.state is PhoneChargeState.PLUGGED:
                assert r.bytes_transferred == 0

    def test_exit_records_follow_entries(self):
        records = self.make_log()
        open_interval = False
        for r in sorted(records, key=lambda r: r.timestamp_s):
            if r.state is PhoneChargeState.PLUGGED:
                open_interval = True
            else:
                # generator never emits an exit without an entry
                assert open_interval
                open_interval = False

    def test_shutdown_fraction_near_three_percent(self):
        user = UserBehavior(user_id="u", shutdown_prob=0.03)
        rng = random.Random(11)
        records = []
        for _ in range(10):
            records.extend(generate_user_log(user, days=60, rng=rng))
        exits = [
            r
            for r in records
            if r.state in (PhoneChargeState.UNPLUGGED, PhoneChargeState.SHUTDOWN)
        ]
        shutdowns = sum(
            1 for r in exits if r.state is PhoneChargeState.SHUTDOWN
        )
        assert shutdowns / len(exits) == pytest.approx(0.03, abs=0.02)

    def test_night_skip_probability_one_gives_day_only(self):
        records = self.make_log(night_skip_prob=1.0, day_sessions_mean=2.0)
        for r in records:
            if r.state is PhoneChargeState.PLUGGED:
                assert 8.0 <= r.hour_of_day <= 21.0

    def test_deterministic_per_seed(self):
        assert self.make_log(seed=5) == self.make_log(seed=5)

    def test_days_validation(self):
        with pytest.raises(ValueError):
            self.make_log(days=0)


class TestGenerateStudy:
    def test_study_covers_all_users(self):
        study = generate_study(days=7, seed=2)
        assert len(study) == 15
        assert all(records for records in study.values())

    def test_study_deterministic(self):
        a = generate_study(days=7, seed=3)
        b = generate_study(days=7, seed=3)
        assert a == b

    def test_custom_cohort(self):
        users = (UserBehavior(user_id="solo"),)
        study = generate_study(users, days=7, seed=4)
        assert set(study) == {"solo"}
