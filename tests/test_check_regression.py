"""Tests for the bench-regression guard script."""

import json

import pytest

from benchmarks.check_regression import main, parse_guard


def write_bench(path, records, schema=2):
    path.write_text(json.dumps({"schema": schema, "records": records}))
    return path


@pytest.fixture
def bench_files(tmp_path):
    baseline = write_bench(
        tmp_path / "baseline.json",
        {"fleet_scale_full_pass": {"total_s": 10.0}},
    )
    current = write_bench(
        tmp_path / "current.json",
        {"fleet_scale_full_pass": {"total_s": 10.0}},
    )
    return baseline, current


class TestParseGuard:
    def test_default_tolerance(self):
        assert parse_guard("rec.field", 0.25) == ("rec", "field", 0.25)

    def test_explicit_tolerance(self):
        assert parse_guard("rec.field:0.05", 0.25) == ("rec", "field", 0.05)

    @pytest.mark.parametrize(
        "text", ["noField", "rec.field:abc", "rec.field:-0.1", ".f"]
    )
    def test_malformed_guard_rejected(self, text):
        with pytest.raises(SystemExit):
            parse_guard(text, 0.25)


class TestMain:
    def test_within_limit_passes(self, bench_files, capsys):
        baseline, current = bench_files
        assert main([str(baseline), str(current)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = write_bench(
            tmp_path / "b.json", {"fleet_scale_full_pass": {"total_s": 10.0}}
        )
        current = write_bench(
            tmp_path / "c.json", {"fleet_scale_full_pass": {"total_s": 13.0}}
        )
        assert main([str(baseline), str(current)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_extra_guard_with_tight_tolerance(self, tmp_path):
        records = {
            "fleet_scale_full_pass": {"total_s": 10.0},
            "telemetry_disabled_mid_pass": {"total_s": 1.0},
        }
        baseline = write_bench(tmp_path / "b.json", records)
        slower = {
            "fleet_scale_full_pass": {"total_s": 10.0},
            "telemetry_disabled_mid_pass": {"total_s": 1.1},
        }
        current = write_bench(tmp_path / "c.json", slower)
        guard = ["--guard", "telemetry_disabled_mid_pass.total_s:0.05"]
        assert main([str(baseline), str(current)] + guard) == 1
        loose = ["--guard", "telemetry_disabled_mid_pass.total_s:0.25"]
        assert main([str(baseline), str(current)] + loose) == 0

    def test_guard_missing_from_baseline_skipped(
        self, bench_files, capsys
    ):
        baseline, current = bench_files
        code = main(
            [str(baseline), str(current), "--guard", "new_bench.total_s"]
        )
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_guard_missing_from_current_fails(self, tmp_path):
        records = {
            "fleet_scale_full_pass": {"total_s": 10.0},
            "other": {"total_s": 1.0},
        }
        baseline = write_bench(tmp_path / "b.json", records)
        current = write_bench(
            tmp_path / "c.json", {"fleet_scale_full_pass": {"total_s": 10.0}}
        )
        assert (
            main([str(baseline), str(current), "--guard", "other.total_s"])
            == 1
        )

    def test_wrong_schema_rejected(self, tmp_path):
        baseline = write_bench(
            tmp_path / "b.json",
            {"fleet_scale_full_pass": {"total_s": 10.0}},
            schema=1,
        )
        current = write_bench(
            tmp_path / "c.json", {"fleet_scale_full_pass": {"total_s": 10.0}}
        )
        with pytest.raises(SystemExit):
            main([str(baseline), str(current)])

    def test_missing_records_rejected(self, tmp_path, bench_files):
        _, current = bench_files
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            main([str(bad), str(current)])
