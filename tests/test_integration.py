"""Cross-module integration tests: the full CWC story in one place.

Each test exercises a complete pipeline the way a deployment would —
measurement → prediction → scheduling → execution → aggregation — and
checks end-to-end invariants that no single module can guarantee alone.
"""

import random

import pytest

from repro.core import (
    CwcScheduler,
    EqualSplitScheduler,
    Job,
    JobKind,
    RamConstraint,
    RuntimePredictor,
    SchedulingInstance,
    solve_relaxed_makespan,
    validate_ram,
)
from repro.core.prediction import TaskProfile
from repro.netmodel import measure_fleet
from repro.runtime import TaskRegistry
from repro.sim import (
    CentralServer,
    FleetGroundTruth,
    RealExecutionRunner,
    direct_results,
)
from repro.workloads import (
    evaluation_workload,
    integer_file,
    paper_task_profiles,
    paper_testbed,
    text_size_kb,
)


class TestMeasureScheduleSimulate:
    """Bandwidth measurement feeds scheduling feeds simulation."""

    def test_full_pipeline_consistency(self):
        testbed = paper_testbed()
        b = measure_fleet(testbed.links)
        profiles = paper_task_profiles()
        predictor = RuntimePredictor(profiles)
        jobs = evaluation_workload(instances_per_task=10)
        instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)

        schedule = CwcScheduler().schedule(instance)
        schedule.validate(instance)
        predicted = schedule.predicted_makespan_ms(instance)

        # LP bound sandwiches from below.
        assert solve_relaxed_makespan(instance).makespan_ms <= predicted + 1e-6

        # Simulation with truth == prediction lands on the prediction.
        truth = FleetGroundTruth(profiles)
        server = CentralServer(
            testbed.phones, truth, RuntimePredictor(profiles),
            CwcScheduler(), b,
        )
        result = server.run(jobs)
        assert result.measured_makespan_ms == pytest.approx(
            predicted, rel=0.02
        )

    def test_learning_shrinks_prediction_error_across_nights(self):
        """Night 2 should predict better than night 1: the predictor has
        seen real execution reports."""
        testbed = paper_testbed()
        profiles = paper_task_profiles()
        truth = FleetGroundTruth(profiles, deviation_sigma=0.08, seed=11)
        predictor = RuntimePredictor(profiles, alpha=1.0)
        b = measure_fleet(testbed.links)
        jobs = evaluation_workload(instances_per_task=10)

        errors = []
        for _ in range(2):
            server = CentralServer(
                testbed.phones, truth, predictor, CwcScheduler(), b
            )
            result = server.run(jobs)
            errors.append(
                abs(result.predicted_makespan_ms - result.measured_makespan_ms)
                / result.measured_makespan_ms
            )
        assert errors[1] <= errors[0] + 0.02


class TestScheduleThenExecuteForReal:
    """The timing schedule drives a semantically exact execution."""

    def test_greedy_and_equal_split_agree_on_results(self):
        rng = random.Random(5)
        testbed = paper_testbed()
        registry = TaskRegistry()
        registry.load("repro.workloads.primes:PrimeCountTask")
        text = integer_file(120.0, rng)
        jobs = (
            Job(
                job_id="the-job",
                task="primes",
                kind=JobKind.BREAKABLE,
                executable_kb=10.0,
                input_kb=text_size_kb(text),
            ),
        )
        predictor = RuntimePredictor(
            {"primes": TaskProfile("primes", 5.0, 806.0)}
        )
        b = measure_fleet(testbed.links)
        instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)
        runner = RealExecutionRunner(
            registry, [p.phone_id for p in testbed.phones]
        )
        reference = direct_results(registry, {"the-job": ("primes", text)})

        for scheduler in (CwcScheduler(), EqualSplitScheduler()):
            schedule = scheduler.schedule(instance)
            outcome = runner.run(schedule, {"the-job": text})
            assert outcome.results == reference


class TestRamConstrainedEndToEnd:
    def test_ram_caps_respected_through_simulation(self):
        testbed = paper_testbed()
        profiles = paper_task_profiles()
        predictor = RuntimePredictor(profiles)
        b = measure_fleet(testbed.links)
        jobs = evaluation_workload(instances_per_task=5)
        instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)
        ram = RamConstraint(
            caps_kb={p.phone_id: 2_048.0 for p in testbed.phones}
        )
        scheduler = CwcScheduler(ram=ram)
        schedule = scheduler.schedule(instance)
        validate_ram(schedule, ram)

        truth = FleetGroundTruth(profiles)
        server = CentralServer(
            testbed.phones, truth, RuntimePredictor(profiles), scheduler, b
        )
        result = server.run(jobs)
        assert not result.unfinished_jobs
        for span in result.trace.spans:
            assert span.input_kb <= 2_048.0 + 1e-6


class TestMapReduceScaleJob:
    """Section 4's sizing claim: a median MapReduce job (< 14 GB input)
    partitions across 15-20 phones with ~1 GB RAM each."""

    def test_14gb_job_fits_the_fleet_under_ram_caps(self):
        testbed = paper_testbed()
        profiles = paper_task_profiles()
        predictor = RuntimePredictor(profiles)
        b = measure_fleet(testbed.links)
        fourteen_gb_kb = 14.0 * 1024.0 * 1024.0
        job = Job(
            job_id="mapreduce-median",
            task="wordcount",
            kind=JobKind.BREAKABLE,
            executable_kb=100.0,
            input_kb=fourteen_gb_kb,
        )
        instance = SchedulingInstance.build(
            (job,), testbed.phones, b, predictor
        )
        # ~1 GB usable RAM per phone (the paper's "1 GB RAM per phone
        # is enough" remark).
        ram = RamConstraint(
            caps_kb={p.phone_id: 1024.0 * 1024.0 for p in testbed.phones}
        )
        schedule = CwcScheduler(ram=ram).schedule(instance)
        schedule.validate(instance)
        validate_ram(schedule, ram)
        partitions = schedule.partition_counts()["mapreduce-median"]
        # 14 GB / 1 GB caps -> at least 14 pieces, spread over the fleet.
        assert partitions >= 14
        assert len({a.phone_id for a in schedule}) >= 10
