"""Edge cases for the pod-aggregated LP relaxation (lp_bound.py)."""

import numpy as np
import pytest

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.lp_bound import (
    solve_pod_relaxed_makespan,
    solve_relaxed_makespan,
)
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.pod import partition_phones
from repro.core.prediction import RuntimePredictor

from ..conftest import make_instance


def uniform_instance(n_phones=2, jobs=None, b=None):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(n_phones)
    )
    predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
    jobs = jobs or [Job("j0", "t", JobKind.BREAKABLE, 0.0, 100.0)]
    b = b or {p.phone_id: 1.0 for p in phones}
    return SchedulingInstance.build(jobs, phones, b, predictor)


class TestPodCoverValidation:
    def test_empty_pod_rejected(self, small_instance):
        with pytest.raises(ValueError, match="empty"):
            solve_pod_relaxed_makespan(small_instance, ((0, 1), (), (2, 3)))

    def test_no_pods_rejected(self, small_instance):
        with pytest.raises(ValueError, match="at least one pod"):
            solve_pod_relaxed_makespan(small_instance, ())

    def test_overlapping_pods_rejected(self, small_instance):
        with pytest.raises(ValueError, match="more than one pod"):
            solve_pod_relaxed_makespan(small_instance, ((0, 1), (1, 2, 3)))

    def test_out_of_range_position_rejected(self, small_instance):
        with pytest.raises(ValueError, match="outside"):
            solve_pod_relaxed_makespan(small_instance, ((0, 1, 2, 99),))


class TestPodBoundSemantics:
    def test_single_phone_pod_is_exact(self):
        """One phone, one singleton pod: bound equals L * (b + c)."""
        instance = uniform_instance(n_phones=1)
        solution = solve_pod_relaxed_makespan(instance, ((0,),))
        assert solution.makespan_ms == pytest.approx(200.0, rel=1e-6)
        assert solution.l_kb.shape == (1, 1)
        assert solution.l_kb[0, 0] == pytest.approx(100.0, rel=1e-6)

    def test_singleton_pods_match_full_lp(self, small_instance):
        """Every pod a single phone: no aggregation, same optimum."""
        n = len(small_instance.phones)
        pods = tuple((i,) for i in range(n))
        pod_solution = solve_pod_relaxed_makespan(small_instance, pods)
        full_solution = solve_relaxed_makespan(small_instance)
        assert pod_solution.makespan_ms == pytest.approx(
            full_solution.makespan_ms, rel=1e-6
        )

    def test_pod_bound_never_exceeds_full_lp(self, small_instance):
        """Aggregation only relaxes: T_pod <= T_full_lp <= makespan."""
        pods = partition_phones(len(small_instance.phones), 2)
        pod_bound = solve_pod_relaxed_makespan(small_instance, pods)
        full_bound = solve_relaxed_makespan(small_instance)
        assert pod_bound.makespan_ms <= full_bound.makespan_ms * (1 + 1e-9)
        schedule = CwcScheduler().schedule(small_instance)
        makespan = schedule.predicted_makespan_ms(small_instance)
        assert pod_bound.makespan_ms <= makespan * (1 + 1e-9)

    def test_uniform_pod_splits_work_across_copies(self):
        """Two identical phones in one pod halve the single job."""
        instance = uniform_instance(n_phones=2)
        solution = solve_pod_relaxed_makespan(instance, ((0, 1),))
        assert solution.makespan_ms == pytest.approx(100.0, rel=1e-6)

    def test_atomic_jobs_keep_unit_coverage(self):
        jobs = [Job("a0", "t", JobKind.ATOMIC, 10.0, 100.0)]
        instance = uniform_instance(n_phones=4, jobs=jobs)
        solution = solve_pod_relaxed_makespan(instance, ((0, 1), (2, 3)))
        assert solution.u.sum(axis=0)[0] == pytest.approx(1.0, abs=1e-6)

    def test_degenerate_zero_bandwidth_phone(self):
        """b_i = 0 phones are legal: shipping is free, not infeasible."""
        instance = uniform_instance(
            n_phones=2, b={"p0": 0.0, "p1": 5.0}
        )
        solution = solve_pod_relaxed_makespan(instance, ((0, 1),))
        assert np.isfinite(solution.makespan_ms)
        assert solution.makespan_ms >= 0.0

    def test_fuzzed_instances_respect_sandwich(self):
        for seed in (3, 11, 27):
            instance = make_instance(
                n_phones=6, n_breakable=5, n_atomic=2, seed=seed
            )
            pods = partition_phones(6, 3)
            pod_bound = solve_pod_relaxed_makespan(instance, pods)
            schedule = CwcScheduler().schedule(instance)
            makespan = schedule.predicted_makespan_ms(instance)
            assert pod_bound.makespan_ms <= makespan * (1 + 1e-9)

    def test_solver_failure_raises_runtime_error(
        self, small_instance, monkeypatch
    ):
        import repro.core.lp_bound as lp_bound

        class _Fail:
            status = 2
            message = "synthetic failure"
            success = False

        monkeypatch.setattr(
            lp_bound, "linprog", lambda *args, **kwargs: _Fail()
        )
        with pytest.raises(RuntimeError, match="pod LP relaxation failed"):
            solve_pod_relaxed_makespan(
                small_instance,
                partition_phones(len(small_instance.phones), 2),
            )
