"""Edge-case and tie-breaking tests for the greedy packer."""

import pytest

from repro.core.capacity import CapacitySearch
from repro.core.constraints import RamConstraint
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.packing import GreedyPacker
from repro.core.prediction import RuntimePredictor


def instance_with(jobs, n_phones=2, b=1.0, base_ms=1.0):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(n_phones)
    )
    predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": base_ms})
    return SchedulingInstance.build(
        jobs, phones, {p.phone_id: b for p in phones}, predictor
    )


class TestTieBreaking:
    def test_equal_height_bins_break_ties_by_phone_id(self):
        """Identical phones, identical items: placement is deterministic
        and favours the lexicographically first phone."""
        jobs = [Job(f"j{i}", "t", JobKind.ATOMIC, 0.0, 100.0) for i in range(2)]
        instance = instance_with(jobs)
        # Capacity fits one job per bin.
        result = GreedyPacker(instance).pack(200.0)
        assert result.feasible
        placements = {a.job_id: a.phone_id for a in result.schedule}
        # First item opens p0 (best == tie -> lowest id); second opens p1.
        assert set(placements.values()) == {"p0", "p1"}

    def test_determinism_across_runs(self):
        jobs = [
            Job(f"j{i}", "t", JobKind.BREAKABLE, 5.0, 100.0 + i)
            for i in range(6)
        ]
        instance = instance_with(jobs, n_phones=3)
        packer = GreedyPacker(instance)
        first = packer.pack(400.0)
        second = GreedyPacker(instance).pack(400.0)
        assert first.feasible == second.feasible
        if first.feasible:
            assert [
                (a.phone_id, a.job_id, a.input_kb) for a in first.schedule
            ] == [(a.phone_id, a.job_id, a.input_kb) for a in second.schedule]


class TestOpenBinPreference:
    def test_prefers_open_bins_before_opening_new(self):
        """Two small jobs that both fit on one phone stay on one phone
        when capacity allows — fewer opened bins, fewer executables."""
        jobs = [Job(f"j{i}", "t", JobKind.ATOMIC, 0.0, 50.0) for i in range(2)]
        instance = instance_with(jobs)
        # Capacity holds both jobs in one bin (2 * 50 * 2 = 200).
        result = GreedyPacker(instance).pack(200.0)
        assert result.feasible
        assert result.opened_bins == 1

    def test_opens_second_bin_only_when_needed(self):
        jobs = [Job(f"j{i}", "t", JobKind.ATOMIC, 0.0, 50.0) for i in range(2)]
        instance = instance_with(jobs)
        result = GreedyPacker(instance).pack(100.0)  # one job per bin max
        assert result.feasible
        assert result.opened_bins == 2


class TestZeroCostEdges:
    def test_zero_bandwidth_phone(self):
        """b=0 (infinitely fast link): only compute counts."""
        jobs = [Job("j", "t", JobKind.BREAKABLE, 100.0, 100.0)]
        instance = instance_with(jobs, n_phones=1, b=0.0)
        # Cost = 100 KB * 1 ms/KB compute only.
        result = GreedyPacker(instance).pack(100.0 + 1e-6)
        assert result.feasible
        assert result.max_height_ms == pytest.approx(100.0)

    def test_zero_executable(self):
        jobs = [Job("j", "t", JobKind.BREAKABLE, 0.0, 100.0)]
        instance = instance_with(jobs, n_phones=1)
        result = GreedyPacker(instance).pack(200.0 + 1e-6)
        assert result.feasible


class TestRamWithCapacitySearch:
    def test_search_respects_ram_throughout(self):
        jobs = [Job("big", "t", JobKind.BREAKABLE, 10.0, 10_000.0)]
        instance = instance_with(jobs, n_phones=3)
        ram = RamConstraint(caps_kb={f"p{i}": 2_000.0 for i in range(3)})
        result = CapacitySearch(ram=ram).run(instance)
        result.schedule.validate(instance)
        for assignment in result.schedule:
            assert assignment.input_kb <= 2_000.0 + 1e-6

    def test_ram_forces_more_partitions_than_capacity_alone(self):
        jobs = [Job("big", "t", JobKind.BREAKABLE, 10.0, 10_000.0)]
        instance = instance_with(jobs, n_phones=3)
        unconstrained = CapacitySearch().run(instance)
        ram = RamConstraint(caps_kb={f"p{i}": 1_000.0 for i in range(3)})
        constrained = CapacitySearch(ram=ram).run(instance)
        assert len(constrained.schedule.assignments) > len(
            unconstrained.schedule.assignments
        )


class TestRemainderHandling:
    def test_split_remainder_is_resorted(self):
        """After a partial pack the remainder re-enters the sorted list
        and is eventually packed — full coverage regardless of splits."""
        jobs = [
            Job("large", "t", JobKind.BREAKABLE, 0.0, 1_000.0),
            Job("small", "t", JobKind.BREAKABLE, 0.0, 10.0),
        ]
        instance = instance_with(jobs, n_phones=2)
        # Capacity forces the large job to split across both bins.
        result = GreedyPacker(instance).pack(1_100.0)
        assert result.feasible
        result.schedule.validate(instance)
        assert result.schedule.assigned_kb("large") == pytest.approx(1_000.0)
        assert result.schedule.assigned_kb("small") == pytest.approx(10.0)
