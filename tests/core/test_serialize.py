"""Tests for JSON (de)serialisation of the scheduling data model."""

import json

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, NetworkTechnology, PhoneSpec
from repro.core.serialize import (
    instance_from_dict,
    instance_to_dict,
    job_from_dict,
    job_to_dict,
    phone_from_dict,
    phone_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

from ..conftest import make_instance


class TestPhoneRoundTrip:
    def test_round_trip(self):
        phone = PhoneSpec(
            phone_id="p1",
            cpu_mhz=1200.0,
            network=NetworkTechnology.EDGE,
            ram_mb=2048.0,
            cpu_efficiency=1.2,
            location="house-2",
            model_name="sensation",
        )
        assert phone_from_dict(phone_to_dict(phone)) == phone

    def test_json_compatible(self):
        phone = PhoneSpec(phone_id="p1", cpu_mhz=1200.0)
        json.dumps(phone_to_dict(phone))  # must not raise

    def test_defaults_filled(self):
        phone = phone_from_dict({"phone_id": "p", "cpu_mhz": 800})
        assert phone.network is NetworkTechnology.WIFI_G
        assert phone.ram_mb == 1024.0

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            phone_from_dict({"cpu_mhz": 800})

    def test_invalid_values_rejected_by_constructor(self):
        with pytest.raises(ValueError):
            phone_from_dict({"phone_id": "p", "cpu_mhz": -1})


class TestJobRoundTrip:
    def test_round_trip(self):
        job = Job("j", "primes", JobKind.ATOMIC, 40.0, 500.0)
        assert job_from_dict(job_to_dict(job)) == job

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            job_from_dict({"job_id": "j"})

    def test_bad_kind_rejected(self):
        data = job_to_dict(Job("j", "t", JobKind.ATOMIC, 1.0, 1.0))
        data["kind"] = "mystery"
        with pytest.raises(ValueError):
            job_from_dict(data)


class TestInstanceRoundTrip:
    def test_round_trip_preserves_costs(self, small_instance):
        data = instance_to_dict(small_instance)
        json.dumps(data)
        restored = instance_from_dict(data)
        assert restored.jobs == small_instance.jobs
        assert restored.phones == small_instance.phones
        for phone in small_instance.phones:
            assert restored.b(phone.phone_id) == small_instance.b(
                phone.phone_id
            )
            for job in small_instance.jobs:
                assert restored.c(
                    phone.phone_id, job.job_id
                ) == small_instance.c(phone.phone_id, job.job_id)

    def test_restored_instance_schedules_identically(self, small_instance):
        restored = instance_from_dict(instance_to_dict(small_instance))
        original = CwcScheduler().schedule(small_instance)
        replayed = CwcScheduler().schedule(restored)
        assert [
            (a.phone_id, a.job_id, a.input_kb) for a in original
        ] == [(a.phone_id, a.job_id, a.input_kb) for a in replayed]

    def test_malformed_c_key_rejected(self, small_instance):
        data = instance_to_dict(small_instance)
        data["c_ms_per_kb"] = {"no-separator": 1.0}
        with pytest.raises(ValueError, match="malformed"):
            instance_from_dict(data)


class TestScheduleRoundTrip:
    def test_round_trip(self, small_instance):
        schedule = CwcScheduler().schedule(small_instance)
        data = schedule_to_dict(schedule)
        json.dumps(data)
        restored = schedule_from_dict(data)
        restored.validate(small_instance)
        assert restored.predicted_makespan_ms(
            small_instance
        ) == pytest.approx(schedule.predicted_makespan_ms(small_instance))
        assert restored.partition_counts() == schedule.partition_counts()

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            schedule_from_dict({"assignments": [{"phone_id": "p"}]})


class TestDualKernelScheduleRoundTrip:
    """NumPy-kernel schedules serialize exactly like Python-kernel ones.

    The vector kernel is only a faster backend: after a JSON round
    trip, its schedules — partitioned/atomic mixes included — must be
    indistinguishable from the scalar kernel's, and the same must hold
    for the follow-up schedules built from migration checkpoints.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_round_trips_identical_across_kernels(self, seed):
        instance = make_instance(
            n_breakable=10, n_atomic=4, n_phones=8, seed=seed
        )
        py = CwcScheduler(kernel="python").schedule(instance)
        vec = CwcScheduler(kernel="numpy").schedule(instance)
        py_round = schedule_from_dict(schedule_to_dict(py))
        vec_round = schedule_from_dict(schedule_to_dict(vec))
        vec_round.validate(instance)
        assert schedule_to_dict(vec_round) == schedule_to_dict(py_round)
        # The wire form itself is byte-identical, not merely equivalent.
        assert json.dumps(
            schedule_to_dict(vec), sort_keys=True
        ) == json.dumps(schedule_to_dict(py), sort_keys=True)

    def test_round_trip_covers_partitioned_and_atomic_mix(self):
        instance = make_instance(
            n_breakable=12, n_atomic=6, n_phones=4, seed=42
        )
        vec = CwcScheduler(kernel="numpy").schedule(instance)
        restored = schedule_from_dict(schedule_to_dict(vec))
        atomic_ids = {job.job_id for job in instance.atomic_jobs()}
        wholes = [a for a in restored if a.whole]
        splits = [a for a in restored if not a.whole]
        assert wholes and splits  # the mix actually exercises both paths
        for assignment in restored:
            if assignment.job_id in atomic_ids:
                assert assignment.whole

    def test_checkpoint_resume_round_trips_identically(self):
        from repro.core.migration import Checkpoint, FailedTaskList

        instance = make_instance(
            n_breakable=8, n_atomic=3, n_phones=6, seed=6
        )
        first = CwcScheduler(kernel="numpy").schedule(instance)
        victim = max(first, key=lambda a: a.input_kb)
        job = instance.job(victim.job_id)
        failed = FailedTaskList()
        failed.record_online_failure(
            job,
            Checkpoint(
                job_id=job.job_id,
                task=job.task,
                phone_id=victim.phone_id,
                partition_kb=victim.input_kb,
                processed_kb=victim.input_kb * 0.25,
                partial_result=None,
                time_ms=500.0,
            ),
        )
        remainder_jobs = failed.drain()
        assert remainder_jobs
        followup = instance_from_dict(instance_to_dict(instance))
        followup = SchedulingInstance(
            jobs=remainder_jobs,
            phones=followup.phones,
            b_ms_per_kb=followup.b_ms_per_kb,
            c_ms_per_kb={
                (phone.phone_id, job.job_id): followup.c(
                    phone.phone_id, job.job_id
                )
                for phone in followup.phones
                for job in remainder_jobs
            },
        )
        py = CwcScheduler(kernel="python").schedule(followup)
        vec = CwcScheduler(kernel="numpy").schedule(followup)
        assert schedule_to_dict(
            schedule_from_dict(schedule_to_dict(vec))
        ) == schedule_to_dict(schedule_from_dict(schedule_to_dict(py)))
