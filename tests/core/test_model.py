"""Unit tests for the core data model (Job, PhoneSpec, Equation 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import (
    MIN_PARTITION_KB,
    Job,
    JobKind,
    NetworkTechnology,
    PhoneSpec,
    completion_time,
)


def make_job(**overrides):
    defaults = dict(
        job_id="j1",
        task="primes",
        kind=JobKind.BREAKABLE,
        executable_kb=40.0,
        input_kb=1000.0,
    )
    defaults.update(overrides)
    return Job(**defaults)


class TestJob:
    def test_basic_construction(self):
        job = make_job()
        assert job.job_id == "j1"
        assert job.is_breakable
        assert not job.is_atomic

    def test_atomic_flags(self):
        job = make_job(kind=JobKind.ATOMIC)
        assert job.is_atomic
        assert not job.is_breakable

    def test_empty_job_id_rejected(self):
        with pytest.raises(ValueError, match="job_id"):
            make_job(job_id="")

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError, match="task"):
            make_job(task="")

    def test_negative_executable_rejected(self):
        with pytest.raises(ValueError, match="executable_kb"):
            make_job(executable_kb=-1.0)

    def test_zero_executable_allowed(self):
        assert make_job(executable_kb=0.0).executable_kb == 0.0

    def test_zero_input_rejected(self):
        with pytest.raises(ValueError, match="input_kb"):
            make_job(input_kb=0.0)

    def test_nan_input_rejected(self):
        with pytest.raises(ValueError, match="input_kb"):
            make_job(input_kb=math.nan)

    def test_infinite_executable_rejected(self):
        with pytest.raises(ValueError, match="executable_kb"):
            make_job(executable_kb=math.inf)

    def test_with_input_shrinks_only_input(self):
        job = make_job()
        smaller = job.with_input(250.0)
        assert smaller.input_kb == 250.0
        assert smaller.job_id == job.job_id
        assert smaller.task == job.task
        assert smaller.kind == job.kind
        assert smaller.executable_kb == job.executable_kb

    def test_with_input_validates(self):
        with pytest.raises(ValueError):
            make_job().with_input(0.0)

    def test_jobs_are_hashable_and_frozen(self):
        job = make_job()
        assert hash(job) == hash(make_job())
        with pytest.raises(AttributeError):
            job.input_kb = 5.0


class TestPhoneSpec:
    def test_basic_construction(self):
        phone = PhoneSpec(phone_id="p1", cpu_mhz=806.0)
        assert phone.network is NetworkTechnology.WIFI_G
        assert phone.cpu_efficiency == 1.0
        assert phone.effective_mhz == 806.0

    def test_effective_mhz_uses_efficiency(self):
        phone = PhoneSpec(phone_id="p1", cpu_mhz=1000.0, cpu_efficiency=1.3)
        assert phone.effective_mhz == pytest.approx(1300.0)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="phone_id"):
            PhoneSpec(phone_id="", cpu_mhz=806.0)

    @pytest.mark.parametrize("mhz", [0.0, -100.0, math.nan, math.inf])
    def test_bad_clock_rejected(self, mhz):
        with pytest.raises(ValueError, match="cpu_mhz"):
            PhoneSpec(phone_id="p1", cpu_mhz=mhz)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError, match="cpu_efficiency"):
            PhoneSpec(phone_id="p1", cpu_mhz=806.0, cpu_efficiency=0.0)

    def test_bad_ram_rejected(self):
        with pytest.raises(ValueError, match="ram_mb"):
            PhoneSpec(phone_id="p1", cpu_mhz=806.0, ram_mb=-1.0)

    def test_extras_do_not_affect_equality(self):
        a = PhoneSpec(phone_id="p1", cpu_mhz=806.0, extras={"note": "x"})
        b = PhoneSpec(phone_id="p1", cpu_mhz=806.0, extras={"note": "y"})
        assert a == b


class TestCompletionTime:
    def test_equation_one(self):
        # E*b + x*(b + c) = 10*2 + 100*(2 + 3) = 520
        assert completion_time(10.0, 100.0, 2.0, 3.0) == pytest.approx(520.0)

    def test_zero_input(self):
        assert completion_time(10.0, 0.0, 2.0, 3.0) == pytest.approx(20.0)

    def test_zero_everything(self):
        assert completion_time(0.0, 0.0, 0.0, 0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            completion_time(-1.0, 100.0, 2.0, 3.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            completion_time(1.0, 100.0, -2.0, 3.0)

    @given(
        e=st.floats(min_value=0, max_value=1e6),
        x=st.floats(min_value=0, max_value=1e6),
        b=st.floats(min_value=0, max_value=1e3),
        c=st.floats(min_value=0, max_value=1e3),
    )
    def test_nonnegative_and_monotone_in_input(self, e, x, b, c):
        t = completion_time(e, x, b, c)
        assert t >= 0
        assert completion_time(e, x + 1.0, b, c) >= t

    @given(
        x=st.floats(min_value=1, max_value=1e6),
        b=st.floats(min_value=0.001, max_value=1e3),
        c=st.floats(min_value=0.001, max_value=1e3),
    )
    def test_linearity_in_input(self, x, b, c):
        base = completion_time(0.0, x, b, c)
        assert completion_time(0.0, 2 * x, b, c) == pytest.approx(2 * base)


def test_min_partition_is_positive():
    assert MIN_PARTITION_KB > 0
