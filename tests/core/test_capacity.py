"""Tests for the binary capacity search (Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import CapacitySearch, capacity_bounds
from repro.core.packing import GreedyPacker

from ..conftest import make_instance


class TestBounds:
    def test_bounds_are_ordered(self, small_instance):
        lower, upper = capacity_bounds(small_instance)
        assert 0 < lower <= upper

    def test_upper_bound_is_worst_phone_total(self, small_instance):
        _, upper = capacity_bounds(small_instance)
        worst = max(
            sum(
                small_instance.cost(p.phone_id, j.job_id)
                for j in small_instance.jobs
            )
            for p in small_instance.phones
        )
        assert upper == pytest.approx(worst)

    def test_lower_bound_is_aggregate_rate(self, single_phone_instance):
        # With one phone the magical bin is that phone without exe costs.
        lower, _ = capacity_bounds(single_phone_instance)
        expected = sum(
            job.input_kb
            * (
                single_phone_instance.b("p0")
                + single_phone_instance.c("p0", job.job_id)
            )
            for job in single_phone_instance.jobs
        )
        assert lower == pytest.approx(expected)

    def test_more_phones_lower_bound_shrinks(self):
        small = make_instance(n_phones=2, seed=9)
        # Same jobs, more phones -> aggregate rate grows -> bound shrinks.
        big = make_instance(n_phones=6, seed=9)
        assert capacity_bounds(big)[0] < capacity_bounds(small)[0]


class TestSearch:
    def test_search_returns_valid_schedule(self, small_instance):
        result = CapacitySearch().run(small_instance)
        result.schedule.validate(small_instance)
        assert result.lower_bound_ms <= result.capacity_ms
        assert result.capacity_ms <= result.upper_bound_ms + 1e-6

    def test_search_beats_upper_bound(self, small_instance):
        """With several phones the minimised capacity should be well
        below packing everything on the worst phone."""
        result = CapacitySearch().run(small_instance)
        assert result.max_height_ms < result.upper_bound_ms * 0.9

    def test_found_capacity_is_nearly_minimal(self, small_instance):
        """Packing at (found capacity - 2 epsilon) must fail, otherwise
        the bisection stopped too early."""
        epsilon = 1.0
        result = CapacitySearch(epsilon_ms=epsilon).run(small_instance)
        tighter = GreedyPacker(small_instance).pack(
            result.capacity_ms - 2 * epsilon
        )
        # Either infeasible, or feasible with essentially the same height
        # (the greedy is not monotone in C, so allow the latter).
        if tighter.feasible:
            assert tighter.max_height_ms >= result.max_height_ms - 2 * epsilon

    def test_iterations_bounded(self, small_instance):
        result = CapacitySearch(max_iterations=10).run(small_instance)
        assert result.iterations <= 10

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            CapacitySearch(epsilon_ms=0.0)
        with pytest.raises(ValueError):
            CapacitySearch(max_iterations=0)

    def test_single_phone_schedule_uses_it(self, single_phone_instance):
        result = CapacitySearch().run(single_phone_instance)
        result.schedule.validate(single_phone_instance)
        assert set(result.schedule.phone_ids) == {"p0"}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_search_is_deterministic(self, seed):
        instance = make_instance(seed=seed)
        first = CapacitySearch().run(instance)
        second = CapacitySearch().run(instance)
        assert first.capacity_ms == second.capacity_ms
        assert [
            (a.phone_id, a.job_id, a.input_kb) for a in first.schedule
        ] == [(a.phone_id, a.job_id, a.input_kb) for a in second.schedule]
