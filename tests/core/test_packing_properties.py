"""Property tests for the optimised packer.

Two properties underpin the hot-path overhaul:

* **monotonicity** — if Algorithm 1 packs at capacity ``C`` it packs at
  every ``C' > C``.  The warm-start oracle in
  :mod:`repro.core.capacity` assumes exactly this, so it is pinned
  here across random instances including atomic jobs, jobs at the
  ``MIN_PARTITION_KB`` granularity, and RAM-clamped fleets;
* **reference equivalence** — the optimised packer takes every decision
  the frozen pre-optimisation packer takes, on arbitrary generated
  instances and capacities (the golden tests cover curated ones).

Both properties are pinned for *each* packing kernel — the exact
scalar :class:`~repro.core.packing.GreedyPacker` and the vectorized
:class:`~repro.core.packing_vec.VectorGreedyPacker` — since the
capacity search may run either.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._reference import ReferenceGreedyPacker
from repro.core.capacity import capacity_bounds
from repro.core.constraints import RamConstraint
from repro.core.instance import SchedulingInstance
from repro.core.model import MIN_PARTITION_KB, Job, JobKind, PhoneSpec
from repro.core.packing import GreedyPacker
from repro.core.packing_vec import VectorGreedyPacker
from repro.core.serialize import schedule_to_dict

KERNELS = pytest.mark.parametrize(
    "packer_cls", [GreedyPacker, VectorGreedyPacker]
)


@st.composite
def instances(draw):
    n_phones = draw(st.integers(min_value=1, max_value=6))
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    phones = tuple(
        PhoneSpec(
            phone_id=f"p{i}",
            cpu_mhz=draw(
                st.floats(min_value=200.0, max_value=2000.0)
            ),
        )
        for i in range(n_phones)
    )
    jobs = []
    for j in range(n_jobs):
        atomic = draw(st.booleans())
        # Inputs deliberately straddle MIN_PARTITION_KB: sub-granularity
        # jobs, exactly-granular jobs, and ordinary ones.
        input_kb = draw(
            st.one_of(
                st.floats(min_value=0.1, max_value=MIN_PARTITION_KB),
                st.just(MIN_PARTITION_KB),
                st.just(2.0 * MIN_PARTITION_KB),
                st.floats(min_value=1.0, max_value=500.0),
            )
        )
        jobs.append(
            Job(
                job_id=f"j{j}",
                task="t",
                kind=JobKind.ATOMIC if atomic else JobKind.BREAKABLE,
                executable_kb=draw(st.floats(min_value=0.0, max_value=60.0)),
                input_kb=input_kb,
            )
        )
    b = {
        p.phone_id: draw(st.floats(min_value=0.0, max_value=50.0))
        for p in phones
    }
    c = {
        (p.phone_id, job.job_id): draw(
            st.floats(min_value=0.0, max_value=80.0)
        )
        for p in phones
        for job in jobs
    }
    return SchedulingInstance(
        jobs=tuple(jobs), phones=phones, b_ms_per_kb=b, c_ms_per_kb=c
    )


@st.composite
def instance_and_capacities(draw):
    instance = draw(instances())
    lower, upper = capacity_bounds(instance)
    span = max(upper, 1.0)
    fractions = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.3),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    return instance, sorted(f * span for f in fractions)


@KERNELS
@settings(max_examples=150, deadline=None)
@given(case=instance_and_capacities())
def test_feasibility_monotone_in_capacity(packer_cls, case):
    """pack(C) feasible implies pack(C') feasible for all C' > C."""
    instance, capacities = case
    packer = packer_cls(instance)
    feasibility = [packer.pack(c).feasible for c in capacities]
    # Once True, never False again at a higher capacity.
    assert feasibility == sorted(feasibility), (
        f"feasibility not monotone: {list(zip(capacities, feasibility))}"
    )


@KERNELS
@settings(max_examples=120, deadline=None)
@given(case=instance_and_capacities())
def test_packer_matches_reference_everywhere(packer_cls, case):
    instance, capacities = case
    optimised = packer_cls(instance)
    reference = ReferenceGreedyPacker(instance)
    for capacity in capacities:
        a = optimised.pack(capacity)
        b = reference.pack(capacity)
        assert a.feasible == b.feasible
        assert a.max_height_ms == b.max_height_ms
        assert a.opened_bins == b.opened_bins
        if a.feasible:
            assert schedule_to_dict(a.schedule) == schedule_to_dict(
                b.schedule
            )


@KERNELS
@settings(max_examples=60, deadline=None)
@given(
    case=instance_and_capacities(),
    cap_scale=st.floats(min_value=0.5, max_value=3.0),
)
def test_feasibility_monotone_under_ram_clamp(packer_cls, case, cap_scale):
    """Monotonicity survives the RAM constraint (footnote 4)."""
    instance, capacities = case
    biggest = max(job.input_kb for job in instance.jobs)
    ram = RamConstraint(
        {
            phone.phone_id: max(biggest * cap_scale, MIN_PARTITION_KB)
            for phone in instance.phones
        }
    )
    packer = packer_cls(instance, ram=ram)
    feasibility = [packer.pack(c).feasible for c in capacities]
    assert feasibility == sorted(feasibility)


@KERNELS
def test_atomic_all_or_nothing_at_tight_capacity(packer_cls):
    """An atomic job never appears split, feasible or not."""
    phones = (PhoneSpec(phone_id="p0", cpu_mhz=500.0),)
    job = Job("a0", "t", JobKind.ATOMIC, 10.0, 100.0)
    instance = SchedulingInstance(
        jobs=(job,),
        phones=phones,
        b_ms_per_kb={"p0": 1.0},
        c_ms_per_kb={("p0", "a0"): 2.0},
    )
    packer = packer_cls(instance)
    full_cost = 10.0 * 1.0 + 100.0 * 3.0
    assert not packer.pack(full_cost * 0.999).feasible
    result = packer.pack(full_cost * 1.001)
    assert result.feasible
    (assignment,) = result.schedule.assignments
    assert assignment.input_kb == 100.0


@KERNELS
def test_min_partition_floor_respected(packer_cls):
    """No breakable partition below the packer's granularity."""
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=500.0) for i in range(3)
    )
    job = Job("b0", "t", JobKind.BREAKABLE, 5.0, 90.0)
    instance = SchedulingInstance(
        jobs=(job,),
        phones=phones,
        b_ms_per_kb={p.phone_id: 1.0 for p in phones},
        c_ms_per_kb={(p.phone_id, "b0"): 2.0 for p in phones},
    )
    packer = packer_cls(instance, min_partition_kb=30.0)
    lower, upper = capacity_bounds(instance)
    for k in range(10):
        capacity = lower + (upper * 1.1 - lower) * k / 9.0
        result = packer.pack(capacity)
        if result.feasible:
            for assignment in result.schedule.assignments:
                assert assignment.input_kb >= 30.0 - 1e-9


# ---------------------------------------------------------------------------
# pluggable policies
# ---------------------------------------------------------------------------


POLICIES = pytest.mark.parametrize(
    "policy_name",
    ["cwc-greedy", "replication", "energy-aware", "shortest-expected"],
)


@POLICIES
@settings(max_examples=60, deadline=None)
@given(case=instances())
def test_every_policy_yields_valid_deterministic_schedules(
    policy_name, case
):
    """All pluggable policies uphold the packer's core contract.

    On arbitrary generated instances every policy must (a) produce a
    schedule that passes full validation — every byte covered exactly
    once, atomic jobs whole — (b) be deterministic, and (c) only ask
    for replicas of whole-job assignments on phones that did not
    already run the job.
    """
    from repro.core.policies import make_policy
    from repro.core.policies.base import whole_assignments

    policy = make_policy(policy_name)
    schedule = policy.schedule(case)
    schedule.validate(case)
    again = make_policy(policy_name).schedule(case)
    assert schedule_to_dict(schedule) == schedule_to_dict(again)

    whole = set(whole_assignments(schedule))
    placed = {
        (phone_id, a.job_id)
        for phone_id in schedule.phone_ids
        for a in schedule.for_phone(phone_id)
    }
    for directive in policy.last_replicas:
        # The replicated job must be placed whole somewhere...
        assert any(j == directive.job_id for _, j in whole)
        # ...and the replica target must not already run it.
        assert (directive.phone_id, directive.job_id) not in placed
        assert directive.phone_id in {p.phone_id for p in case.phones}
