"""Tests for Algorithm 1 — the greedy CBP packing at fixed capacity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.packing import GreedyPacker
from repro.core.prediction import RuntimePredictor

from ..conftest import make_instance


def uniform_instance(n_jobs=3, n_phones=2, input_kb=100.0, atomic=False):
    """Identical phones, identical jobs — costs are easy to reason about."""
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(n_phones)
    )
    predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
    kind = JobKind.ATOMIC if atomic else JobKind.BREAKABLE
    jobs = [Job(f"j{i}", "t", kind, 10.0, input_kb) for i in range(n_jobs)]
    b = {p.phone_id: 1.0 for p in phones}
    return SchedulingInstance.build(jobs, phones, b, predictor)


# With b=1, c=1: each job costs 10*1 + 100*(1+1) = 210 on an empty bin.
JOB_COST = 210.0


class TestFeasibility:
    def test_everything_fits_one_bin(self):
        instance = uniform_instance(n_jobs=3, n_phones=2)
        result = GreedyPacker(instance).pack(3 * JOB_COST)
        assert result.feasible
        result.schedule.validate(instance)
        assert result.max_height_ms <= 3 * JOB_COST + 1e-9

    def test_tight_capacity_uses_both_bins(self):
        instance = uniform_instance(n_jobs=2, n_phones=2)
        result = GreedyPacker(instance).pack(JOB_COST)
        assert result.feasible
        assert result.opened_bins == 2

    def test_infeasible_atomic(self):
        # Atomic jobs cannot split; capacity below one job cost fails.
        instance = uniform_instance(n_jobs=2, n_phones=2, atomic=True)
        result = GreedyPacker(instance).pack(JOB_COST - 1)
        assert not result.feasible
        assert result.schedule is None

    def test_breakable_splits_at_small_capacity(self):
        # Breakable jobs can split across both phones.
        instance = uniform_instance(n_jobs=1, n_phones=2)
        result = GreedyPacker(instance).pack(JOB_COST * 0.6)
        assert result.feasible
        schedule = result.schedule
        schedule.validate(instance)
        assert schedule.partition_counts()["j0"] == 2

    def test_zero_capacity_infeasible(self):
        instance = uniform_instance()
        assert not GreedyPacker(instance).pack(0.0).feasible

    def test_negative_capacity_infeasible(self):
        instance = uniform_instance()
        assert not GreedyPacker(instance).pack(-10.0).feasible

    def test_capacity_below_min_partition_infeasible(self):
        # One phone; capacity can't even hold exe + 1 KB.
        instance = uniform_instance(n_jobs=1, n_phones=1)
        # exe cost 10, min partition cost 2 -> needs >= 12
        assert not GreedyPacker(instance).pack(11.0).feasible
        assert GreedyPacker(instance).pack(JOB_COST).feasible


class TestAtomicHandling:
    def test_atomic_never_split(self):
        instance = make_instance(n_breakable=0, n_atomic=5, n_phones=3, seed=7)
        packer = GreedyPacker(instance)
        upper = max(
            sum(instance.cost(p.phone_id, j.job_id) for j in instance.jobs)
            for p in instance.phones
        )
        result = packer.pack(upper)
        assert result.feasible
        counts = result.schedule.partition_counts()
        assert all(count == 0 for count in counts.values())

    def test_mixed_workload_valid(self):
        instance = make_instance(seed=3)
        upper = max(
            sum(instance.cost(p.phone_id, j.job_id) for j in instance.jobs)
            for p in instance.phones
        )
        result = GreedyPacker(instance).pack(upper * 0.5)
        if result.feasible:
            result.schedule.validate(instance)


class TestExecutableDedup:
    def test_same_job_same_bin_pays_exe_once(self):
        """Two partitions of one job on one phone ship one executable."""
        instance = uniform_instance(n_jobs=1, n_phones=1)
        # Capacity forces nothing; job packs whole. Instead check heights:
        result = GreedyPacker(instance).pack(JOB_COST)
        assert result.feasible
        assert result.max_height_ms == pytest.approx(JOB_COST)


class TestOrdering:
    def test_largest_item_placed_first_on_best_bin(self):
        phones = (
            PhoneSpec(phone_id="slow", cpu_mhz=800.0),
            PhoneSpec(phone_id="fast", cpu_mhz=1600.0),
        )
        predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 10.0})
        jobs = [
            Job("small", "t", JobKind.ATOMIC, 1.0, 10.0),
            Job("big", "t", JobKind.ATOMIC, 1.0, 1000.0),
        ]
        b = {"slow": 1.0, "fast": 1.0}
        instance = SchedulingInstance.build(jobs, phones, b, predictor)
        upper = sum(instance.cost("slow", j.job_id) for j in jobs)
        result = GreedyPacker(instance).pack(upper)
        assert result.feasible
        # The big job opens the best (fast) bin first.
        big_assignment = next(
            a for a in result.schedule.assignments if a.job_id == "big"
        )
        assert big_assignment.phone_id == "fast"

    def test_min_partition_kb_validation(self):
        instance = uniform_instance()
        with pytest.raises(ValueError):
            GreedyPacker(instance, min_partition_kb=0.0)


@st.composite
def random_instances(draw):
    n_phones = draw(st.integers(min_value=1, max_value=5))
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    phones = tuple(
        PhoneSpec(
            phone_id=f"p{i}",
            cpu_mhz=draw(st.floats(min_value=500, max_value=2000)),
        )
        for i in range(n_phones)
    )
    slowest = min(phones, key=lambda p: p.cpu_mhz)
    predictor = RuntimePredictor.from_reference_phone(
        slowest, {"t": draw(st.floats(min_value=0.5, max_value=20.0))}
    )
    jobs = [
        Job(
            f"j{i}",
            "t",
            draw(st.sampled_from([JobKind.BREAKABLE, JobKind.ATOMIC])),
            draw(st.floats(min_value=0.0, max_value=100.0)),
            draw(st.floats(min_value=10.0, max_value=5000.0)),
        )
        for i in range(n_jobs)
    ]
    b = {
        p.phone_id: draw(st.floats(min_value=0.5, max_value=70.0)) for p in phones
    }
    return SchedulingInstance.build(jobs, phones, b, predictor)


class TestPackingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(instance=random_instances(), shrink=st.floats(min_value=0.3, max_value=1.0))
    def test_feasible_packings_respect_capacity_and_coverage(
        self, instance, shrink
    ):
        """Whenever the packer claims success the schedule is valid and
        every bin's height is within the capacity."""
        upper = max(
            sum(instance.cost(p.phone_id, j.job_id) for j in instance.jobs)
            for p in instance.phones
        )
        capacity = upper * shrink
        result = GreedyPacker(instance).pack(capacity)
        if not result.feasible:
            return
        schedule = result.schedule
        schedule.validate(instance)
        for phone in instance.phones:
            height = schedule.predicted_finish_ms(instance, phone.phone_id)
            assert height <= capacity + 1e-6
        assert result.max_height_ms <= capacity + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(instance=random_instances())
    def test_packing_at_upper_bound_always_succeeds(self, instance):
        upper = max(
            sum(instance.cost(p.phone_id, j.job_id) for j in instance.jobs)
            for p in instance.phones
        )
        result = GreedyPacker(instance).pack(upper * (1 + 1e-9) + 1e-6)
        assert result.feasible
