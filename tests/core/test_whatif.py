"""Tests for fleet-sizing what-if analysis."""

import pytest

from repro.core.whatif import makespan_by_fleet_size, minimum_fleet_size

from ..conftest import make_instance


def setup_args(seed=2, n_phones=6):
    instance = make_instance(
        n_breakable=8, n_atomic=2, n_phones=n_phones, seed=seed,
        b_range=(1.0, 5.0),
    )
    from repro.core.prediction import RuntimePredictor, TaskProfile

    # Reconstruct a predictor matching the instance's c table.
    predictor = RuntimePredictor(
        {
            "primes": TaskProfile("primes", 10.0, 800.0),
            "blur": TaskProfile("blur", 20.0, 800.0),
        }
    )
    return (
        instance.jobs,
        instance.phones,
        dict(instance.b_ms_per_kb),
        predictor,
    )


class TestMakespanCurve:
    def test_curve_has_requested_sizes(self):
        jobs, phones, b, predictor = setup_args()
        curve = makespan_by_fleet_size(jobs, phones, b, predictor)
        assert set(curve) == set(range(1, len(phones) + 1))
        assert all(value > 0 for value in curve.values())

    def test_full_fleet_not_slower_than_single_phone(self):
        jobs, phones, b, predictor = setup_args()
        curve = makespan_by_fleet_size(jobs, phones, b, predictor)
        assert curve[len(phones)] <= curve[1]

    def test_subset_of_sizes(self):
        jobs, phones, b, predictor = setup_args()
        curve = makespan_by_fleet_size(
            jobs, phones, b, predictor, sizes=(1, 3)
        )
        assert set(curve) == {1, 3}

    def test_bad_size_rejected(self):
        jobs, phones, b, predictor = setup_args()
        with pytest.raises(ValueError):
            makespan_by_fleet_size(jobs, phones, b, predictor, sizes=(0,))
        with pytest.raises(ValueError):
            makespan_by_fleet_size(
                jobs, phones, b, predictor, sizes=(len(phones) + 1,)
            )

    def test_empty_fleet_rejected(self):
        jobs, _, b, predictor = setup_args()
        with pytest.raises(ValueError):
            makespan_by_fleet_size(jobs, (), b, predictor)


class TestMinimumFleetSize:
    def test_loose_deadline_needs_one_phone(self):
        jobs, phones, b, predictor = setup_args()
        curve = makespan_by_fleet_size(jobs, phones, b, predictor, sizes=(1,))
        size = minimum_fleet_size(
            jobs, phones, b, predictor, deadline_ms=curve[1] * 1.01
        )
        assert size == 1

    def test_tight_deadline_needs_more_phones(self):
        jobs, phones, b, predictor = setup_args()
        curve = makespan_by_fleet_size(jobs, phones, b, predictor)
        full = curve[len(phones)]
        size = minimum_fleet_size(
            jobs, phones, b, predictor, deadline_ms=full * 1.5
        )
        assert size is not None
        assert 1 <= size <= len(phones)
        assert curve[size] <= full * 1.5

    def test_impossible_deadline_returns_none(self):
        jobs, phones, b, predictor = setup_args()
        assert (
            minimum_fleet_size(jobs, phones, b, predictor, deadline_ms=0.001)
            is None
        )

    def test_deadline_validation(self):
        jobs, phones, b, predictor = setup_args()
        with pytest.raises(ValueError):
            minimum_fleet_size(jobs, phones, b, predictor, deadline_ms=0.0)
