"""Unit tests for the CPU-scaling runtime predictor (Section 4.1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile

REF = PhoneSpec(phone_id="ref", cpu_mhz=806.0)
FAST = PhoneSpec(phone_id="fast", cpu_mhz=1612.0)


class TestTaskProfile:
    def test_scaling_halves_time_at_double_clock(self):
        profile = TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=806.0)
        assert profile.scaled_ms_per_kb(1612.0) == pytest.approx(5.0)

    def test_scaling_identity_at_reference(self):
        profile = TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=806.0)
        assert profile.scaled_ms_per_kb(806.0) == pytest.approx(10.0)

    def test_expected_speedup_is_clock_ratio(self):
        profile = TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=806.0)
        assert profile.expected_speedup(1209.0) == pytest.approx(1.5)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan])
    def test_bad_base_time_rejected(self, bad):
        with pytest.raises(ValueError):
            TaskProfile(task="t", base_ms_per_kb=bad, base_mhz=806.0)

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            TaskProfile(task="t", base_ms_per_kb=1.0, base_mhz=0.0)

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            TaskProfile(task="", base_ms_per_kb=1.0, base_mhz=806.0)

    def test_scaled_rejects_bad_clock(self):
        profile = TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=806.0)
        with pytest.raises(ValueError):
            profile.scaled_ms_per_kb(0.0)

    @given(mhz=st.floats(min_value=100, max_value=5000))
    def test_time_and_speedup_are_inverse(self, mhz):
        profile = TaskProfile(task="t", base_ms_per_kb=10.0, base_mhz=806.0)
        time = profile.scaled_ms_per_kb(mhz)
        speedup = profile.expected_speedup(mhz)
        assert time * speedup == pytest.approx(profile.base_ms_per_kb)


class TestRuntimePredictor:
    def make(self, alpha=0.5):
        return RuntimePredictor.from_reference_phone(
            REF, {"primes": 10.0, "blur": 20.0}, alpha=alpha
        )

    def test_initial_prediction_scales_by_clock(self):
        predictor = self.make()
        assert predictor.predict_ms_per_kb(FAST, "primes") == pytest.approx(5.0)
        assert predictor.predict_ms_per_kb(REF, "blur") == pytest.approx(20.0)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError, match="wordcount"):
            self.make().predict_ms_per_kb(REF, "wordcount")

    def test_observe_moves_estimate_toward_measurement(self):
        predictor = self.make(alpha=0.5)
        updated = predictor.observe(FAST, "primes", 9.0)
        # old 5.0, measured 9.0, alpha 0.5 -> 7.0
        assert updated == pytest.approx(7.0)
        assert predictor.predict_ms_per_kb(FAST, "primes") == pytest.approx(7.0)

    def test_alpha_one_replaces(self):
        predictor = self.make(alpha=1.0)
        predictor.observe(FAST, "primes", 9.0)
        assert predictor.predict_ms_per_kb(FAST, "primes") == pytest.approx(9.0)

    def test_alpha_zero_never_learns(self):
        predictor = self.make(alpha=0.0)
        predictor.observe(FAST, "primes", 9.0)
        assert predictor.predict_ms_per_kb(FAST, "primes") == pytest.approx(5.0)

    def test_observation_is_per_phone(self):
        predictor = self.make(alpha=1.0)
        predictor.observe(FAST, "primes", 9.0)
        assert predictor.predict_ms_per_kb(REF, "primes") == pytest.approx(10.0)

    def test_observation_is_per_task(self):
        predictor = self.make(alpha=1.0)
        predictor.observe(FAST, "primes", 9.0)
        assert predictor.predict_ms_per_kb(FAST, "blur") == pytest.approx(10.0)

    def test_bad_measurement_rejected(self):
        predictor = self.make()
        with pytest.raises(ValueError):
            predictor.observe(FAST, "primes", 0.0)
        with pytest.raises(ValueError):
            predictor.observe(FAST, "primes", math.inf)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            self.make(alpha=1.5)

    def test_forget_one_phone(self):
        predictor = self.make(alpha=1.0)
        predictor.observe(FAST, "primes", 9.0)
        predictor.observe(REF, "primes", 12.0)
        predictor.forget(FAST.phone_id)
        assert predictor.predict_ms_per_kb(FAST, "primes") == pytest.approx(5.0)
        assert predictor.predict_ms_per_kb(REF, "primes") == pytest.approx(12.0)

    def test_forget_all(self):
        predictor = self.make(alpha=1.0)
        predictor.observe(FAST, "primes", 9.0)
        predictor.forget()
        assert not predictor.learned_pairs()

    def test_learned_pairs_snapshot_is_copy(self):
        predictor = self.make(alpha=1.0)
        predictor.observe(FAST, "primes", 9.0)
        snapshot = predictor.learned_pairs()
        snapshot.clear()
        assert predictor.learned_pairs()

    def test_tasks_property(self):
        assert self.make().tasks == frozenset({"primes", "blur"})

    @given(
        measurements=st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20
        ),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_estimate_stays_within_observed_envelope(self, measurements, alpha):
        """EWMA never leaves the convex hull of {initial} ∪ measurements."""
        predictor = RuntimePredictor.from_reference_phone(
            REF, {"primes": 10.0}, alpha=alpha
        )
        low = min(measurements + [10.0])
        high = max(measurements + [10.0])
        for m in measurements:
            estimate = predictor.observe(REF, "primes", m)
            assert low - 1e-9 <= estimate <= high + 1e-9
