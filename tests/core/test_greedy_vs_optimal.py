"""Greedy vs brute-force optimal on instances small enough to enumerate.

The LP relaxation (Fig. 13) gives a *loose* lower bound; for tiny
atomic-only instances we can compute the true optimum by enumerating
every job→phone assignment and check how close Algorithm 1 lands.
These tests pin down the heuristic's quality where ground truth is
computable: never below the optimum, and within a small constant factor
of it across randomised instances.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor


def atomic_instance(n_jobs, n_phones, seed):
    rng = random.Random(seed)
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=rng.uniform(600, 2000))
        for i in range(n_phones)
    )
    slowest = min(phones, key=lambda p: p.cpu_mhz)
    predictor = RuntimePredictor.from_reference_phone(
        slowest, {"t": rng.uniform(1.0, 20.0)}
    )
    jobs = tuple(
        Job(
            f"j{i}",
            "t",
            JobKind.ATOMIC,
            rng.uniform(0.0, 50.0),
            rng.uniform(50.0, 1000.0),
        )
        for i in range(n_jobs)
    )
    b = {p.phone_id: rng.uniform(0.5, 30.0) for p in phones}
    return SchedulingInstance.build(jobs, phones, b, predictor)


def brute_force_optimal_makespan(instance):
    """Enumerate every assignment of atomic jobs to phones."""
    phone_ids = [p.phone_id for p in instance.phones]
    best = float("inf")
    for assignment in itertools.product(phone_ids, repeat=len(instance.jobs)):
        loads = dict.fromkeys(phone_ids, 0.0)
        for job, phone_id in zip(instance.jobs, assignment):
            loads[phone_id] += instance.cost(phone_id, job.job_id)
        best = min(best, max(loads.values()))
    return best


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_below_optimal(self, seed):
        instance = atomic_instance(n_jobs=4, n_phones=3, seed=seed)
        greedy = CwcScheduler().schedule(instance)
        makespan = greedy.predicted_makespan_ms(instance)
        optimal = brute_force_optimal_makespan(instance)
        assert makespan >= optimal - 1e-6

    @pytest.mark.parametrize("seed", range(8))
    def test_within_two_of_optimal(self, seed):
        """Classic list-scheduling quality: greedy stays within 2x of
        the true optimum on every sampled instance (empirically it is
        usually exactly optimal at this size)."""
        instance = atomic_instance(n_jobs=4, n_phones=3, seed=seed)
        greedy = CwcScheduler().schedule(instance)
        makespan = greedy.predicted_makespan_ms(instance)
        optimal = brute_force_optimal_makespan(instance)
        assert makespan <= 2.0 * optimal + 1e-6

    def test_single_job_is_exactly_optimal(self):
        instance = atomic_instance(n_jobs=1, n_phones=3, seed=99)
        greedy = CwcScheduler().schedule(instance)
        assert greedy.predicted_makespan_ms(instance) == pytest.approx(
            brute_force_optimal_makespan(instance), rel=1e-9
        )

    def test_identical_jobs_on_identical_phones_is_optimal(self):
        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(3)
        )
        predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 2.0})
        jobs = tuple(
            Job(f"j{i}", "t", JobKind.ATOMIC, 10.0, 100.0) for i in range(6)
        )
        instance = SchedulingInstance.build(
            jobs, phones, {p.phone_id: 1.0 for p in phones}, predictor
        )
        greedy = CwcScheduler().schedule(instance)
        makespan = greedy.predicted_makespan_ms(instance)
        # Optimal: 2 jobs per phone.
        per_job = 10.0 * 1.0 + 100.0 * (1.0 + 2.0)
        assert makespan == pytest.approx(2 * per_job, rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_jobs=st.integers(min_value=1, max_value=5),
        n_phones=st.integers(min_value=1, max_value=3),
    )
    def test_sandwich_property(self, seed, n_jobs, n_phones):
        instance = atomic_instance(n_jobs=n_jobs, n_phones=n_phones, seed=seed)
        greedy = CwcScheduler().schedule(instance)
        makespan = greedy.predicted_makespan_ms(instance)
        optimal = brute_force_optimal_makespan(instance)
        assert optimal - 1e-6 <= makespan <= 2.0 * optimal + 1e-6
