"""Tests for the LP-relaxation lower bound (Fig. 13 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.lp_bound import solve_relaxed_makespan
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor

from ..conftest import make_instance


def simple_instance(n_phones=2, jobs=None):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(n_phones)
    )
    predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
    jobs = jobs or [Job("j0", "t", JobKind.BREAKABLE, 0.0, 100.0)]
    b = {p.phone_id: 1.0 for p in phones}
    return SchedulingInstance.build(jobs, phones, b, predictor)


class TestAnalyticCases:
    def test_single_phone_single_job_exact(self):
        """One phone, no executable: bound equals L * (b + c)."""
        instance = simple_instance(n_phones=1)
        solution = solve_relaxed_makespan(instance)
        assert solution.makespan_ms == pytest.approx(200.0, rel=1e-6)

    def test_two_identical_phones_halve_the_work(self):
        instance = simple_instance(n_phones=2)
        solution = solve_relaxed_makespan(instance)
        assert solution.makespan_ms == pytest.approx(100.0, rel=1e-6)

    def test_executable_cost_included_when_whole(self):
        """Single phone: u must be 1, so the exe term is fully paid."""
        jobs = [Job("j0", "t", JobKind.BREAKABLE, 50.0, 100.0)]
        instance = simple_instance(n_phones=1, jobs=jobs)
        solution = solve_relaxed_makespan(instance)
        # 50*1 + 100*(1+1) = 250
        assert solution.makespan_ms == pytest.approx(250.0, rel=1e-6)

    def test_atomic_u_sums_to_one(self):
        jobs = [Job("a0", "t", JobKind.ATOMIC, 10.0, 100.0)]
        instance = simple_instance(n_phones=3, jobs=jobs)
        solution = solve_relaxed_makespan(instance)
        assert solution.u.sum(axis=0)[0] == pytest.approx(1.0, abs=1e-6)

    def test_heterogeneous_bandwidth_shifts_load(self):
        phones = (
            PhoneSpec(phone_id="fast", cpu_mhz=1000.0),
            PhoneSpec(phone_id="slow", cpu_mhz=1000.0),
        )
        predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
        jobs = [Job("j0", "t", JobKind.BREAKABLE, 0.0, 100.0)]
        instance = SchedulingInstance.build(
            jobs, phones, {"fast": 1.0, "slow": 9.0}, predictor
        )
        solution = solve_relaxed_makespan(instance)
        fast_index = [p.phone_id for p in instance.phones].index("fast")
        fast_share = solution.l_kb[fast_index, 0]
        assert fast_share > 50.0  # the fast link takes the majority


class TestBoundProperties:
    def test_coverage_constraint_satisfied(self, small_instance):
        solution = solve_relaxed_makespan(small_instance)
        totals = solution.l_kb.sum(axis=0)
        for j, job in enumerate(small_instance.jobs):
            assert totals[j] == pytest.approx(job.input_kb, rel=1e-6)

    def test_linking_constraint_satisfied(self, small_instance):
        solution = solve_relaxed_makespan(small_instance)
        for i in range(len(small_instance.phones)):
            for j, job in enumerate(small_instance.jobs):
                assert (
                    solution.l_kb[i, j]
                    <= job.input_kb * solution.u[i, j] + 1e-6
                )

    def test_bound_below_greedy(self):
        for seed in (2, 5, 19, 77):
            instance = make_instance(seed=seed)
            greedy = CwcScheduler().schedule(instance)
            makespan = greedy.predicted_makespan_ms(instance)
            bound = solve_relaxed_makespan(instance).makespan_ms
            assert bound <= makespan + 1e-6

    def test_variables_within_bounds(self, small_instance):
        solution = solve_relaxed_makespan(small_instance)
        assert np.all(solution.u >= -1e-9)
        assert np.all(solution.u <= 1.0 + 1e-9)
        assert np.all(solution.l_kb >= -1e-6)

    def test_makespan_positive(self, small_instance):
        assert solve_relaxed_makespan(small_instance).makespan_ms > 0


class TestBoundPropertyRandomised:
    """The LP bound must sit below the greedy makespan on any instance."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_phones=st.integers(min_value=1, max_value=5),
        n_breakable=st.integers(min_value=1, max_value=5),
        n_atomic=st.integers(min_value=0, max_value=3),
    )
    def test_bound_below_greedy_random_instances(
        self, seed, n_phones, n_breakable, n_atomic
    ):
        instance = make_instance(
            seed=seed,
            n_phones=n_phones,
            n_breakable=n_breakable,
            n_atomic=n_atomic,
        )
        greedy = CwcScheduler().schedule(instance)
        makespan = greedy.predicted_makespan_ms(instance)
        bound = solve_relaxed_makespan(instance).makespan_ms
        assert bound <= makespan * (1 + 1e-9) + 1e-6
