"""End-to-end tests for the CWC greedy scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import EqualSplitScheduler, RoundRobinScheduler
from repro.core.greedy import CwcScheduler, Scheduler
from repro.core.lp_bound import solve_relaxed_makespan

from ..conftest import make_instance


class TestCwcScheduler:
    def test_produces_valid_schedule(self, small_instance):
        schedule = CwcScheduler().schedule(small_instance)
        schedule.validate(small_instance)

    def test_implements_protocol(self):
        assert isinstance(CwcScheduler(), Scheduler)
        assert CwcScheduler().name == "cwc-greedy"

    def test_last_result_populated(self, small_instance):
        scheduler = CwcScheduler()
        assert scheduler.last_result is None
        scheduler.schedule(small_instance)
        assert scheduler.last_result is not None
        assert scheduler.last_result.iterations >= 1

    def test_beats_baselines_on_heterogeneous_fleet(self):
        instance = make_instance(
            n_breakable=10, n_atomic=5, n_phones=6, seed=42
        )
        greedy = CwcScheduler().schedule(instance)
        greedy_makespan = greedy.predicted_makespan_ms(instance)
        for baseline in (EqualSplitScheduler(), RoundRobinScheduler()):
            other = baseline.schedule(instance)
            assert other.predicted_makespan_ms(instance) >= greedy_makespan * 0.99

    def test_respects_lp_lower_bound(self):
        for seed in (1, 7, 23):
            instance = make_instance(seed=seed)
            schedule = CwcScheduler().schedule(instance)
            makespan = schedule.predicted_makespan_ms(instance)
            bound = solve_relaxed_makespan(instance).makespan_ms
            assert makespan >= bound - 1e-6

    def test_single_phone_everything_on_it(self, single_phone_instance):
        schedule = CwcScheduler().schedule(single_phone_instance)
        schedule.validate(single_phone_instance)
        assert set(a.phone_id for a in schedule) == {"p0"}

    def test_prefers_whole_placements(self):
        """With ample parallel capacity, most jobs should stay unsplit
        (the paper reports ~90% on its workload)."""
        instance = make_instance(
            n_breakable=20, n_atomic=10, n_phones=8, seed=5
        )
        schedule = CwcScheduler().schedule(instance)
        assert schedule.unsplit_fraction() >= 0.6

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_always_valid_on_random_instances(self, seed):
        instance = make_instance(seed=seed)
        schedule = CwcScheduler().schedule(instance)
        schedule.validate(instance)

    def test_atomic_only_workload(self):
        instance = make_instance(n_breakable=0, n_atomic=6, seed=11)
        schedule = CwcScheduler().schedule(instance)
        schedule.validate(instance)
        assert all(count == 0 for count in schedule.partition_counts().values())

    def test_load_is_balanced(self):
        """No phone should finish wildly after the others when jobs are
        plentiful and divisible."""
        instance = make_instance(
            n_breakable=12, n_atomic=0, n_phones=4, seed=2, b_range=(1.0, 3.0)
        )
        schedule = CwcScheduler().schedule(instance)
        finishes = [
            schedule.predicted_finish_ms(instance, p.phone_id)
            for p in instance.phones
        ]
        busy = [f for f in finishes if f > 0]
        assert max(busy) <= min(busy) * 2.0 + 1.0


class TestSchedulerComparisons:
    def test_equal_split_splits_everything_breakable(self, small_instance):
        schedule = EqualSplitScheduler().schedule(small_instance)
        counts = schedule.partition_counts()
        for job in small_instance.breakable_jobs():
            assert counts[job.job_id] == len(small_instance.phones)

    def test_round_robin_never_splits(self, small_instance):
        schedule = RoundRobinScheduler().schedule(small_instance)
        assert all(c == 0 for c in schedule.partition_counts().values())
