"""Golden-schedule equivalence: optimised hot path vs frozen reference.

The PR-2 scheduler overhaul (dense cost arrays, incremental packing,
certificates, warm starts) and the PR-3 dual-kernel search (vectorized
:class:`~repro.core.packing_vec.VectorGreedyPacker`, feasibility
certificates, verdict-only probes) are required to be pure performance
changes: on any instance, and under *both* packing kernels, the
optimised :class:`~repro.core.capacity.CapacitySearch` must produce
schedules *byte-identical* to the pre-optimisation implementation,
which is preserved verbatim in :mod:`repro.core._reference`.  Schedules
are compared through :func:`repro.core.serialize.schedule_to_dict`,
i.e. every assignment's phone, job, task, partition size, and
wholeness.
"""

import random

import pytest

from repro.core._reference import (
    ReferenceCapacitySearch,
    ReferenceGreedyPacker,
    reference_capacity_bounds,
)
from repro.core.capacity import CapacitySearch, capacity_bounds
from repro.core.constraints import RamConstraint
from repro.core.instance import SchedulingInstance
from repro.core.packing import GreedyPacker
from repro.core.prediction import RuntimePredictor
from repro.core.serialize import schedule_to_dict
from repro.netmodel.measurement import measure_fleet
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)

from ..conftest import make_instance


def paper_instance():
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    b = measure_fleet(testbed.links)
    return SchedulingInstance.build(
        evaluation_workload(), testbed.phones, b, predictor
    )


def random_fleet_instance(n_phones=200, n_jobs=80, seed=424):
    return make_instance(
        n_breakable=n_jobs * 2 // 3,
        n_atomic=n_jobs - n_jobs * 2 // 3,
        n_phones=n_phones,
        seed=seed,
    )


def assert_search_equivalent(instance, *, kernel="auto", **search_kwargs):
    optimised = CapacitySearch(kernel=kernel, **search_kwargs).run(instance)
    reference = ReferenceCapacitySearch(**search_kwargs).run(instance)
    assert schedule_to_dict(optimised.schedule) == schedule_to_dict(
        reference.schedule
    )
    assert optimised.capacity_ms == reference.capacity_ms
    assert optimised.max_height_ms == reference.max_height_ms
    assert optimised.lower_bound_ms == reference.lower_bound_ms
    assert optimised.upper_bound_ms == reference.upper_bound_ms


KERNELS = ("python", "numpy")


def test_bounds_identical_on_paper_testbed():
    instance = paper_instance()
    assert capacity_bounds(instance) == reference_capacity_bounds(instance)


def test_bounds_identical_on_random_fleet():
    instance = random_fleet_instance()
    assert capacity_bounds(instance) == reference_capacity_bounds(instance)


@pytest.mark.parametrize("kernel", KERNELS)
def test_search_identical_on_paper_testbed(kernel):
    assert_search_equivalent(paper_instance(), kernel=kernel)


@pytest.mark.parametrize("kernel", KERNELS)
def test_search_identical_on_200_phone_fleet(kernel):
    assert_search_equivalent(random_fleet_instance(), kernel=kernel)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", range(25))
def test_search_identical_on_random_instances(seed, kernel):
    rng = random.Random(seed)
    instance = make_instance(
        n_breakable=rng.randint(2, 14),
        n_atomic=rng.randint(0, 6),
        n_phones=rng.randint(2, 16),
        seed=seed,
    )
    assert_search_equivalent(instance, kernel=kernel)


@pytest.mark.parametrize("kernel", KERNELS)
def test_search_identical_with_custom_partition_and_ram(kernel):
    instance = random_fleet_instance(n_phones=24, n_jobs=30, seed=77)
    # Large enough that every atomic job still fits somewhere, small
    # enough that breakable partitions actually get clamped.
    ram = RamConstraint(
        {phone.phone_id: 2_200.0 for phone in instance.phones}
    )
    assert_search_equivalent(
        instance, kernel=kernel, min_partition_kb=25.0, ram=ram
    )


@pytest.mark.parametrize("seed", range(8))
def test_single_packs_identical_across_capacities(seed):
    """The packers agree pack-by-pack, not just end-to-end."""
    instance = make_instance(
        n_breakable=6, n_atomic=3, n_phones=5, seed=seed
    )
    lower, upper = capacity_bounds(instance)
    optimised = GreedyPacker(instance)
    reference = ReferenceGreedyPacker(instance)
    for k in range(12):
        capacity = lower + (upper * 1.1 - lower) * k / 11.0
        a = optimised.pack(capacity)
        b = reference.pack(capacity)
        assert a.feasible == b.feasible, capacity
        assert a.max_height_ms == b.max_height_ms
        assert a.opened_bins == b.opened_bins
        if a.feasible:
            assert schedule_to_dict(a.schedule) == schedule_to_dict(
                b.schedule
            )


def test_warm_start_matches_cold_schedule():
    """Warm-started searches return the cold search's exact schedule."""
    instance = random_fleet_instance(n_phones=40, n_jobs=36, seed=5)
    tail_jobs = instance.jobs[:9]
    tail = SchedulingInstance(
        jobs=tail_jobs,
        phones=instance.phones,
        b_ms_per_kb=instance.b_ms_per_kb,
        c_ms_per_kb={
            (phone.phone_id, job.job_id): instance.c(
                phone.phone_id, job.job_id
            )
            for phone in instance.phones
            for job in tail_jobs
        },
    )
    search = CapacitySearch()
    first = search.run(instance)
    cold = search.run(tail)
    warm = search.run(tail, warm_hint_ms=first.capacity_ms)
    assert warm.warm_start_used
    assert schedule_to_dict(warm.schedule) == schedule_to_dict(cold.schedule)
    assert warm.capacity_ms == cold.capacity_ms
    assert warm.bisection_steps == cold.bisection_steps
    assert warm.packer_passes < cold.packer_passes


# ---------------------------------------------------------------------------
# pluggable policies on the golden instances
# ---------------------------------------------------------------------------


POLICY_NAMES = (
    "cwc-greedy",
    "replication",
    "energy-aware",
    "shortest-expected",
)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_every_policy_valid_on_paper_testbed(policy_name):
    """Each pluggable policy schedules the golden paper instance.

    The schedules must validate and be run-to-run deterministic; the
    default policy must additionally stay byte-identical to the frozen
    reference search — policies are competitors, but ``cwc-greedy``
    remains the paper's scheduler, bit for bit.
    """
    from repro.core.policies import make_policy

    instance = paper_instance()
    policy = make_policy(policy_name)
    schedule = policy.schedule(instance)
    schedule.validate(instance)
    rerun = make_policy(policy_name).schedule(instance)
    assert schedule_to_dict(schedule) == schedule_to_dict(rerun)
    if policy_name == "cwc-greedy":
        reference = ReferenceCapacitySearch().run(instance)
        assert schedule_to_dict(schedule) == schedule_to_dict(
            reference.schedule
        )


@pytest.mark.parametrize("kernel", KERNELS)
def test_default_policy_search_kwargs_stay_golden(kernel):
    """make_policy forwards search kwargs without perturbing output."""
    from repro.core.policies import make_policy

    instance = random_fleet_instance(n_phones=30, n_jobs=24, seed=9)
    via_policy = make_policy("cwc-greedy", kernel=kernel).schedule(instance)
    reference = ReferenceCapacitySearch().run(instance)
    assert schedule_to_dict(via_policy) == schedule_to_dict(
        reference.schedule
    )
