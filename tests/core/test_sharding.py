"""Tests for the sharded pod-parallel scheduler (core/sharding.py)."""

import json
import zlib

import numpy as np
import pytest

from repro.core.capacity import CapacitySearch, available_cpus
from repro.core.greedy import CwcScheduler
from repro.core.pod import (
    PodSpec,
    assemble_schedule,
    default_pod_workers,
    partition_phones,
    pod_instance,
    pod_rate_tables,
    resolve_pod_count,
    solve_pod,
)
from repro.core.serialize import schedule_to_dict
from repro.core.sharding import (
    ShardedScheduler,
    _assign_greedy,
    _assign_hash,
)

from ..conftest import make_instance


def canonical(schedule) -> str:
    return json.dumps(schedule_to_dict(schedule), sort_keys=True)


@pytest.fixture
def fleet_instance():
    """A fleet big enough to cut into 4 pods of 3+ phones."""
    return make_instance(n_phones=12, n_breakable=14, n_atomic=4, seed=9)


class TestPodMechanics:
    def test_partition_phones_round_robin(self):
        assert partition_phones(5, 2) == ((0, 2, 4), (1, 3))

    def test_partition_phones_single_pod(self):
        assert partition_phones(3, 1) == ((0, 1, 2),)

    def test_partition_phones_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            partition_phones(3, 4)
        with pytest.raises(ValueError):
            partition_phones(3, 0)

    def test_resolve_pod_count_clamps_to_fleet(self):
        assert resolve_pod_count(8, 3) == 3
        assert resolve_pod_count(2, 100) == 2
        with pytest.raises(ValueError):
            resolve_pod_count(0, 4)

    def test_resolve_pod_count_auto_honours_repro_cpus(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "3")
        # 12 phones / 4-phone floor = 3 pods, matching the CPU budget.
        assert resolve_pod_count("auto", 12) == 3
        # A tiny fleet never shards, whatever the CPU count says.
        assert resolve_pod_count("auto", 5) == 1

    def test_available_cpus_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "7")
        assert available_cpus() == 7
        assert default_pod_workers(3) == 3
        assert default_pod_workers(10) == 7

    def test_available_cpus_ignores_bad_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "zero")
        assert available_cpus() >= 1
        monkeypatch.setenv("REPRO_CPUS", "-2")
        assert available_cpus() >= 1

    def test_pod_instance_slices_costs(self, fleet_instance):
        phones = (1, 5, 9)
        jobs = (0, 3, 7)
        sub = pod_instance(fleet_instance, phones, jobs)
        assert [p.phone_id for p in sub.phones] == [
            fleet_instance.phones[i].phone_id for i in phones
        ]
        for si, fi in enumerate(phones):
            phone = fleet_instance.phones[fi]
            assert sub.b(phone.phone_id) == fleet_instance.b(phone.phone_id)
            for sj, fj in enumerate(jobs):
                job = fleet_instance.jobs[fj]
                assert sub.c(phone.phone_id, job.job_id) == pytest.approx(
                    fleet_instance.c(phone.phone_id, job.job_id)
                )

    def test_pod_rate_tables_match_bruteforce(self, fleet_instance):
        pods = partition_phones(len(fleet_instance.phones), 3)
        bmin, cmin, agg = pod_rate_tables(
            fleet_instance, pods, block_rows=5
        )
        b = fleet_instance.b_array()
        c = fleet_instance.c_matrix()
        for p, members in enumerate(pods):
            idx = np.asarray(members)
            assert bmin[p] == pytest.approx(b[idx].min())
            rate = b[idx, None] + c[idx]
            np.testing.assert_allclose(cmin[p], rate.min(axis=0))
            inv = np.where(rate > 0, 1.0 / rate, 0.0)
            np.testing.assert_allclose(agg[p], inv.sum(axis=0))

    def test_solve_pod_keeps_array_pool_clean(self, fleet_instance):
        search = CapacitySearch(kernel="numpy")
        spec = PodSpec(
            index=0,
            phone_positions=tuple(range(6)),
            job_positions=tuple(range(len(fleet_instance.jobs))),
        )
        report = solve_pod(fleet_instance, spec, search)
        assert report.leaked_buffers == 0
        assert search.array_pool.leaked_buffers() == 0
        # A second solve on the same search recycles buffers.
        again = solve_pod(fleet_instance, spec, search)
        assert again.pool_hits > report.pool_hits

    def test_assemble_schedule_orders_by_pod_index(self, fleet_instance):
        search = CapacitySearch()
        pods = partition_phones(len(fleet_instance.phones), 2)
        jobs = tuple(range(len(fleet_instance.jobs)))
        half = len(jobs) // 2
        specs = [
            PodSpec(index=1, phone_positions=pods[1], job_positions=jobs[half:]),
            PodSpec(index=0, phone_positions=pods[0], job_positions=jobs[:half]),
        ]
        reports = [solve_pod(fleet_instance, s, search) for s in specs]
        schedule = assemble_schedule(reports)
        schedule.validate(fleet_instance)
        first_job = next(iter(schedule)).job_id
        assert first_job in {
            fleet_instance.jobs[j].job_id for j in jobs[:half]
        }


class TestShardedScheduler:
    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            ShardedScheduler(pod_assign="roulette")
        with pytest.raises(ValueError):
            ShardedScheduler(pods=0)
        with pytest.raises(ValueError):
            ShardedScheduler(pod_workers=0)
        with pytest.raises(ValueError):
            ShardedScheduler(rebalance_rounds=-1)

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_pods1_byte_identical_to_monolithic(self, fleet_instance, kernel):
        mono = CwcScheduler(kernel=kernel).schedule(fleet_instance)
        sharded = ShardedScheduler(pods=1, kernel=kernel).schedule(
            fleet_instance
        )
        assert canonical(sharded) == canonical(mono)

    def test_small_fleet_auto_resolves_to_monolithic(self, small_instance):
        scheduler = ShardedScheduler(pods="auto")
        schedule = scheduler.schedule(small_instance)
        schedule.validate(small_instance)
        assert scheduler.last_result.pods == 1
        assert scheduler.last_result.pod_assign == "none"

    @pytest.mark.parametrize("policy", ["lp", "greedy", "hash"])
    def test_policies_produce_valid_certified_schedules(
        self, fleet_instance, policy
    ):
        scheduler = ShardedScheduler(
            pods=3, pod_assign=policy, pod_workers=None
        )
        schedule = scheduler.schedule(fleet_instance)
        schedule.validate(fleet_instance)
        result = scheduler.last_result
        assert result.pods == 3
        assert result.pod_assign == policy
        assert result.pod_solve_ms_max <= result.pod_solve_ms_sum
        assert len(result.pod_reports) >= 2
        makespan = schedule.predicted_makespan_ms(fleet_instance)
        assert makespan == pytest.approx(result.max_height_ms)
        # The pod LP certifies the sandwich: floor <= makespan.
        assert result.lp_floor_ms is not None
        assert makespan >= result.lp_floor_ms * (1 - 1e-9)
        assert result.shard_bound_ratio >= 1.0 - 1e-9

    def test_deterministic_across_repeat_solves(self, fleet_instance):
        first = ShardedScheduler(pods=3, pod_workers=None).schedule(
            fleet_instance
        )
        second = ShardedScheduler(pods=3, pod_workers=None).schedule(
            fleet_instance
        )
        assert canonical(first) == canonical(second)

    def test_hash_policy_is_crc32(self, fleet_instance):
        assignment = _assign_hash(fleet_instance, 3)
        for j, job in enumerate(fleet_instance.jobs):
            expected = zlib.crc32(job.job_id.encode("utf-8")) % 3
            assert assignment[j] == expected

    def test_greedy_splitter_balances_better_than_worst_case(
        self, fleet_instance
    ):
        pods = partition_phones(len(fleet_instance.phones), 3)
        bmin, _cmin, agg = pod_rate_tables(fleet_instance, pods)
        assignment = _assign_greedy(fleet_instance, bmin, agg)
        assert assignment.shape == (len(fleet_instance.jobs),)
        assert set(np.unique(assignment)) <= {0, 1, 2}
        # Every pod gets some work on this mixed workload.
        assert len(np.unique(assignment)) == 3

    def test_rebalance_never_hurts_capacity(self, fleet_instance):
        base = ShardedScheduler(
            pods=3, pod_assign="hash", rebalance_rounds=0, pod_workers=None
        )
        base.schedule(fleet_instance)
        repaired = ShardedScheduler(
            pods=3, pod_assign="hash", rebalance_rounds=3, pod_workers=None
        )
        schedule = repaired.schedule(fleet_instance)
        schedule.validate(fleet_instance)
        assert (
            repaired.last_result.capacity_ms
            <= base.last_result.capacity_ms + 1e-9
        )
        assert repaired.last_result.rebalance_moves >= 0

    def test_pooled_matches_serial(self, fleet_instance, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "4")
        serial = ShardedScheduler(pods=3, pod_workers=None).schedule(
            fleet_instance
        )
        pooled_scheduler = ShardedScheduler(pods=3, pod_workers=2)
        pooled = pooled_scheduler.schedule(fleet_instance)
        assert canonical(pooled) == canonical(serial)
        for report in pooled_scheduler.last_result.pod_reports:
            assert report.leaked_buffers == 0

    def test_warm_state_round_trip(self, fleet_instance):
        warm = ShardedScheduler(
            pods=3, warm_start=True, pod_workers=None
        )
        baseline = warm.schedule(fleet_instance)
        state = warm.warm_state()
        # JSON-safe: survives a serialisation round trip.
        state = json.loads(json.dumps(state))
        assert set(state) == {
            "warm_start", "last_capacity_ms", "pod_capacities"
        }
        restored = ShardedScheduler(
            pods=3, warm_start=True, pod_workers=None
        )
        restored.restore_warm_state(state)
        rerun = restored.schedule(fleet_instance)
        assert canonical(rerun) == canonical(baseline)
        assert restored.last_result.warm_start_used

    def test_restore_warm_state_rejects_negative_capacity(self):
        scheduler = ShardedScheduler(pods=2)
        with pytest.raises(ValueError):
            scheduler.restore_warm_state(
                {"last_capacity_ms": None, "pod_capacities": {"0": -5.0}}
            )

    def test_stats_accumulate_over_rounds(self, fleet_instance):
        scheduler = ShardedScheduler(pods=2, pod_workers=None)
        scheduler.schedule(fleet_instance)
        scheduler.schedule(fleet_instance)
        assert scheduler.stats.rounds == 2
        assert scheduler.stats.packer_passes > 0

    def test_certify_off_skips_lp_floor(self, fleet_instance):
        scheduler = ShardedScheduler(
            pods=2, certify=False, pod_workers=None
        )
        scheduler.schedule(fleet_instance)
        assert scheduler.last_result.lp_floor_ms is None
        # The diagnostic ratio still reports against the bisection floor.
        assert scheduler.last_result.shard_bound_ratio > 0.0

    def test_telemetry_labels_per_pod(self, fleet_instance):
        from repro.obs import Telemetry

        telemetry = Telemetry.create(run_id="sharded-test")
        scheduler = ShardedScheduler(
            pods=2, pod_workers=None, telemetry=telemetry
        )
        scheduler.schedule(fleet_instance)
        registry = telemetry.registry
        pods_seen = {
            labels["pod"] for labels in registry.series_labels("pod_solve_ms")
        }
        assert pods_seen == {"0", "1"}
        assert registry.gauge_value("shard_bound_ratio") is not None
        assert registry.gauge_value("shard_pods") == 2.0
        assert registry.counter_value("pod_jobs_total", pod="0") > 0


class TestPolicyRejection:
    """Satellite guarantee: pods only ever run the paper's scheduler."""

    def test_non_default_policy_rejected_with_guidance(self):
        with pytest.raises(ValueError) as excinfo:
            ShardedScheduler(pods=2, policy="energy-aware")
        message = str(excinfo.value)
        assert "cwc-greedy" in message
        assert "energy-aware" in message
        assert "make_policy" in message

    def test_default_policy_accepted_explicitly(self):
        scheduler = ShardedScheduler(pods=2, policy="cwc-greedy")
        assert scheduler.name == "cwc-sharded"
        assert scheduler.last_replicas == ()
