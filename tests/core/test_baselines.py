"""Tests for the equal-split and round-robin baseline schedulers."""

import pytest

from repro.core.baselines import EqualSplitScheduler, RoundRobinScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor

from ..conftest import make_instance, make_phones, make_predictor


class TestEqualSplit:
    def test_valid_schedule(self, small_instance):
        schedule = EqualSplitScheduler().schedule(small_instance)
        schedule.validate(small_instance)

    def test_breakable_split_into_p_pieces(self, small_instance):
        schedule = EqualSplitScheduler().schedule(small_instance)
        n_phones = len(small_instance.phones)
        for job in small_instance.breakable_jobs():
            pieces = [a for a in schedule if a.job_id == job.job_id]
            assert len(pieces) == n_phones
            for piece in pieces:
                assert piece.input_kb == pytest.approx(job.input_kb / n_phones)

    def test_atomic_round_robin(self):
        phones = make_phones(3)
        predictor = make_predictor(phones, {"blur": 5.0})
        jobs = [
            Job(f"a{i}", "blur", JobKind.ATOMIC, 10.0, 100.0) for i in range(5)
        ]
        instance = SchedulingInstance.build(
            jobs, phones, {p.phone_id: 1.0 for p in phones}, predictor
        )
        schedule = EqualSplitScheduler().schedule(instance)
        placements = [
            next(a.phone_id for a in schedule if a.job_id == f"a{i}")
            for i in range(5)
        ]
        assert placements == ["p0", "p1", "p2", "p0", "p1"]

    def test_tiny_job_not_oversplit(self):
        """A job smaller than |P| minimum partitions splits less."""
        phones = make_phones(8)
        predictor = make_predictor(phones, {"primes": 5.0})
        jobs = [Job("tiny", "primes", JobKind.BREAKABLE, 1.0, 3.0)]
        instance = SchedulingInstance.build(
            jobs, phones, {p.phone_id: 1.0 for p in phones}, predictor
        )
        schedule = EqualSplitScheduler().schedule(instance)
        schedule.validate(instance)
        assert len(list(schedule)) <= 3

    def test_min_partition_validation(self):
        with pytest.raises(ValueError):
            EqualSplitScheduler(min_partition_kb=0.0)

    def test_name(self):
        assert EqualSplitScheduler().name == "equal-split"


class TestRoundRobin:
    def test_valid_schedule(self, small_instance):
        schedule = RoundRobinScheduler().schedule(small_instance)
        schedule.validate(small_instance)

    def test_jobs_cycle_through_phones(self, small_instance):
        schedule = RoundRobinScheduler().schedule(small_instance)
        n_phones = len(small_instance.phones)
        for index, job in enumerate(small_instance.jobs):
            assignment = next(a for a in schedule if a.job_id == job.job_id)
            expected_phone = small_instance.phones[index % n_phones].phone_id
            assert assignment.phone_id == expected_phone

    def test_all_assignments_whole(self, small_instance):
        schedule = RoundRobinScheduler().schedule(small_instance)
        assert all(a.whole for a in schedule)

    def test_more_phones_than_jobs(self):
        instance = make_instance(n_breakable=2, n_atomic=0, n_phones=6, seed=4)
        schedule = RoundRobinScheduler().schedule(instance)
        schedule.validate(instance)
        assert len(schedule.phone_ids) == 2

    def test_name(self):
        assert RoundRobinScheduler().name == "round-robin"
