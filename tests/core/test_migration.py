"""Tests for checkpointing and the failed-task list F_A (Section 5)."""

import pytest

from repro.core.migration import Checkpoint, FailedTaskList, FailureKind
from repro.core.model import Job, JobKind


def make_job(job_id="j", kind=JobKind.BREAKABLE, input_kb=1000.0):
    return Job(job_id, "primes", kind, 40.0, input_kb)


def make_checkpoint(job, processed_kb, partition_kb=None):
    return Checkpoint(
        job_id=job.job_id,
        task=job.task,
        phone_id="p0",
        partition_kb=partition_kb or job.input_kb,
        processed_kb=processed_kb,
        partial_result=processed_kb,
        time_ms=100.0,
    )


class TestCheckpoint:
    def test_remaining(self):
        job = make_job()
        cp = make_checkpoint(job, 400.0)
        assert cp.remaining_kb == pytest.approx(600.0)

    def test_processed_beyond_partition_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(
                job_id="j",
                task="t",
                phone_id="p",
                partition_kb=100.0,
                processed_kb=150.0,
                partial_result=None,
                time_ms=0.0,
            )

    def test_negative_processed_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(
                job_id="j",
                task="t",
                phone_id="p",
                partition_kb=100.0,
                processed_kb=-1.0,
                partial_result=None,
                time_ms=0.0,
            )

    def test_zero_partition_rejected(self):
        with pytest.raises(ValueError):
            Checkpoint(
                job_id="j",
                task="t",
                phone_id="p",
                partition_kb=0.0,
                processed_kb=0.0,
                partial_result=None,
                time_ms=0.0,
            )


class TestFailedTaskList:
    def test_starts_empty(self):
        failed = FailedTaskList()
        assert failed.is_empty
        assert len(failed) == 0
        assert failed.drain() == ()

    def test_online_failure_reenqueues_remainder(self):
        failed = FailedTaskList()
        job = make_job()
        failed.record_online_failure(job, make_checkpoint(job, 400.0))
        (resumed,) = failed.drain()
        assert resumed.job_id == job.job_id
        assert resumed.input_kb == pytest.approx(600.0)
        assert resumed.kind == job.kind

    def test_online_failure_saves_partial(self):
        failed = FailedTaskList()
        job = make_job()
        cp = make_checkpoint(job, 400.0)
        failed.record_online_failure(job, cp)
        assert failed.saved_partials(job.job_id) == (cp,)

    def test_fully_processed_checkpoint_adds_no_work(self):
        failed = FailedTaskList()
        job = make_job()
        failed.record_online_failure(job, make_checkpoint(job, job.input_kb))
        assert failed.drain() == ()
        assert failed.saved_partials(job.job_id)  # result still banked

    def test_checkpoint_job_mismatch_rejected(self):
        failed = FailedTaskList()
        job = make_job("j1")
        other = make_job("j2")
        with pytest.raises(ValueError, match="does not match"):
            failed.record_online_failure(other, make_checkpoint(job, 10.0))

    def test_offline_failure_reenqueues_whole_partition(self):
        failed = FailedTaskList()
        job = make_job()
        failed.record_offline_failure(job, 500.0)
        (resumed,) = failed.drain()
        assert resumed.input_kb == pytest.approx(500.0)

    def test_offline_zero_partition_rejected(self):
        failed = FailedTaskList()
        with pytest.raises(ValueError):
            failed.record_offline_failure(make_job(), 0.0)

    def test_pending_is_like_offline(self):
        failed = FailedTaskList()
        job = make_job()
        failed.record_pending(job, 123.0)
        (resumed,) = failed.drain()
        assert resumed.input_kb == pytest.approx(123.0)

    def test_drain_merges_same_job(self):
        failed = FailedTaskList()
        job = make_job(input_kb=1000.0)
        failed.record_offline_failure(job, 200.0)
        failed.record_offline_failure(job, 300.0)
        (resumed,) = failed.drain()
        assert resumed.input_kb == pytest.approx(500.0)

    def test_drain_keeps_distinct_jobs_separate(self):
        failed = FailedTaskList()
        failed.record_offline_failure(make_job("j1"), 200.0)
        failed.record_offline_failure(make_job("j2"), 300.0)
        resumed = {job.job_id: job.input_kb for job in failed.drain()}
        assert resumed == {"j1": pytest.approx(200.0), "j2": pytest.approx(300.0)}

    def test_drain_clears_entries_not_partials(self):
        failed = FailedTaskList()
        job = make_job()
        failed.record_online_failure(job, make_checkpoint(job, 100.0))
        failed.drain()
        assert failed.is_empty
        assert failed.saved_partials(job.job_id)

    def test_atomic_job_keeps_kind_on_resume(self):
        failed = FailedTaskList()
        job = make_job(kind=JobKind.ATOMIC)
        failed.record_online_failure(job, make_checkpoint(job, 250.0))
        (resumed,) = failed.drain()
        assert resumed.is_atomic
        assert resumed.input_kb == pytest.approx(750.0)


def test_failure_kind_values():
    assert FailureKind.ONLINE.value == "online"
    assert FailureKind.OFFLINE.value == "offline"
