"""Dual-kernel parity and the speculative capacity-search machinery.

The vectorized :class:`~repro.core.packing_vec.VectorGreedyPacker` must
agree with the exact scalar :class:`~repro.core.packing.GreedyPacker`
*pack by pack* — same feasibility verdict, same max height, same opened
bins, and byte-identical schedules — on every capacity, not just the
converged one.  On top of kernel parity, this module pins the
capacity-search additions that ride on the kernels: verdict-only
probes, the feasibility/infeasibility certificates (including the
fleet-scale short-circuit the certificates previously missed), the LP
floor, and speculative parallel probing.
"""

import pytest

from repro.core._reference import ReferenceCapacitySearch
from repro.core.capacity import (
    _AUTO_KERNEL_MIN_CELLS,
    CapacitySearch,
    capacity_bounds,
    resolve_kernel,
)
from repro.core.constraints import RamConstraint
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind
from repro.core.packing import GreedyPacker
from repro.core.packing_vec import VectorGreedyPacker
from repro.core.prediction import RuntimePredictor
from repro.core.serialize import schedule_to_dict
from repro.netmodel.measurement import measure_fleet
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)

from ..conftest import make_instance


def paper_instance():
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    b = measure_fleet(testbed.links)
    return SchedulingInstance.build(
        evaluation_workload(), testbed.phones, b, predictor
    )


def capacity_grid(instance, points=12):
    """Capacities straddling the whole bracket, both sides of feasible."""
    lower, upper = capacity_bounds(instance)
    seed = upper * (1.0 + 1e-9) + 1e-9
    return [
        lower * 0.5,
        lower,
        lower * 1.01,
        lower * 1.2,
        lower * 2.0,
        (lower + upper) / 2.0,
        upper * 0.7,
        upper * 0.95,
        upper,
        upper * 1.5,
        seed,
    ][:points]


def assert_pack_parity(instance, capacities, **packer_kwargs):
    scalar = GreedyPacker(instance, **packer_kwargs)
    vector = VectorGreedyPacker(instance, **packer_kwargs)
    for capacity in capacities:
        a = scalar.pack(capacity)
        b = vector.pack(capacity)
        assert a.feasible == b.feasible, capacity
        assert a.max_height_ms == b.max_height_ms, capacity
        assert a.opened_bins == b.opened_bins, capacity
        if a.feasible:
            assert schedule_to_dict(a.schedule) == schedule_to_dict(
                b.schedule
            ), capacity


class TestKernelParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        instance = make_instance(
            n_breakable=14, n_atomic=6, n_phones=9, seed=seed
        )
        assert_pack_parity(instance, capacity_grid(instance))

    def test_paper_testbed(self):
        instance = paper_instance()
        assert_pack_parity(instance, capacity_grid(instance))

    @pytest.mark.parametrize("seed", range(6))
    def test_with_ram_and_min_partition(self, seed):
        instance = make_instance(
            n_breakable=8, n_atomic=4, n_phones=6, seed=200 + seed
        )
        ram = RamConstraint(
            {phone.phone_id: 900.0 for phone in instance.phones}
        )
        assert_pack_parity(
            instance,
            capacity_grid(instance),
            ram=ram,
            min_partition_kb=40.0,
        )
        assert_pack_parity(
            instance, capacity_grid(instance), min_partition_kb=400.0
        )

    def test_verdict_only_pack_matches_collecting_pack(self):
        instance = make_instance(
            n_breakable=12, n_atomic=5, n_phones=8, seed=9
        )
        vector = VectorGreedyPacker(instance)
        for capacity in capacity_grid(instance):
            full = vector.pack(capacity)
            verdict = vector.pack(capacity, collect=False)
            assert verdict.schedule is None
            assert verdict.feasible == full.feasible
            assert verdict.max_height_ms == full.max_height_ms
            assert verdict.opened_bins == full.opened_bins

    def test_packer_is_reusable_across_capacities(self):
        """Interleaved packs never leak state between calls."""
        instance = make_instance(
            n_breakable=10, n_atomic=4, n_phones=7, seed=3
        )
        vector = VectorGreedyPacker(instance)
        grid = capacity_grid(instance)
        first = [vector.pack(c) for c in grid]
        again = [vector.pack(c) for c in reversed(grid)]
        for a, b in zip(first, reversed(again)):
            assert a.feasible == b.feasible
            if a.feasible:
                assert schedule_to_dict(a.schedule) == schedule_to_dict(
                    b.schedule
                )


class TestKernelSelection:
    def test_explicit_kernels_pass_through(self, small_instance):
        assert resolve_kernel("python", small_instance) == "python"
        assert resolve_kernel("numpy", small_instance) == "numpy"

    def test_auto_picks_by_instance_size(self, small_instance):
        cells = len(small_instance.phones) * len(small_instance.jobs)
        assert cells < _AUTO_KERNEL_MIN_CELLS
        assert resolve_kernel("auto", small_instance) == "python"

    def test_unknown_kernel_rejected(self, small_instance):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran", small_instance)
        with pytest.raises(ValueError, match="unknown kernel"):
            CapacitySearch(kernel="fortran")

    def test_search_reports_resolved_kernel(self, small_instance):
        for kernel in ("python", "numpy"):
            result = CapacitySearch(kernel=kernel).run(small_instance)
            assert result.kernel == kernel
        assert (
            CapacitySearch(kernel="auto").run(small_instance).kernel
            == "python"
        )


def atomic_heavy_fleet(n_phones=50):
    """A fleet whose bracket is dominated by one huge atomic job.

    With identical phones, the single-placement floor of the atomic job
    equals the upper bound (some phone must hold the whole job), so
    *every* in-bracket bisection midpoint is provably infeasible — the
    shape of the fleet-scale dead zone the certificates previously
    missed.
    """
    jobs = [
        Job("giant", "primes", JobKind.ATOMIC, 120.0, 50_000.0),
        Job("crumb", "primes", JobKind.BREAKABLE, 10.0, 400.0),
    ]
    phones = make_instance(n_phones=n_phones, seed=7).phones
    b = {phone.phone_id: 5.0 for phone in phones}
    c = {
        (phone.phone_id, job.job_id): 11.0
        for phone in phones
        for job in jobs
    }
    return SchedulingInstance(
        jobs=tuple(jobs), phones=phones, b_ms_per_kb=b, c_ms_per_kb=c
    )


class TestCertificates:
    def test_infeasible_fleet_midpoints_are_skipped(self):
        """Satellite 1: a provably-infeasible midpoint is not packed."""
        instance = atomic_heavy_fleet()
        result = CapacitySearch().run(instance)
        reference = ReferenceCapacitySearch().run(instance)
        assert result.shortcircuit_skips > 0
        assert result.capacity_ms == reference.capacity_ms
        assert schedule_to_dict(result.schedule) == schedule_to_dict(
            reference.schedule
        )
        # The reference packs every probe; the certificates resolve the
        # infeasible midpoints for free.
        assert result.packer_passes < reference.packer_passes

    def test_feasibility_certificate_skips_giant_probes(self):
        """Capacities past the greedy-feasibility threshold never pack."""
        instance = make_instance(
            n_breakable=40, n_atomic=0, n_phones=60, seed=11
        )
        result = CapacitySearch().run(instance)
        reference = ReferenceCapacitySearch().run(instance)
        assert result.shortcircuit_skips > 0
        assert result.capacity_ms == reference.capacity_ms
        assert schedule_to_dict(result.schedule) == schedule_to_dict(
            reference.schedule
        )
        assert result.packer_passes < reference.packer_passes

    def test_lp_floor_preserves_schedule(self):
        instance = make_instance(
            n_breakable=6, n_atomic=2, n_phones=5, seed=21
        )
        with_lp = CapacitySearch(lp_floor=True).run(instance)
        without = CapacitySearch().run(instance)
        assert with_lp.capacity_ms == without.capacity_ms
        assert schedule_to_dict(with_lp.schedule) == schedule_to_dict(
            without.schedule
        )


class TestSpeculativeProbing:
    def test_parallel_search_matches_serial(self):
        instance = make_instance(
            n_breakable=12, n_atomic=4, n_phones=10, seed=13
        )
        serial = CapacitySearch().run(instance)
        parallel = CapacitySearch(probe_workers=2).run(instance)
        assert parallel.capacity_ms == serial.capacity_ms
        assert parallel.bisection_steps == serial.bisection_steps
        assert schedule_to_dict(parallel.schedule) == schedule_to_dict(
            serial.schedule
        )

    def test_invalid_probe_workers_rejected(self):
        with pytest.raises(ValueError, match="probe_workers"):
            CapacitySearch(probe_workers=0)
