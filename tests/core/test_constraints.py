"""Tests for RAM constraints (footnote 4: l_ij <= r_i)."""

import pytest

from repro.core.constraints import RamConstraint, validate_ram
from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor
from repro.core.schedule import InfeasibleScheduleError, ScheduleBuilder


def make_instance(ram_mb=(64.0, 64.0), input_kb=100_000.0, atomic=False):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0, ram_mb=ram)
        for i, ram in enumerate(ram_mb)
    )
    predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
    kind = JobKind.ATOMIC if atomic else JobKind.BREAKABLE
    jobs = [Job("big", "t", kind, 10.0, input_kb)]
    b = {p.phone_id: 1.0 for p in phones}
    return SchedulingInstance.build(jobs, phones, b, predictor)


class TestRamConstraint:
    def test_from_phones_derives_caps(self):
        phones = (PhoneSpec(phone_id="p", cpu_mhz=800.0, ram_mb=1024.0),)
        constraint = RamConstraint.from_phones(phones, usable_fraction=0.5)
        assert constraint.cap_kb("p") == pytest.approx(512 * 1024)

    def test_unknown_phone_unconstrained(self):
        constraint = RamConstraint(caps_kb={"p": 100.0})
        assert constraint.cap_kb("other") == float("inf")

    def test_clamp(self):
        constraint = RamConstraint(caps_kb={"p": 100.0})
        assert constraint.clamp_fit("p", 250.0) == 100.0
        assert constraint.clamp_fit("p", 50.0) == 50.0

    def test_admits(self):
        constraint = RamConstraint(caps_kb={"p": 100.0})
        assert constraint.admits("p", 100.0)
        assert not constraint.admits("p", 101.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RamConstraint(caps_kb={"p": 0.0})
        with pytest.raises(ValueError):
            RamConstraint.from_phones((), usable_fraction=0.0)


class TestSchedulerWithRam:
    def test_large_breakable_job_split_by_ram(self):
        """A 100 MB input on 64 MB-cap phones must be partitioned."""
        instance = make_instance()
        ram = RamConstraint(
            caps_kb={p.phone_id: 40_000.0 for p in instance.phones}
        )
        schedule = CwcScheduler(ram=ram).schedule(instance)
        schedule.validate(instance)
        validate_ram(schedule, ram)
        assert schedule.partition_counts()["big"] >= 3  # 100 MB / 40 MB

    def test_without_ram_same_job_may_stay_whole(self):
        instance = make_instance(ram_mb=(64.0,))
        schedule = CwcScheduler().schedule(instance)
        assert schedule.partition_counts()["big"] == 0

    def test_atomic_job_exceeding_all_ram_is_infeasible(self):
        instance = make_instance(atomic=True)
        ram = RamConstraint(
            caps_kb={p.phone_id: 40_000.0 for p in instance.phones}
        )
        with pytest.raises(InfeasibleScheduleError):
            CwcScheduler(ram=ram).schedule(instance)

    def test_atomic_job_fitting_one_phone_is_placed_there(self):
        instance = make_instance(atomic=True, input_kb=30_000.0)
        ram = RamConstraint(caps_kb={"p0": 10_000.0, "p1": 50_000.0})
        schedule = CwcScheduler(ram=ram).schedule(instance)
        (assignment,) = tuple(schedule)
        assert assignment.phone_id == "p1"


class TestValidateRam:
    def test_passes_within_caps(self):
        builder = ScheduleBuilder()
        builder.place("p", "j", "t", 50.0, whole=True)
        validate_ram(builder.build(), RamConstraint(caps_kb={"p": 100.0}))

    def test_fails_beyond_cap(self):
        builder = ScheduleBuilder()
        builder.place("p", "j", "t", 150.0, whole=True)
        with pytest.raises(InfeasibleScheduleError, match="RAM cap"):
            validate_ram(builder.build(), RamConstraint(caps_kb={"p": 100.0}))
