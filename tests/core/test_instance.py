"""Unit tests for SchedulingInstance construction and lookups."""

import pytest

from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor

from ..conftest import make_instance, make_phones, make_predictor


class TestBuild:
    def test_build_fills_c_table(self):
        phones = make_phones(2)
        predictor = make_predictor(phones)
        jobs = [Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0)]
        instance = SchedulingInstance.build(
            jobs, phones, {"p0": 1.0, "p1": 2.0}, predictor
        )
        assert instance.c("p0", "j") == pytest.approx(10.0)
        assert instance.c("p1", "j") == pytest.approx(8.0)  # 10 * 800/1000

    def test_no_phones_rejected(self):
        predictor = make_predictor(make_phones(1))
        jobs = [Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0)]
        with pytest.raises(ValueError, match="phone"):
            SchedulingInstance.build(jobs, (), {}, predictor)

    def test_no_jobs_rejected(self):
        phones = make_phones(1)
        predictor = make_predictor(phones)
        with pytest.raises(ValueError, match="job"):
            SchedulingInstance.build((), phones, {"p0": 1.0}, predictor)

    def test_duplicate_job_ids_rejected(self):
        phones = make_phones(1)
        predictor = make_predictor(phones)
        jobs = [
            Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0),
            Job("j", "primes", JobKind.BREAKABLE, 40.0, 200.0),
        ]
        with pytest.raises(ValueError, match="duplicate job"):
            SchedulingInstance.build(jobs, phones, {"p0": 1.0}, predictor)

    def test_duplicate_phone_ids_rejected(self):
        phone = PhoneSpec(phone_id="p0", cpu_mhz=800.0)
        predictor = make_predictor((phone,))
        jobs = [Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0)]
        with pytest.raises(ValueError, match="duplicate phone"):
            SchedulingInstance(
                jobs=tuple(jobs),
                phones=(phone, phone),
                b_ms_per_kb={"p0": 1.0},
                c_ms_per_kb={("p0", "j"): 1.0},
            )

    def test_missing_b_rejected(self):
        phones = make_phones(2)
        predictor = make_predictor(phones)
        jobs = [Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0)]
        with pytest.raises(ValueError, match="missing b_i"):
            SchedulingInstance.build(jobs, phones, {"p0": 1.0}, predictor)

    def test_missing_c_rejected(self):
        phones = make_phones(1)
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0),)
        with pytest.raises(ValueError, match="missing c_ij"):
            SchedulingInstance(
                jobs=jobs,
                phones=phones,
                b_ms_per_kb={"p0": 1.0},
                c_ms_per_kb={},
            )

    def test_negative_b_rejected(self):
        phones = make_phones(1)
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 40.0, 100.0),)
        with pytest.raises(ValueError, match="b_i"):
            SchedulingInstance(
                jobs=jobs,
                phones=phones,
                b_ms_per_kb={"p0": -1.0},
                c_ms_per_kb={("p0", "j"): 1.0},
            )


class TestLookups:
    def test_job_and_phone_lookup(self, small_instance):
        job = small_instance.jobs[0]
        assert small_instance.job(job.job_id) is job
        phone = small_instance.phones[0]
        assert small_instance.phone(phone.phone_id) is phone

    def test_unknown_job_raises(self, small_instance):
        with pytest.raises(KeyError):
            small_instance.job("nope")

    def test_unknown_phone_raises(self, small_instance):
        with pytest.raises(KeyError):
            small_instance.phone("nope")

    def test_cost_is_equation_one(self, small_instance):
        job = small_instance.jobs[0]
        pid = small_instance.phones[0].phone_id
        expected = job.executable_kb * small_instance.b(pid) + job.input_kb * (
            small_instance.b(pid) + small_instance.c(pid, job.job_id)
        )
        assert small_instance.cost(pid, job.job_id) == pytest.approx(expected)

    def test_cost_with_partition(self, small_instance):
        job = small_instance.jobs[0]
        pid = small_instance.phones[0].phone_id
        full = small_instance.cost(pid, job.job_id)
        half = small_instance.cost(pid, job.job_id, input_kb=job.input_kb / 2)
        exe = job.executable_kb * small_instance.b(pid)
        assert half == pytest.approx(exe + (full - exe) / 2)

    def test_marginal_cost_excludes_executable(self, small_instance):
        job = small_instance.jobs[0]
        pid = small_instance.phones[0].phone_id
        marginal = small_instance.marginal_cost(pid, job.job_id, 100.0)
        expected = 100.0 * (
            small_instance.b(pid) + small_instance.c(pid, job.job_id)
        )
        assert marginal == pytest.approx(expected)

    def test_slowest_phone(self):
        instance = make_instance(n_phones=4)
        assert instance.slowest_phone().phone_id == "p0"

    def test_total_input(self, small_instance):
        assert small_instance.total_input_kb() == pytest.approx(
            sum(j.input_kb for j in small_instance.jobs)
        )

    def test_kind_partitions(self, small_instance):
        atomic = small_instance.atomic_jobs()
        breakable = small_instance.breakable_jobs()
        assert all(j.is_atomic for j in atomic)
        assert all(j.is_breakable for j in breakable)
        assert len(atomic) + len(breakable) == len(small_instance.jobs)
