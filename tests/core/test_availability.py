"""Tests for availability-aware scheduling."""

import pytest

from repro.core.availability import AvailabilityAwareScheduler
from repro.core.greedy import CwcScheduler
from repro.core.schedule import InfeasibleScheduleError
from repro.profiling.forecast import AvailabilityForecast

from ..conftest import make_instance


def forecast_for(instance, risky_ids, risk=0.4):
    profiles = {}
    for phone in instance.phones:
        level = risk if phone.phone_id in risky_ids else 0.01
        profiles[phone.phone_id] = [level] * 24
    return AvailabilityForecast(profiles)


def make_scheduler(instance, risky_ids, **kw):
    defaults = dict(
        start_hour=0.0,
        expected_duration_hours=6.0,
        min_survival=0.2,
        risk_aversion=1.0,
    )
    defaults.update(kw)
    return AvailabilityAwareScheduler(
        CwcScheduler(), forecast_for(instance, risky_ids), **defaults
    )


class TestScheduling:
    def test_produces_valid_schedule(self, small_instance):
        scheduler = make_scheduler(small_instance, risky_ids=set())
        schedule = scheduler.schedule(small_instance)
        schedule.validate(small_instance)

    def test_excludes_hopeless_phones(self, small_instance):
        risky = {small_instance.phones[0].phone_id}
        scheduler = make_scheduler(
            small_instance, risky_ids=risky, min_survival=0.5
        )
        schedule = scheduler.schedule(small_instance)
        used = {a.phone_id for a in schedule}
        assert not used & risky

    def test_all_phones_too_risky_raises(self, small_instance):
        all_ids = {p.phone_id for p in small_instance.phones}
        scheduler = make_scheduler(
            small_instance, risky_ids=all_ids, min_survival=0.5
        )
        with pytest.raises(InfeasibleScheduleError, match="survival"):
            scheduler.schedule(small_instance)

    def test_risk_aversion_shifts_load_off_flaky_phones(self):
        instance = make_instance(
            n_breakable=8, n_atomic=0, n_phones=4, seed=12, b_range=(1.0, 2.0)
        )
        flaky = instance.phones[0].phone_id

        def load_on_flaky(schedule):
            return sum(
                a.input_kb for a in schedule if a.phone_id == flaky
            )

        neutral = make_scheduler(
            instance, risky_ids={flaky}, min_survival=0.0, risk_aversion=0.0
        ).schedule(instance)
        averse = make_scheduler(
            instance, risky_ids={flaky}, min_survival=0.0, risk_aversion=2.0
        ).schedule(instance)
        assert load_on_flaky(averse) <= load_on_flaky(neutral)

    def test_zero_risk_aversion_keeps_all_phones_usable(self, small_instance):
        scheduler = make_scheduler(
            small_instance,
            risky_ids={p.phone_id for p in small_instance.phones},
            min_survival=0.0,
            risk_aversion=0.0,
        )
        schedule = scheduler.schedule(small_instance)
        schedule.validate(small_instance)

    def test_name_reflects_base(self, small_instance):
        scheduler = make_scheduler(small_instance, risky_ids=set())
        assert scheduler.name == "availability(cwc-greedy)"

    def test_survival_query(self, small_instance):
        scheduler = make_scheduler(
            small_instance, risky_ids={small_instance.phones[0].phone_id}
        )
        flaky = scheduler.survival(small_instance.phones[0].phone_id)
        solid = scheduler.survival(small_instance.phones[1].phone_id)
        assert flaky < solid


class TestValidation:
    def test_bad_parameters_rejected(self, small_instance):
        forecast = forecast_for(small_instance, set())
        with pytest.raises(ValueError):
            AvailabilityAwareScheduler(
                CwcScheduler(), forecast,
                start_hour=0.0, expected_duration_hours=0.0,
            )
        with pytest.raises(ValueError):
            AvailabilityAwareScheduler(
                CwcScheduler(), forecast,
                start_hour=0.0, expected_duration_hours=6.0, min_survival=1.0,
            )
        with pytest.raises(ValueError):
            AvailabilityAwareScheduler(
                CwcScheduler(), forecast,
                start_hour=0.0, expected_duration_hours=6.0, risk_aversion=-1.0,
            )
