"""The pluggable scheduling-policy layer.

Three contracts matter:

* **Interface** — every registry policy satisfies the
  :class:`~repro.core.policies.SchedulingPolicy` protocol, produces
  schedules that pass :meth:`~repro.core.schedule.Schedule.validate`,
  and is deterministic (same instance in, byte-identical schedule out).
* **Default byte-identity** — ``make_policy("cwc-greedy")`` and the
  replication policy's base packing are byte-identical to a plain
  :class:`~repro.core.greedy.CwcScheduler`, so the pre-policy digests
  and the differential harness stay pinned.
* **Policy semantics** — replication directives are well-formed (whole
  jobs, never the primary's phone, budget respected), and the energy
  model's joules arithmetic is exact.
"""

import random

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.policies import (
    DEFAULT_POLICY,
    POLICY_NAMES,
    EnergyAwarePolicy,
    ReplicaDirective,
    ReplicationPolicy,
    SchedulingPolicy,
    ShortestExpectedCompletionPolicy,
    assignment_energy_j,
    make_policy,
    phone_cpu_draw_w,
    run_energy_joules,
)
from repro.core.policies.base import (
    check_fraction,
    sorted_jobs_by_cost,
    whole_assignments,
)
from repro.core.model import PhoneSpec
from repro.core.serialize import schedule_to_dict
from repro.power.battery import HTC_G2, HTC_SENSATION

from ..conftest import make_instance

SEEDS = (0, 3, 11, 42)


def fuzzed_instance(seed):
    rng = random.Random(seed)
    return make_instance(
        n_breakable=rng.randint(2, 8),
        n_atomic=rng.randint(1, 4),
        n_phones=rng.randint(2, 8),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# registry and interface
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_default_policy_is_first(self):
        assert POLICY_NAMES[0] == DEFAULT_POLICY == "cwc-greedy"

    def test_default_returns_plain_cwc_scheduler(self):
        assert type(make_policy("cwc-greedy")) is CwcScheduler

    @pytest.mark.parametrize(
        ("name", "cls"),
        [
            ("replication", ReplicationPolicy),
            ("energy-aware", EnergyAwarePolicy),
            ("shortest-expected", ShortestExpectedCompletionPolicy),
        ],
    )
    def test_named_policies_construct(self, name, cls):
        assert type(make_policy(name)) is cls

    def test_unknown_name_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="cwc-greedy"):
            make_policy("round-robin")

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_every_policy_satisfies_the_protocol(self, name):
        policy = make_policy(name)
        assert isinstance(policy, SchedulingPolicy)
        assert policy.name == name
        assert policy.last_replicas == ()

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_search_kwargs_accepted_by_every_policy(self, name):
        # One call site (the scenario->server mapping) threads the
        # capacity-search config through make_policy for all policies;
        # searchless ones must swallow the knobs, not crash.
        policy = make_policy(
            name, kernel="python", warm_start=True, probe_workers=None
        )
        instance = fuzzed_instance(1)
        policy.schedule(instance).validate(instance)

    def test_unknown_kwarg_still_rejected(self):
        with pytest.raises(TypeError):
            make_policy("energy-aware", nonsense=3)


class TestPolicyValidity:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_schedules_validate(self, name, seed):
        instance = fuzzed_instance(seed)
        schedule = make_policy(name).schedule(instance)
        schedule.validate(instance)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_schedules_deterministic(self, name):
        instance = fuzzed_instance(7)
        first = make_policy(name).schedule(instance)
        second = make_policy(name).schedule(instance)
        assert schedule_to_dict(first) == schedule_to_dict(second)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_single_phone_fleet(self, name):
        instance = make_instance(
            n_phones=1, n_breakable=2, n_atomic=1, seed=2
        )
        policy = make_policy(name)
        policy.schedule(instance).validate(instance)
        # One phone leaves nowhere to replicate.
        assert policy.last_replicas == ()


class TestDefaultByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_make_policy_default_matches_plain_scheduler(self, seed):
        instance = fuzzed_instance(seed)
        via_registry = make_policy("cwc-greedy").schedule(instance)
        plain = CwcScheduler().schedule(instance)
        assert schedule_to_dict(via_registry) == schedule_to_dict(plain)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_replication_packing_matches_default(self, seed):
        instance = fuzzed_instance(seed)
        replicated = make_policy("replication").schedule(instance)
        plain = CwcScheduler().schedule(instance)
        assert schedule_to_dict(replicated) == schedule_to_dict(plain)


# ---------------------------------------------------------------------------
# base helpers
# ---------------------------------------------------------------------------


class TestBaseHelpers:
    def test_replica_directive_validates(self):
        with pytest.raises(ValueError, match="phone_id"):
            ReplicaDirective(phone_id="", job_id="j")
        with pytest.raises(ValueError, match="job_id"):
            ReplicaDirective(phone_id="p", job_id="")

    def test_whole_assignments_skips_split_jobs(self):
        instance = fuzzed_instance(5)
        schedule = CwcScheduler().schedule(instance)
        pairs = whole_assignments(schedule)
        by_job = {}
        for phone_id in schedule.phone_ids:
            for assignment in schedule.for_phone(phone_id):
                by_job.setdefault(assignment.job_id, []).append(assignment)
        for phone_id, job_id in pairs:
            (assignment,) = by_job[job_id]
            assert assignment.whole

    def test_sorted_jobs_by_cost_is_lpt_with_stable_ties(self):
        instance = fuzzed_instance(5)
        ordered = sorted_jobs_by_cost(instance)
        assert {job.job_id for job in ordered} == {
            job.job_id for job in instance.jobs
        }

        def best(job):
            return min(
                instance.cost(p.phone_id, job.job_id)
                for p in instance.phones
            )

        costs = [best(job) for job in ordered]
        assert costs == sorted(costs, reverse=True)

    @pytest.mark.parametrize("bad", (0.0, -0.5, 1.5, float("nan")))
    def test_check_fraction_rejects(self, bad):
        with pytest.raises(ValueError, match="frac"):
            check_fraction("frac", bad)

    def test_check_fraction_passes_through(self):
        assert check_fraction("frac", 1) == 1.0


# ---------------------------------------------------------------------------
# replication planning
# ---------------------------------------------------------------------------


class TestReplicationPlanning:
    def test_ctor_validation(self):
        with pytest.raises(ValueError, match="replication_factor"):
            ReplicationPolicy(replication_factor=0)
        with pytest.raises(ValueError, match="max_replicas"):
            ReplicationPolicy(max_replicas=-1)

    def test_directives_are_whole_jobs_on_other_phones(self):
        instance = fuzzed_instance(3)
        policy = ReplicationPolicy()
        schedule = policy.schedule(instance)
        whole = dict(
            (job_id, phone_id)
            for phone_id, job_id in whole_assignments(schedule)
        )
        phone_ids = {p.phone_id for p in instance.phones}
        assert policy.last_replicas
        for directive in policy.last_replicas:
            assert directive.job_id in whole
            assert directive.phone_id in phone_ids
            # Never duplicate onto the phone already running the job.
            assert directive.phone_id != whole[directive.job_id]

    def test_budget_defaults_to_fleet_size(self):
        instance = fuzzed_instance(3)
        policy = ReplicationPolicy()
        policy.schedule(instance)
        assert len(policy.last_replicas) <= len(instance.phones)

    @pytest.mark.parametrize("cap", (0, 1, 2))
    def test_max_replicas_cap(self, cap):
        instance = fuzzed_instance(3)
        policy = ReplicationPolicy(max_replicas=cap)
        policy.schedule(instance)
        assert len(policy.last_replicas) <= cap

    def test_unreliable_filter_limits_candidates(self):
        instance = fuzzed_instance(3)
        baseline = ReplicationPolicy()
        schedule = baseline.schedule(instance)
        whole = whole_assignments(schedule)
        assert whole
        distrusted_phone = whole[0][0]
        policy = ReplicationPolicy(unreliable=(distrusted_phone,))
        policy.schedule(instance)
        allowed = {
            job_id
            for phone_id, job_id in whole
            if phone_id == distrusted_phone
        }
        assert {d.job_id for d in policy.last_replicas} <= allowed
        # Replicas land on phones the policy still trusts first.
        for directive in policy.last_replicas:
            assert directive.phone_id != distrusted_phone

    def test_unreliable_phones_absent_from_instance_yield_nothing(self):
        instance = fuzzed_instance(3)
        policy = ReplicationPolicy(unreliable=("no-such-phone",))
        policy.schedule(instance)
        assert policy.last_replicas == ()

    def test_replication_factor_requests_extra_copies(self):
        instance = make_instance(
            n_breakable=1, n_atomic=2, n_phones=6, seed=9
        )
        single = ReplicationPolicy(replication_factor=1)
        single.schedule(instance)
        double = ReplicationPolicy(replication_factor=2, max_replicas=100)
        double.schedule(instance)
        assert len(double.last_replicas) >= len(single.last_replicas)
        # The same job may appear twice, but never twice on one phone.
        seen = set()
        for directive in double.last_replicas:
            key = (directive.phone_id, directive.job_id)
            assert key not in seen
            seen.add(key)

    def test_warm_state_delegates_to_inner_scheduler(self):
        policy = ReplicationPolicy(warm_start=True)
        instance = fuzzed_instance(4)
        policy.schedule(instance)
        state = policy.warm_state()
        assert state["warm_start"] is True
        assert state["last_capacity_ms"] is not None
        policy.reset_warm_state()
        assert policy.warm_state()["last_capacity_ms"] is None
        policy.restore_warm_state(state)
        assert policy.warm_state() == state
        assert policy.stats.rounds == 1
        assert policy.last_result is not None


# ---------------------------------------------------------------------------
# energy model
# ---------------------------------------------------------------------------


class TestEnergyModel:
    def test_paper_handsets_map_to_measured_profiles(self):
        sensation = PhoneSpec(
            phone_id="s", cpu_mhz=1200.0, model_name="HTC Sensation"
        )
        g2 = PhoneSpec(phone_id="g", cpu_mhz=800.0, model_name="HTC G2")
        assert phone_cpu_draw_w(sensation) == HTC_SENSATION.cpu_draw_w
        assert phone_cpu_draw_w(g2) == HTC_G2.cpu_draw_w

    def test_synthetic_phones_interpolate_and_clamp(self):
        slow = PhoneSpec(phone_id="a", cpu_mhz=100.0, model_name="fuzz")
        fast = PhoneSpec(phone_id="b", cpu_mhz=9000.0, model_name="fuzz")
        mid = PhoneSpec(phone_id="c", cpu_mhz=1250.0, model_name="fuzz")
        assert phone_cpu_draw_w(slow) == HTC_G2.cpu_draw_w
        assert phone_cpu_draw_w(fast) == HTC_SENSATION.cpu_draw_w
        assert (
            HTC_G2.cpu_draw_w
            < phone_cpu_draw_w(mid)
            < HTC_SENSATION.cpu_draw_w
        )

    def test_assignment_energy_is_draw_times_seconds(self):
        instance = fuzzed_instance(6)
        phone = instance.phones[0]
        job = instance.jobs[0]
        expected = (
            phone_cpu_draw_w(phone)
            * instance.cost(phone.phone_id, job.job_id)
            / 1000.0
        )
        assert assignment_energy_j(
            instance, phone.phone_id, job.job_id
        ) == pytest.approx(expected)

    def test_run_energy_sums_busy_time(self):
        class FakeTrace:
            def busy_ms(self, phone_id):
                return 2_000.0

        phones = (
            PhoneSpec(phone_id="a", cpu_mhz=800.0, model_name="g2"),
            PhoneSpec(phone_id="b", cpu_mhz=1200.0, model_name="sensation"),
        )
        expected = 2.0 * (HTC_G2.cpu_draw_w + HTC_SENSATION.cpu_draw_w)
        assert run_energy_joules(FakeTrace(), phones) == pytest.approx(
            expected
        )

    def test_ctor_validation(self):
        with pytest.raises(ValueError, match="efficient_fraction"):
            EnergyAwarePolicy(efficient_fraction=0.0)
        with pytest.raises(ValueError, match="balance"):
            EnergyAwarePolicy(balance=-1.0)

    def test_tiny_fraction_concentrates_work(self):
        instance = fuzzed_instance(6)
        policy = EnergyAwarePolicy(efficient_fraction=1e-9)
        schedule = policy.schedule(instance)
        schedule.validate(instance)
        assert len(schedule.phone_ids) == 1

    def test_energy_greedy_never_spends_more_joules_than_makespan_greedy(
        self,
    ):
        instance = fuzzed_instance(6)

        def predicted_energy(schedule):
            total = 0.0
            for phone_id in schedule.phone_ids:
                for assignment in schedule.for_phone(phone_id):
                    total += assignment_energy_j(
                        instance,
                        phone_id,
                        assignment.job_id,
                        assignment.input_kb,
                    )
            return total

        energy_schedule = EnergyAwarePolicy(balance=0.0).schedule(instance)
        greedy_schedule = CwcScheduler().schedule(instance)
        assert predicted_energy(energy_schedule) <= predicted_energy(
            greedy_schedule
        ) * (1.0 + 1e-9)


class TestShortestExpected:
    def test_places_every_job_whole(self):
        instance = fuzzed_instance(8)
        schedule = ShortestExpectedCompletionPolicy().schedule(instance)
        schedule.validate(instance)
        placements = [
            assignment
            for phone_id in schedule.phone_ids
            for assignment in schedule.for_phone(phone_id)
        ]
        assert len(placements) == len(instance.jobs)
        assert all(assignment.whole for assignment in placements)
