"""Shared-memory plane for probe workers: lifecycle, parity, teardown.

The contract under test: a probe-worker search attaches the owner's
cost matrix read-only over POSIX shared memory, produces the identical
capacity and schedule, and **no path out of a search leaks a
segment** — clean completion, exceptions, interpreter exit, and even
``SIGKILL`` (the resource tracker's job) must all leave ``/dev/shm``
clean.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.capacity import CapacitySearch
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.core.shm import (
    SEGMENT_PREFIX,
    SharedMatrix,
    attach_matrix,
    leaked_segments,
)

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def instance(n_phones=4, n_jobs=8):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 50.0 * i)
        for i in range(n_phones)
    )
    jobs = tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 30.0, 200.0 + 30.0 * i)
        for i in range(n_jobs)
    )
    b = {p.phone_id: 2.0 for p in phones}
    return SchedulingInstance.build(
        jobs, phones, b, RuntimePredictor(PROFILES)
    )


class TestSharedMatrixLifecycle:
    def test_attach_sees_owner_bytes(self):
        mat = np.arange(12, dtype=np.float64).reshape(3, 4)
        owner = SharedMatrix(mat)
        try:
            segment, view = attach_matrix(owner.spec)
            assert view.shape == (3, 4)
            assert np.array_equal(view, mat)
            assert not view.flags.writeable
            segment.close()
        finally:
            owner.close_and_unlink()
        assert owner.spec.name not in leaked_segments()

    def test_unlink_is_idempotent(self):
        owner = SharedMatrix(np.zeros((2, 2)))
        owner.close_and_unlink()
        owner.close_and_unlink()
        assert owner.spec.name not in leaked_segments()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            SharedMatrix(np.zeros(5))

    def test_segment_names_carry_prefix(self):
        owner = SharedMatrix(np.zeros((2, 2)))
        try:
            assert owner.spec.name.startswith(SEGMENT_PREFIX)
        finally:
            owner.close_and_unlink()


class TestSearchTeardown:
    def test_pooled_search_parity_and_no_leak(self):
        inst = instance()
        serial = CapacitySearch().run(inst)
        pooled = CapacitySearch(
            probe_workers=2, batch_width=4, shared_mem=True
        ).run(inst)
        assert pooled.capacity_ms == serial.capacity_ms
        assert leaked_segments() == []

    def test_sigkilled_owner_leaves_no_segment(self, tmp_path):
        # A hard-killed owner can run neither ``finally`` nor atexit;
        # only the resource tracker (a separate daemon) remains to
        # unlink the segment.  Kill a real interpreter mid-ownership
        # and watch /dev/shm drain.
        script = tmp_path / "owner.py"
        script.write_text(
            "import numpy as np, os, sys, time\n"
            "from repro.core.shm import SharedMatrix\n"
            "owner = SharedMatrix(np.ones((64, 64)))\n"
            "print(owner.spec.name, flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), *sys.path) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name.startswith(SEGMENT_PREFIX)
            assert name in leaked_segments()
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The tracker daemon reaps asynchronously after the owner dies.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if name not in leaked_segments():
                break
            time.sleep(0.1)
        assert name not in leaked_segments()


class TestCrashRestoreDrillWithWorkers:
    def test_drill_passes_and_leaks_nothing(self, tmp_path):
        from repro.verify.fuzz import run_crash_restore_campaign

        report = run_crash_restore_campaign(
            1, seed=5, store_root=tmp_path, probe_workers=2
        )
        assert report.ok
        assert report.leaked_shm == ()
        assert leaked_segments() == []
