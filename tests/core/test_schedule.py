"""Unit tests for Schedule/Assignment and cost accounting."""

import pytest

from repro.core.schedule import (
    Assignment,
    InfeasibleScheduleError,
    Schedule,
    ScheduleBuilder,
)

from ..conftest import make_instance


def place_all_on_one_phone(instance, phone_id):
    builder = ScheduleBuilder()
    for job in instance.jobs:
        builder.place(phone_id, job.job_id, job.task, job.input_kb, whole=True)
    return builder.build()


class TestAssignment:
    def test_zero_partition_rejected(self):
        with pytest.raises(ValueError):
            Assignment(
                phone_id="p", job_id="j", task="t", input_kb=0.0, whole=True
            )

    def test_negative_partition_rejected(self):
        with pytest.raises(ValueError):
            Assignment(
                phone_id="p", job_id="j", task="t", input_kb=-5.0, whole=False
            )


class TestPartitionCounts:
    def test_whole_job_counts_as_zero_partitions(self):
        builder = ScheduleBuilder()
        builder.place("p0", "j", "t", 100.0, whole=True)
        counts = builder.build().partition_counts()
        assert counts == {"j": 0}

    def test_split_job_counts_pieces(self):
        builder = ScheduleBuilder()
        builder.place("p0", "j", "t", 60.0, whole=False)
        builder.place("p1", "j", "t", 40.0, whole=False)
        assert builder.build().partition_counts() == {"j": 2}

    def test_single_partial_counts_as_one(self):
        builder = ScheduleBuilder()
        builder.place("p0", "j", "t", 60.0, whole=False)
        assert builder.build().partition_counts() == {"j": 1}

    def test_unsplit_fraction(self):
        builder = ScheduleBuilder()
        builder.place("p0", "a", "t", 100.0, whole=True)
        builder.place("p0", "b", "t", 60.0, whole=False)
        builder.place("p1", "b", "t", 40.0, whole=False)
        assert builder.build().unsplit_fraction() == pytest.approx(0.5)

    def test_empty_schedule_unsplit_fraction(self):
        assert Schedule(()).unsplit_fraction() == 1.0


class TestCostAccounting:
    def test_executable_paid_once_per_phone_job_pair(self):
        instance = make_instance(n_breakable=1, n_atomic=0, n_phones=1)
        job = instance.jobs[0]
        pid = instance.phones[0].phone_id
        builder = ScheduleBuilder()
        builder.place(pid, job.job_id, job.task, job.input_kb / 2, whole=False)
        builder.place(pid, job.job_id, job.task, job.input_kb / 2, whole=False)
        schedule = builder.build()
        b = instance.b(pid)
        c = instance.c(pid, job.job_id)
        expected = job.executable_kb * b + job.input_kb * (b + c)
        assert schedule.predicted_finish_ms(instance, pid) == pytest.approx(expected)

    def test_executable_paid_per_phone(self):
        instance = make_instance(n_breakable=1, n_atomic=0, n_phones=2)
        job = instance.jobs[0]
        builder = ScheduleBuilder()
        builder.place("p0", job.job_id, job.task, job.input_kb / 2, whole=False)
        builder.place("p1", job.job_id, job.task, job.input_kb / 2, whole=False)
        schedule = builder.build()
        for pid in ("p0", "p1"):
            b = instance.b(pid)
            c = instance.c(pid, job.job_id)
            expected = job.executable_kb * b + (job.input_kb / 2) * (b + c)
            assert schedule.predicted_finish_ms(instance, pid) == pytest.approx(
                expected
            )

    def test_makespan_is_max_over_phones(self, small_instance):
        schedule = place_all_on_one_phone(
            small_instance, small_instance.phones[0].phone_id
        )
        makespan = schedule.predicted_makespan_ms(small_instance)
        finish = schedule.predicted_finish_ms(
            small_instance, small_instance.phones[0].phone_id
        )
        assert makespan == pytest.approx(finish)

    def test_empty_schedule_makespan_zero(self, small_instance):
        assert Schedule(()).predicted_makespan_ms(small_instance) == 0.0

    def test_idle_phone_finish_zero(self, small_instance):
        schedule = place_all_on_one_phone(
            small_instance, small_instance.phones[0].phone_id
        )
        assert (
            schedule.predicted_finish_ms(
                small_instance, small_instance.phones[1].phone_id
            )
            == 0.0
        )


class TestValidate:
    def test_full_coverage_passes(self, small_instance):
        schedule = place_all_on_one_phone(
            small_instance, small_instance.phones[0].phone_id
        )
        schedule.validate(small_instance)

    def test_partial_coverage_fails(self, small_instance):
        builder = ScheduleBuilder()
        job = small_instance.jobs[0]
        builder.place(
            small_instance.phones[0].phone_id,
            job.job_id,
            job.task,
            job.input_kb / 2,
            whole=False,
        )
        with pytest.raises(InfeasibleScheduleError, match="assigned"):
            builder.build().validate(small_instance)

    def test_unknown_phone_fails(self, small_instance):
        builder = ScheduleBuilder()
        for job in small_instance.jobs:
            builder.place("ghost", job.job_id, job.task, job.input_kb, whole=True)
        with pytest.raises(InfeasibleScheduleError, match="unknown phone"):
            builder.build().validate(small_instance)

    def test_split_atomic_fails(self, small_instance):
        atomic = small_instance.atomic_jobs()[0]
        builder = ScheduleBuilder()
        for job in small_instance.jobs:
            if job.job_id == atomic.job_id:
                builder.place("p0", job.job_id, job.task, job.input_kb / 2, whole=False)
                builder.place("p1", job.job_id, job.task, job.input_kb / 2, whole=False)
            else:
                builder.place("p0", job.job_id, job.task, job.input_kb, whole=True)
        with pytest.raises(InfeasibleScheduleError, match="atomic"):
            builder.build().validate(small_instance)

    def test_iteration_and_len(self, small_instance):
        schedule = place_all_on_one_phone(
            small_instance, small_instance.phones[0].phone_id
        )
        assert len(schedule) == len(small_instance.jobs)
        assert len(list(schedule)) == len(schedule)

    def test_for_phone_preserves_order(self, small_instance):
        pid = small_instance.phones[0].phone_id
        schedule = place_all_on_one_phone(small_instance, pid)
        ordered = [a.job_id for a in schedule.for_phone(pid)]
        assert ordered == [j.job_id for j in small_instance.jobs]
