"""Tests for the snapshot store: digests, atomicity, corruption fallback."""

import json
import random

import pytest

from repro.durability.snapshot import (
    SNAPSHOT_FORMAT,
    Snapshot,
    SnapshotCorruptError,
    SnapshotStore,
    rng_state_from_json,
    rng_state_to_json,
    stable_seed,
)


class TestSnapshotDocument:
    def test_build_round_trips_through_payload(self):
        snap = Snapshot.build("test", 0, {"a": 1, "b": [1, 2.5, "x"]})
        again = Snapshot.from_payload(snap.to_payload())
        assert again.state == snap.state
        assert again.sha256 == snap.sha256

    def test_digest_covers_state(self):
        payload = Snapshot.build("test", 0, {"a": 1}).to_payload()
        payload["state"]["a"] = 2
        with pytest.raises(SnapshotCorruptError, match="digest mismatch"):
            Snapshot.from_payload(payload)

    def test_unknown_format_rejected(self):
        payload = Snapshot.build("test", 0, {}).to_payload()
        payload["format"] = SNAPSHOT_FORMAT + 1
        with pytest.raises(SnapshotCorruptError, match="format"):
            Snapshot.from_payload(payload)

    def test_missing_fields_rejected(self):
        payload = Snapshot.build("test", 0, {}).to_payload()
        del payload["sha256"]
        with pytest.raises(SnapshotCorruptError, match="missing"):
            Snapshot.from_payload(payload)

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Snapshot.build("", 0, {})


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        saved = store.save("k", {"round": 3})
        loaded = store.load(saved.path)
        assert loaded.state == {"round": 3}
        assert loaded.snapshot_id == 0

    def test_ids_increase_and_latest_wins(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for i in range(4):
            store.save("k", {"i": i})
        assert store.snapshot_ids() == [0, 1, 2, 3]
        assert store.latest().state == {"i": 3}

    def test_latest_filters_by_kind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("a", {"v": 1})
        store.save("b", {"v": 2})
        assert store.latest(kind="a").state == {"v": 1}
        assert store.latest(kind="b").state == {"v": 2}
        assert store.latest(kind="c") is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("k", {"v": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupted_latest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("k", {"v": 1})
        newest = store.save("k", {"v": 2})
        # Flip a byte inside the state payload.
        path = tmp_path / f"snap-{newest.snapshot_id:06d}.json"
        path.write_text(path.read_text().replace('"v": 2', '"v": 9'))
        survivor = store.latest(kind="k")
        assert survivor.state == {"v": 1}
        assert str(path) in store.corrupt_files

    def test_truncated_latest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("k", {"v": 1})
        newest = store.save("k", {"v": 2})
        path = tmp_path / f"snap-{newest.snapshot_id:06d}.json"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.latest(kind="k").state == {"v": 1}

    def test_strict_load_raises_on_corruption(self, tmp_path):
        store = SnapshotStore(tmp_path)
        saved = store.save("k", {"v": 1})
        path = tmp_path / f"snap-{saved.snapshot_id:06d}.json"
        data = json.loads(path.read_text())
        data["state"]["v"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(SnapshotCorruptError, match="digest"):
            store.load(path)

    def test_all_corrupt_returns_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        saved = store.save("k", {"v": 1})
        path = tmp_path / f"snap-{saved.snapshot_id:06d}.json"
        path.write_text("not json at all")
        assert store.latest() is None

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for i in range(6):
            store.save("k", {"i": i})
        removed = store.prune(keep_last=2)
        assert removed == 4
        assert store.snapshot_ids() == [4, 5]
        assert store.latest().state == {"i": 5}

    def test_prune_validates(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            SnapshotStore(tmp_path).prune(keep_last=0)


class TestRngState:
    def test_round_trip_resumes_the_stream(self):
        rng = random.Random(42)
        rng.random()
        frozen = rng_state_from_json(
            json.loads(json.dumps(rng_state_to_json(rng.getstate())))
        )
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random()
        fresh.setstate(frozen)
        assert [fresh.random() for _ in range(5)] == expected

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="3 parts"):
            rng_state_from_json([1, 2])


class TestStableSeed:
    def test_deterministic_and_distinct(self):
        assert stable_seed(1, "a") == stable_seed(1, "a")
        assert stable_seed(1, "a") != stable_seed(1, "b")
        assert stable_seed(1, "a") != stable_seed(2, "a")

    def test_fits_32_bits(self):
        assert 0 <= stable_seed("anything", 7, 3.5) < 2**32
