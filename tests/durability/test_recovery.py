"""Tests for crash-safe checkpoint/restore of CentralServer runs."""

import random

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.prediction import RuntimePredictor
from repro.durability.recovery import (
    RUN_SNAPSHOT_KIND,
    RecoveryError,
    RunKilled,
    checkpointing_hook,
    crash_restore_check,
    execute_scenario,
    run_digests,
    verification_hook,
)
from repro.durability.snapshot import Snapshot, SnapshotStore
from repro.sim.chaos import ChaosMonkey, ChaosPlan, ResiliencePolicy
from repro.sim.entities import FleetGroundTruth
from repro.sim.server import CentralServer
from repro.verify.fuzz import (
    derive_seeds,
    generate_scenario,
    run_crash_restore_campaign,
)
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def build_server(
    *,
    kernel="python",
    warm_start=False,
    harden=False,
    chaos_seed=None,
    on_round=None,
    arrival_rate=600.0,
):
    """A fresh, fully deterministic server + workload for one drill run."""
    from repro.netmodel.measurement import measure_fleet

    testbed = paper_testbed(seed=9)
    phones = testbed.phones[:8]
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(profiles, deviation_sigma=0.03, seed=9)
    predictor = RuntimePredictor(profiles)
    b = measure_fleet(
        {p.phone_id: testbed.links[p.phone_id] for p in phones}
    )
    chaos = ChaosPlan.none()
    if chaos_seed is not None:
        monkey = ChaosMonkey(
            flap_probability=0.2,
            straggler_probability=0.2,
            straggler_factor_range=(3.0, 5.0),
            crash_rate=0.3,
        )
        chaos = monkey.sample_plan(
            [p.phone_id for p in phones],
            duration_ms=300_000.0,
            rng=random.Random(chaos_seed),
        )
    policy = ResiliencePolicy.hardened() if harden else None
    server = CentralServer(
        phones,
        truth,
        predictor,
        CwcScheduler(kernel=kernel, warm_start=warm_start),
        b,
        chaos=chaos,
        resilience=policy,
        on_round=on_round,
        record_instances=True,
    )
    jobs = evaluation_workload(seed=9, instances_per_task=2)
    initial = jobs[:4]
    arrivals = poisson_arrivals(
        jobs[4:], rate_per_hour=arrival_rate, rng=random.Random(3)
    )
    return server, initial, arrivals


CONFIGS = [
    pytest.param("python", False, False, None, id="python-cold-plain"),
    pytest.param("numpy", False, False, None, id="numpy-cold-plain"),
    pytest.param("python", True, True, None, id="python-warm-hardened"),
    pytest.param("numpy", True, False, 11, id="numpy-warm-chaos"),
    pytest.param("python", False, True, 11, id="python-hardened-chaos"),
]


class TestServerCrashRestore:
    """The drill across kernels, warm start, hardening, and chaos."""

    @pytest.mark.parametrize(
        "kernel,warm_start,harden,chaos_seed", CONFIGS
    )
    def test_restore_is_byte_identical(
        self, tmp_path, kernel, warm_start, harden, chaos_seed
    ):
        kwargs = dict(
            kernel=kernel,
            warm_start=warm_start,
            harden=harden,
            chaos_seed=chaos_seed,
        )
        server, initial, arrivals = build_server(**kwargs)
        baseline = server.run(initial, arrivals=arrivals)
        assert len(baseline.rounds) >= 2, "drill needs a mid-run instant"
        base = run_digests(baseline)

        store = SnapshotStore(tmp_path)
        server, initial, arrivals = build_server(
            **kwargs,
            on_round=checkpointing_hook(store, kill_at_instant=1),
        )
        with pytest.raises(RunKilled):
            server.run(initial, arrivals=arrivals)
        snapshot = store.latest(kind=RUN_SNAPSHOT_KIND)
        assert snapshot is not None

        witness = {"verified": False}
        server, initial, arrivals = build_server(
            **kwargs, on_round=verification_hook(snapshot, witness)
        )
        restored = server.run(initial, arrivals=arrivals)
        assert witness["verified"]
        assert run_digests(restored) == base

    def test_kill_at_zero_leaves_no_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        server, initial, arrivals = build_server(
            on_round=checkpointing_hook(store, kill_at_instant=0)
        )
        with pytest.raises(RunKilled):
            server.run(initial, arrivals=arrivals)
        assert len(store) == 0

    def test_corrupted_snapshot_falls_back_to_previous(self, tmp_path):
        # A slower arrival stream spreads the run over three scheduling
        # instants so two snapshots exist before the kill at instant 2.
        server, initial, arrivals = build_server(arrival_rate=60.0)
        base = run_digests(server.run(initial, arrivals=arrivals))

        store = SnapshotStore(tmp_path)
        server, initial, arrivals = build_server(
            arrival_rate=60.0,
            on_round=checkpointing_hook(store, kill_at_instant=2),
        )
        with pytest.raises(RunKilled):
            server.run(initial, arrivals=arrivals)
        ids = store.snapshot_ids()
        assert len(ids) == 2
        # Bit-rot the newest snapshot; recovery must use the older one.
        newest = tmp_path / f"snap-{ids[-1]:06d}.json"
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) - 40])
        snapshot = store.latest(kind=RUN_SNAPSHOT_KIND)
        assert snapshot.snapshot_id == ids[0]
        assert str(newest) in store.corrupt_files

        witness = {"verified": False}
        server, initial, arrivals = build_server(
            arrival_rate=60.0, on_round=verification_hook(snapshot, witness)
        )
        restored = server.run(initial, arrivals=arrivals)
        assert witness["verified"]
        assert run_digests(restored) == base

    def test_verification_rejects_tampered_state(self, tmp_path):
        store = SnapshotStore(tmp_path)
        server, initial, arrivals = build_server(
            on_round=checkpointing_hook(store, kill_at_instant=1)
        )
        with pytest.raises(RunKilled):
            server.run(initial, arrivals=arrivals)
        snapshot = store.latest(kind=RUN_SNAPSHOT_KIND)
        state = dict(snapshot.state)
        state["server"] = dict(state["server"])
        state["server"]["now_ms"] = 123456.789
        tampered = Snapshot.build(RUN_SNAPSHOT_KIND, 99, state)
        server, initial, arrivals = build_server(
            on_round=verification_hook(tampered)
        )
        with pytest.raises(RecoveryError, match="diverging"):
            server.run(initial, arrivals=arrivals)

    def test_wrong_kind_rejected(self):
        snapshot = Snapshot.build("campaign-night", 0, {"instant": 0})
        with pytest.raises(ValueError, match="server-round"):
            verification_hook(snapshot)


class TestScenarioDrill:
    def test_fuzzed_scenarios_survive_the_drill(self, tmp_path):
        for i, seed in enumerate(derive_seeds(2026, 4)):
            outcome = crash_restore_check(
                generate_scenario(seed), store_dir=tmp_path / f"s{i}"
            )
            assert outcome.ok, (outcome.error, outcome.violations)
            assert outcome.identical

    def test_explicit_mid_run_kill_uses_a_snapshot(self, tmp_path):
        # Find a scenario with at least two scheduling instants so the
        # kill lands mid-run and a snapshot must be restored.
        for seed in derive_seeds(7, 40):
            scenario = generate_scenario(seed)
            result = execute_scenario(scenario)
            if len(result.rounds) >= 2:
                break
        else:
            pytest.skip("no multi-round scenario in the probe window")
        outcome = crash_restore_check(
            scenario, store_dir=tmp_path, kill_instant=1
        )
        assert outcome.ok
        assert outcome.killed
        assert outcome.snapshot_id is not None
        assert outcome.state_verified

    def test_campaign_digest_is_stable(self, tmp_path):
        first = run_crash_restore_campaign(
            5, seed=3, store_root=tmp_path / "a"
        )
        second = run_crash_restore_campaign(
            5, seed=3, store_root=tmp_path / "b"
        )
        assert first.ok and second.ok
        assert first.campaign_digest == second.campaign_digest
        assert first.kills == second.kills


class TestLazyPackageSurface:
    def test_recovery_names_resolve_lazily(self):
        import repro.durability as durability

        assert durability.RUN_SNAPSHOT_KIND == RUN_SNAPSHOT_KIND
        assert durability.RunKilled is RunKilled
        with pytest.raises(AttributeError):
            durability.not_a_name  # noqa: B018

    def test_workloads_first_import_order_is_safe(self):
        # arrivals imports durability.snapshot; the package must not
        # eagerly pull in recovery (which imports back through the
        # fuzzer) or this order deadlocks in a circular import.
        import repro.workloads  # noqa: F401
        import repro.durability as durability

        assert durability.SnapshotStore is SnapshotStore
