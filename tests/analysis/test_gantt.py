"""Tests for the ASCII timeline renderer."""

import pytest

from repro.analysis.gantt import render_timeline
from repro.sim.trace import Span, SpanKind, TimelineTrace


def make_trace():
    trace = TimelineTrace()
    trace.add_span(
        Span("p0", "j", SpanKind.COPY, 0.0, 100.0, input_kb=10.0)
    )
    trace.add_span(
        Span("p0", "j", SpanKind.EXECUTE, 100.0, 900.0, input_kb=10.0)
    )
    trace.add_span(
        Span(
            "p1",
            "k",
            SpanKind.EXECUTE,
            200.0,
            600.0,
            input_kb=10.0,
            rescheduled=True,
        )
    )
    trace.add_span(
        Span(
            "p1",
            "m",
            SpanKind.EXECUTE,
            600.0,
            1000.0,
            input_kb=10.0,
            interrupted=True,
        )
    )
    return trace


class TestRenderTimeline:
    def test_one_line_per_phone(self):
        text = render_timeline(make_trace(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("p0 |")
        assert lines[1].startswith("p1 |")

    def test_symbols_present(self):
        text = render_timeline(make_trace(), width=40)
        p0_line, p1_line = text.splitlines()[:2]
        assert "#" in p0_line   # copy stripe
        assert "=" in p0_line   # execution
        assert "%" in p1_line   # rescheduled work
        assert "!" in p1_line   # failure marker

    def test_short_span_paints_at_least_one_cell(self):
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.COPY, 0.0, 1.0, input_kb=1.0))
        trace.add_span(
            Span("p", "j", SpanKind.EXECUTE, 1.0, 10_000.0, input_kb=1.0)
        )
        text = render_timeline(trace, width=40)
        assert "#" in text.splitlines()[0]

    def test_axis_shows_makespan(self):
        text = render_timeline(make_trace(), width=40)
        assert "1 s" in text

    def test_phone_subset(self):
        text = render_timeline(make_trace(), width=40, phone_ids=("p1",))
        lines = text.splitlines()
        assert lines[0].startswith("p1")
        assert not any(line.startswith("p0") for line in lines)

    def test_empty_trace(self):
        assert render_timeline(TimelineTrace()) == "(empty trace)"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline(make_trace(), width=5)

    def test_lines_have_uniform_width(self):
        text = render_timeline(make_trace(), width=50)
        phone_lines = [l for l in text.splitlines() if "|" in l]
        widths = {len(line) for line in phone_lines}
        assert len(widths) == 1
