"""Tests for the table rendering helpers."""

import pytest

from repro.analysis.tables import render_cdf_series, render_table


class TestRenderTable:
    def test_renders_headers_and_rows(self):
        text = render_table(("name", "value"), [("a", 1), ("b", 2)])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "value" in lines[0]
        assert lines[1].startswith("-")
        assert "a" in lines[2]

    def test_title_is_first_line(self):
        text = render_table(("x",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        text = render_table(
            ("name", "v"), [("short", 1), ("a-much-longer-name", 2)]
        )
        lines = text.splitlines()
        positions = {line.index("  ") for line in lines if "  " in line}
        assert positions  # all rows padded to common widths

    def test_float_formatting(self):
        text = render_table(("v",), [(1234.5678,), (0.125,), (0.0,)])
        assert "1,234.6" in text
        assert "0.1250" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table((), [])

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(("a", "b"), [(1,)])

    def test_no_rows_ok(self):
        text = render_table(("a", "b"), [])
        assert "a" in text


class TestRenderCdfSeries:
    def test_quantile_rows_present(self):
        points = [(float(v), (v + 1) / 10) for v in range(10)]
        text = render_cdf_series(points, label="ms")
        assert "p50" in text
        assert "p90" in text
        assert "ms" in text

    def test_quantiles_read_from_points(self):
        points = [(10.0, 0.5), (20.0, 1.0)]
        text = render_cdf_series(points, sample_fractions=(0.25, 0.75))
        lines = text.splitlines()
        assert any("p25" in line and "10" in line for line in lines)
        assert any("p75" in line and "20" in line for line in lines)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            render_cdf_series([])
