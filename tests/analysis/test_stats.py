"""Tests for the statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import EmpiricalCdf, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_singleton(self):
        assert percentile([7.0], 37.0) == 7.0

    def test_p90(self):
        values = list(map(float, range(1, 11)))
        assert percentile(values, 90.0) == pytest.approx(9.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
        ),
        q=st.floats(min_value=0, max_value=100),
    )
    def test_within_range_property(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
        )
    )
    def test_monotone_in_q(self, values):
        qs = [0, 25, 50, 75, 100]
        results = [percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestEmpiricalCdf:
    def test_fraction_below(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(2.0) == 0.5
        assert cdf.fraction_below(2.5) == 0.5
        assert cdf.fraction_below(10.0) == 1.0

    def test_quantile_median(self):
        assert EmpiricalCdf([1.0, 2.0, 3.0, 4.0]).median() == 2.5

    def test_points_are_plottable_cdf(self):
        points = EmpiricalCdf([3.0, 1.0, 2.0]).points()
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_len_and_values_sorted(self):
        cdf = EmpiricalCdf([5.0, 1.0])
        assert len(cdf) == 2
        assert cdf.values == (1.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    @given(
        values=st.lists(
            st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=100
        ),
        thresholds=st.lists(
            st.floats(min_value=-1e4, max_value=1e4), min_size=2, max_size=2
        ),
    )
    def test_fraction_below_monotone(self, values, thresholds):
        cdf = EmpiricalCdf(values)
        low, high = sorted(thresholds)
        assert cdf.fraction_below(low) <= cdf.fraction_below(high)

    @given(
        values=st.lists(
            st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=100
        )
    )
    def test_quantile_inverts_fraction(self, values):
        cdf = EmpiricalCdf(values)
        for fraction in (0.0, 0.5, 1.0):
            q = cdf.quantile(fraction)
            assert min(values) <= q <= max(values)


class TestSummarize:
    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_std_of_constant_is_zero(self):
        assert summarize([5.0, 5.0, 5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
