"""Tests for the scheduler comparison harness."""

import pytest

from repro.analysis.compare import (
    SchedulerComparison,
    compare_schedulers,
    render_comparison,
)
from repro.core.baselines import EqualSplitScheduler, RoundRobinScheduler
from repro.core.greedy import CwcScheduler

from ..conftest import make_instance


def factory(seed):
    return make_instance(seed=seed, n_breakable=6, n_atomic=3, n_phones=5)


class TestCompareSchedulers:
    def test_paired_trials_for_all_schedulers(self):
        results = compare_schedulers(
            [CwcScheduler(), RoundRobinScheduler()], factory, trials=4
        )
        assert {r.name for r in results} == {"cwc-greedy", "round-robin"}
        assert all(len(r.makespans_ms) == 4 for r in results)

    def test_sorted_fastest_first(self):
        results = compare_schedulers(
            [RoundRobinScheduler(), CwcScheduler(), EqualSplitScheduler()],
            factory,
            trials=5,
        )
        means = [r.mean_ms for r in results]
        assert means == sorted(means)
        assert results[0].name == "cwc-greedy"

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_schedulers([], factory, trials=3)
        with pytest.raises(ValueError):
            compare_schedulers([CwcScheduler()], factory, trials=0)
        with pytest.raises(ValueError, match="unique"):
            compare_schedulers(
                [CwcScheduler(), CwcScheduler()], factory, trials=2
            )

    def test_summary_statistics(self):
        comparison = SchedulerComparison("x", (1000.0, 2000.0, 3000.0))
        assert comparison.mean_ms == 2000.0
        assert comparison.summary.p50 == 2000.0


class TestRenderComparison:
    def test_table_contents(self):
        results = compare_schedulers(
            [CwcScheduler(), RoundRobinScheduler()], factory, trials=3
        )
        text = render_comparison(results)
        assert "cwc-greedy" in text
        assert "vs best" in text
        assert "1.00x" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_comparison([])
