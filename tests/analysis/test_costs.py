"""Tests for the Section 3.2 energy-cost model."""

import pytest

from repro.analysis.costs import (
    CORE2DUO_SERVER,
    NEHALEM_SERVER,
    TEGRA3_PHONE,
    DevicePower,
    EnergyCostModel,
    paper_cost_table,
)


class TestPaperNumbers:
    def test_core2duo_server_cost(self):
        assert EnergyCostModel().yearly_cost(CORE2DUO_SERVER) == pytest.approx(
            74.5, abs=0.5
        )

    def test_nehalem_server_cost(self):
        assert EnergyCostModel().yearly_cost(NEHALEM_SERVER) == pytest.approx(
            689.0, rel=0.01
        )

    def test_phone_cost(self):
        assert EnergyCostModel().yearly_cost(TEGRA3_PHONE) == pytest.approx(
            1.33, abs=0.02
        )

    def test_order_of_magnitude_gap(self):
        model = EnergyCostModel()
        ratio = model.yearly_cost(CORE2DUO_SERVER) / model.yearly_cost(
            TEGRA3_PHONE
        )
        assert ratio > 10

    def test_cost_table_rows(self):
        table = paper_cost_table()
        assert len(table) == 3
        names = [row[0] for row in table]
        assert "Tegra 3 smartphone" in names


class TestModelMechanics:
    def test_pue_multiplies_effective_watts(self):
        device = DevicePower("d", 10.0, pue=2.5)
        assert device.effective_watts == 25.0

    def test_phone_pue_is_one(self):
        assert TEGRA3_PHONE.effective_watts == TEGRA3_PHONE.watts

    def test_duty_scales_cost_linearly(self):
        model = EnergyCostModel()
        full = model.yearly_cost(TEGRA3_PHONE, duty=1.0)
        third = model.yearly_cost(TEGRA3_PHONE, duty=1 / 3)
        assert third == pytest.approx(full / 3)

    def test_night_charging_duty(self):
        """8 nightly hours: the realistic CWC phone duty cycle."""
        model = EnergyCostModel()
        cost = model.yearly_cost(TEGRA3_PHONE, duty=8 / 24)
        assert cost < 0.5

    def test_replacement_fleet_size(self):
        model = EnergyCostModel()
        fleet = model.replacement_fleet_size(CORE2DUO_SERVER, TEGRA3_PHONE)
        # 26.8 * 2.5 / 1.2 ≈ 55.8 (the paper quotes >20x even without PUE)
        assert fleet == pytest.approx(55.8, rel=0.01)

    def test_fleet_cost(self):
        model = EnergyCostModel()
        assert model.fleet_cost(TEGRA3_PHONE, 10) == pytest.approx(
            10 * model.yearly_cost(TEGRA3_PHONE)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DevicePower("d", 0.0)
        with pytest.raises(ValueError):
            DevicePower("d", 10.0, pue=0.5)
        with pytest.raises(ValueError):
            EnergyCostModel(rate_per_kwh=0.0)
        model = EnergyCostModel()
        with pytest.raises(ValueError):
            model.yearly_cost(TEGRA3_PHONE, duty=1.5)
        with pytest.raises(ValueError):
            model.fleet_cost(TEGRA3_PHONE, -1)
