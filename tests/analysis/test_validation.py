"""Tests for prediction-model validation statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validation import (
    mape,
    r_squared,
    regression_through_origin,
    validation_summary,
)


PERFECT = [(1.0, 1.0), (1.5, 1.5), (2.0, 2.0)]


class TestRegressionThroughOrigin:
    def test_perfect_identity_slope_one(self):
        assert regression_through_origin(PERFECT) == pytest.approx(1.0)

    def test_uniform_overperformance(self):
        pairs = [(e, 1.2 * e) for e in (1.0, 1.5, 2.0)]
        assert regression_through_origin(pairs) == pytest.approx(1.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            regression_through_origin([])
        with pytest.raises(ValueError):
            regression_through_origin([(0.0, 1.0)])

    @settings(max_examples=30, deadline=None)
    @given(
        factor=st.floats(min_value=0.2, max_value=5.0),
        base=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20
        ),
    )
    def test_recovers_multiplicative_bias(self, factor, base):
        pairs = [(e, factor * e) for e in base]
        assert regression_through_origin(pairs) == pytest.approx(factor)


class TestRSquared:
    def test_perfect_fit(self):
        assert r_squared(PERFECT) == pytest.approx(1.0)

    def test_degrades_with_noise(self):
        noisy = [(1.0, 1.3), (1.5, 1.1), (2.0, 2.6)]
        assert r_squared(noisy) < 1.0

    def test_constant_measured(self):
        # No variance in measurements and a perfect model -> 1.0.
        assert r_squared([(2.0, 2.0), (2.0, 2.0)]) == 1.0
        # No variance but wrong model -> 0.0.
        assert r_squared([(1.0, 2.0), (3.0, 2.0)]) == 0.0


class TestMape:
    def test_zero_for_perfect(self):
        assert mape(PERFECT) == 0.0

    def test_known_value(self):
        # 10% under on one point, exact on another.
        pairs = [(0.9, 1.0), (2.0, 2.0)]
        assert mape(pairs) == pytest.approx(0.05)


class TestValidationSummary:
    def test_fields(self):
        pairs = [(1.0, 1.1), (2.0, 1.8)]
        summary = validation_summary(pairs)
        assert summary.pairs == 2
        assert summary.max_under_prediction == pytest.approx(0.1)
        assert summary.max_over_prediction == pytest.approx(0.1)

    def test_fig06_quality_bar(self):
        """The actual Fig. 6 reproduction must validate well."""
        from repro.experiments.fig06_speedup import speedup_points

        pairs = [
            (expected, measured)
            for _, _, expected, measured in speedup_points()
        ]
        summary = validation_summary(pairs)
        assert 1.0 <= summary.slope <= 1.25  # slightly fast-biased fleet
        assert summary.mape < 0.2
        assert summary.r2 > 0.3
