"""Focused error-path and boundary tests across modules.

Collected here rather than scattered: each of these is a small contract
(raise early, raise clearly) that protects downstream code from silent
misuse.
"""

import pytest

from repro.core.capacity import CapacitySearch
from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor
from repro.core.schedule import InfeasibleScheduleError
from repro.sim.engine import EventLoop


class TestCapacitySearchBoundaries:
    def make_instance(self):
        phones = (PhoneSpec(phone_id="p", cpu_mhz=1000.0),)
        predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
        jobs = (Job("j", "t", JobKind.BREAKABLE, 10.0, 100.0),)
        return SchedulingInstance.build(jobs, phones, {"p": 1.0}, predictor)

    def test_single_iteration_budget_still_returns_schedule(self):
        result = CapacitySearch(max_iterations=1).run(self.make_instance())
        result.schedule.validate(self.make_instance())

    def test_huge_epsilon_returns_upper_bound_schedule(self):
        instance = self.make_instance()
        result = CapacitySearch(epsilon_ms=1e12).run(instance)
        result.schedule.validate(instance)
        # No bisection happened: one seed pack only.
        assert result.iterations == 1


class TestEventTokenAfterFire:
    def test_cancel_after_fire_is_harmless(self):
        loop = EventLoop()
        fired = []
        token = loop.schedule_at(1.0, lambda: fired.append(1))
        loop.run()
        token.cancel()  # no error; nothing changes
        assert fired == [1]

    def test_token_time_visible(self):
        loop = EventLoop()
        token = loop.schedule_at(42.0, lambda: None)
        assert token.time_ms == 42.0


class TestSchedulerErrorMessages:
    def test_infeasible_error_mentions_constraints(self):
        from repro.core.constraints import RamConstraint

        phones = (PhoneSpec(phone_id="p", cpu_mhz=1000.0),)
        predictor = RuntimePredictor.from_reference_phone(phones[0], {"t": 1.0})
        jobs = (Job("big", "t", JobKind.ATOMIC, 10.0, 100_000.0),)
        instance = SchedulingInstance.build(jobs, phones, {"p": 1.0}, predictor)
        ram = RamConstraint(caps_kb={"p": 10.0})
        with pytest.raises(InfeasibleScheduleError, match="constraint"):
            CwcScheduler(ram=ram).schedule(instance)


class TestJobPhoneReprs:
    def test_dataclass_reprs_are_informative(self):
        job = Job("j", "t", JobKind.ATOMIC, 1.0, 2.0)
        assert "j" in repr(job)
        assert "atomic" in repr(job)
        phone = PhoneSpec(phone_id="p", cpu_mhz=806.0)
        assert "806" in repr(phone)


class TestPredictorProfileAccess:
    def test_profile_lookup_error_names_task(self):
        predictor = RuntimePredictor({})
        with pytest.raises(KeyError, match="ghost"):
            predictor.profile("ghost")
