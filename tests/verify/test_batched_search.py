"""Batched multi-candidate capacity search: parity with the serial path.

The speculative probe pool changes *how* grid verdicts are obtained
(worker processes, blocks of candidates, shared-memory cost matrix) but
must never change *which* capacities the bisection visits or the
schedule it converges to.  These tests pin that contract:

* batched differential legs — serial/batched x cold/warm x all
  kernels, byte-identical schedules;
* a hypothesis property over fuzzed instances: batched == serial
  capacity and schedule bytes;
* degenerate brackets: a block wider than the remaining grid,
  single-candidate blocks, and infeasible-everywhere instances;
* the non-monotonicity counterexample (fuzz seed 3504320067) that
  killed the off-grid candidate ladder — greedy feasibility has a
  pocket, so only exact grid-node probes are sound.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.capacity import CapacitySearch
from repro.core.constraints import RamConstraint
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.packing import GreedyPacker
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.core.schedule import InfeasibleScheduleError
from repro.core.serialize import schedule_to_dict
from repro.verify import differential_check, run_differential_campaign
from repro.verify.fuzz import generate_instance

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}

BATCHED_KW = {"probe_workers": 2, "batch_width": 4}


def small_instance():
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 100.0 * i)
        for i in range(4)
    )
    jobs = tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 30.0, 300.0 + 40.0 * i)
        for i in range(6)
    )
    b = {p.phone_id: 2.0 for p in phones}
    return SchedulingInstance.build(
        jobs, phones, b, RuntimePredictor(PROFILES)
    )


def _bytes(schedule) -> bytes:
    return json.dumps(
        schedule_to_dict(schedule), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class TestBatchedDifferentialLegs:
    def test_batched_legs_agree_on_small_instance(self):
        report = differential_check(small_instance(), batched=True)
        assert report.legs == (
            "reference",
            "python-cold",
            "python-warm",
            "python-batched-cold",
            "python-batched-warm",
            "numpy-cold",
            "numpy-warm",
            "numpy-batched-cold",
            "numpy-batched-warm",
        )

    def test_batched_campaign_agrees(self):
        reports = run_differential_campaign(6, seed=11, batched=True)
        assert len(reports) == 6
        assert all(len(r.legs) == 9 for r in reports)


class TestBatchedSerialProperty:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_batched_equals_serial(self, seed):
        instance = generate_instance(seed)
        serial = CapacitySearch().run(instance)
        batched = CapacitySearch(**BATCHED_KW).run(instance)
        assert batched.capacity_ms == serial.capacity_ms
        assert _bytes(batched.schedule) == _bytes(serial.schedule)


class TestDegenerateBrackets:
    def test_block_wider_than_remaining_grid(self):
        # A 64-wide block against a bracket that epsilon exhausts in a
        # handful of levels: the frontier must stop at the grid edge,
        # not invent off-grid candidates.
        instance = small_instance()
        serial = CapacitySearch(epsilon_ms=500.0).run(instance)
        wide = CapacitySearch(
            epsilon_ms=500.0, probe_workers=2, batch_width=64
        ).run(instance)
        assert wide.capacity_ms == serial.capacity_ms
        assert _bytes(wide.schedule) == _bytes(serial.schedule)

    def test_single_candidate_block(self):
        instance = small_instance()
        serial = CapacitySearch().run(instance)
        narrow = CapacitySearch(probe_workers=2, batch_width=1).run(
            instance
        )
        assert narrow.capacity_ms == serial.capacity_ms
        assert _bytes(narrow.schedule) == _bytes(serial.schedule)

    def test_infeasible_everywhere(self):
        # An atomic job larger than every phone's RAM cap: no capacity
        # admits it, so serial and batched searches must both reject
        # at the seed pack instead of hanging or diverging.
        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=900.0) for i in range(3)
        )
        jobs = (
            Job("j0", "primes", JobKind.ATOMIC, 30.0, 5_000.0),
        )
        b = {p.phone_id: 2.0 for p in phones}
        instance = SchedulingInstance.build(
            jobs, phones, b, RuntimePredictor(PROFILES)
        )
        ram = RamConstraint(caps_kb={p.phone_id: 100.0 for p in phones})
        with pytest.raises(InfeasibleScheduleError):
            CapacitySearch(ram=ram).run(instance)
        with pytest.raises(InfeasibleScheduleError):
            CapacitySearch(ram=ram, **BATCHED_KW).run(instance)


class TestNonMonotoneFeasibility:
    """Greedy feasibility is NOT monotone in capacity.

    Fuzz seed 3504320067 has a feasible pocket: raising the capacity
    from 92 000 ms to 92 500 ms turns a feasible pack infeasible (the
    greedy order shifts and strands a remainder).  This is the
    counterexample that forbids off-grid speculation — a verdict at a
    non-grid capacity proves nothing about any grid midpoint — and it
    must stay pinned so nobody reintroduces a candidate ladder.
    """

    SEED = 3504320067

    def test_feasibility_pocket_exists(self):
        packer = GreedyPacker(generate_instance(self.SEED))
        assert packer.pack(92_000.0).feasible
        assert not packer.pack(92_500.0).feasible
        assert packer.pack(93_500.0).feasible

    def test_pocket_seed_differential_with_batching(self):
        differential_check(generate_instance(self.SEED), batched=True)
