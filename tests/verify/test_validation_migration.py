"""The validation.py -> oracle migration preserves every verdict.

``repro.sim.validation`` used to own four hand-rolled checks; they now
live in the :mod:`repro.verify.invariants` registry and
``check_run_invariants`` delegates to the oracle.  These tests prove
the promoted invariants agree with the retained ``_legacy_*``
implementations verdict-for-verdict, and that the public surface
(:class:`TraceInvariantError`) stayed compatible.
"""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.server import CentralServer, RunResult
from repro.sim.trace import Span, SpanKind, TimelineTrace
from repro.sim.validation import (
    TraceInvariantError,
    _legacy_check_run_invariants,
    check_run_invariants,
)
from repro.verify.invariants import InvariantViolation

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def run_simulation(plan=None):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 100.0 * i)
        for i in range(3)
    )
    jobs = tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 30.0, 400.0 + 50.0 * i)
        for i in range(4)
    )
    server = CentralServer(
        phones,
        FleetGroundTruth(PROFILES),
        RuntimePredictor(PROFILES),
        CwcScheduler(),
        {p.phone_id: 2.0 for p in phones},
        failure_plan=plan or FailurePlan.none(),
    )
    return jobs, server.run(jobs)


def verdict(checker, result, jobs):
    try:
        checker(result, jobs)
    except TraceInvariantError as exc:
        return str(exc)
    return None


class TestCompatibility:
    def test_error_type_is_aliased(self):
        assert TraceInvariantError is InvariantViolation
        assert issubclass(TraceInvariantError, AssertionError)

    def test_sim_package_reexports_alias(self):
        import repro.sim

        assert repro.sim.TraceInvariantError is InvariantViolation


class TestAgreement:
    CASES = (
        None,
        FailurePlan([PlannedFailure("p1", 2_000.0, online=True)]),
        FailurePlan([PlannedFailure("p1", 2_000.0, online=False)]),
        FailurePlan(
            [PlannedFailure("p1", 2_000.0, online=True,
                            rejoin_after_ms=5_000.0)]
        ),
    )

    @pytest.mark.parametrize("plan", CASES)
    def test_clean_runs_agree(self, plan):
        jobs, result = run_simulation(plan)
        assert verdict(_legacy_check_run_invariants, result, jobs) is None
        assert verdict(check_run_invariants, result, jobs) is None

    def test_overlap_verdicts_agree(self):
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.COPY, 0.0, 100.0, input_kb=1.0))
        trace.add_span(
            Span("p", "j", SpanKind.EXECUTE, 50.0, 150.0, input_kb=1.0),
            at_ms=50.0,
        )
        result = RunResult(trace=trace, rounds=[])
        legacy = verdict(_legacy_check_run_invariants, result, ())
        new = verdict(check_run_invariants, result, ())
        assert legacy is not None and legacy == new

    def test_missing_copy_verdicts_agree(self):
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0))
        result = RunResult(trace=trace, rounds=[])
        legacy = verdict(_legacy_check_run_invariants, result, ())
        new = verdict(check_run_invariants, result, ())
        assert legacy is not None and legacy == new

    def test_lost_input_verdicts_agree(self):
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 10.0, 500.0),)
        result = RunResult(trace=TimelineTrace(), rounds=[])
        legacy = verdict(_legacy_check_run_invariants, result, jobs)
        new = verdict(check_run_invariants, result, jobs)
        assert legacy is not None and legacy == new

    def test_empty_run_agrees(self):
        result = RunResult(trace=TimelineTrace(), rounds=[])
        assert verdict(_legacy_check_run_invariants, result, ()) is None
        assert verdict(check_run_invariants, result, ()) is None

    def test_oracle_is_strictly_stronger(self):
        """The migration may add checks but must not lose any.

        A duplicate credit passes the legacy validator (conservation
        balances if the extra credit is offset) but the oracle's
        no-duplicate-credit invariant rejects it.
        """
        from repro.sim.trace import CompletionRecord

        job = Job("j", "primes", JobKind.BREAKABLE, 10.0, 100.0)
        trace = TimelineTrace()
        trace.add_completion(
            CompletionRecord("p", "j", 10.0, 100.0, 5.0), at_ms=10.0
        )
        trace.add_completion(
            CompletionRecord("q", "ghost", 11.0, 0.0, 5.0), at_ms=11.0
        )
        result = RunResult(trace=trace, rounds=[])
        assert verdict(_legacy_check_run_invariants, result, (job,)) is None
        assert verdict(check_run_invariants, result, (job,)) is not None
