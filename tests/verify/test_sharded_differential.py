"""Tests for the sharded differential leg (verify/differential.py)."""

import pytest

from repro.verify import (
    DifferentialMismatchError,
    sharded_differential_check,
)
from repro.verify.differential import run_sharded_campaign

from ..conftest import make_instance


@pytest.fixture
def fleet_instance():
    return make_instance(n_phones=10, n_breakable=10, n_atomic=3, seed=21)


def test_clean_instance_passes_all_legs(fleet_instance):
    report = sharded_differential_check(
        fleet_instance, pod_counts=(1, 2, 4)
    )
    # Two kernels x (monolithic + three pod counts).
    assert len(report.legs) == 8
    assert any(leg.startswith("sharded-") for leg in report.legs)
    assert report.monolithic_makespan_ms > 0
    # Multi-pod legs recorded their effective pod counts and makespans.
    requested = [entry[0] for entry in report.pod_makespans]
    assert requested == [2, 4]
    for _requested, effective, makespan in report.pod_makespans:
        assert effective >= 2
        assert makespan > 0
    # The pod LP certified each multi-pod leg (small instance => HiGHS
    # always runs), and the ratio respects the sandwich.
    assert len(report.bound_ratios) == 2
    for _requested, ratio in report.bound_ratios:
        assert ratio >= 1.0 - 1e-9


def test_policies_all_pass(fleet_instance):
    for policy in ("lp", "greedy", "hash"):
        report = sharded_differential_check(
            fleet_instance, pod_counts=(1, 2), pod_assign=policy
        )
        assert report.pod_assign == policy


def test_bound_factor_violation_detected(fleet_instance):
    """An absurdly tight factor must trip the monolithic comparison."""
    with pytest.raises(DifferentialMismatchError, match="exceeds"):
        sharded_differential_check(
            fleet_instance,
            pod_counts=(4,),
            pod_assign="hash",
            bound_factor=0.01,
        )


def test_campaign_runs_fuzzed_instances():
    reports = run_sharded_campaign(2, seed=5, pod_counts=(1, 2))
    assert len(reports) == 2
    for report in reports:
        assert "sharded-python-pods1" in report.legs


def test_campaign_rejects_bad_count():
    with pytest.raises(ValueError):
        run_sharded_campaign(0)
