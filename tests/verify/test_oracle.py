"""Tests for the Oracle facade: filtering, collection, round replay."""

import pytest

from repro.core.capacity import CapacitySearch, capacity_bounds
from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.sim.entities import FleetGroundTruth
from repro.sim.server import CentralServer
from repro.sim.trace import Span, SpanKind, TimelineTrace
from repro.sim.server import RunResult
from repro.verify import Oracle
from repro.verify.invariants import InvariantViolation

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def small_instance(n_phones=3, n_jobs=4):
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 100.0 * i)
        for i in range(n_phones)
    )
    jobs = tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 30.0, 400.0 + 50.0 * i)
        for i in range(n_jobs)
    )
    b = {p.phone_id: 2.0 for p in phones}
    return SchedulingInstance.build(jobs, phones, b, RuntimePredictor(PROFILES))


def run_simulation(record_instances=True):
    instance = small_instance()
    server = CentralServer(
        instance.phones,
        FleetGroundTruth(PROFILES),
        RuntimePredictor(PROFILES),
        CwcScheduler(),
        {p.phone_id: 2.0 for p in instance.phones},
        record_instances=record_instances,
    )
    return instance.jobs, server.run(instance.jobs)


class TestFiltering:
    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            Oracle(include=["no-such-check"])
        with pytest.raises(ValueError, match="unknown invariant"):
            Oracle(exclude=["no-such-check"])

    def test_include_restricts(self):
        oracle = Oracle(include=["conservation"])
        bad = RunResult(trace=TimelineTrace(), rounds=[])
        job = Job("j", "primes", JobKind.BREAKABLE, 10.0, 100.0)
        with pytest.raises(InvariantViolation, match="not conserved"):
            oracle.check_run(bad, (job,))
        # copy-before-execute excluded by the include list: a trace that
        # only violates that invariant passes.
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0))
        oracle.check_run(RunResult(trace=trace, rounds=[]), ())

    def test_exclude_skips(self):
        oracle = Oracle(exclude=["copy-before-execute"])
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0))
        oracle.check_run(RunResult(trace=trace, rounds=[]), ())


class TestCollectMode:
    def test_collect_returns_all_violations(self):
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0))
        job = Job("j", "primes", JobKind.BREAKABLE, 10.0, 100.0)
        violations = Oracle().check_run(
            RunResult(trace=trace, rounds=[]), (job,), collect=True
        )
        names = {v.invariant for v in violations}
        assert "conservation" in names
        assert "copy-before-execute" in names

    def test_raise_mode_raises_first(self):
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0))
        with pytest.raises(InvariantViolation):
            Oracle().check_run(RunResult(trace=trace, rounds=[]), ())

    def test_clean_run_collects_nothing(self):
        jobs, result = run_simulation()
        assert Oracle().check_run(result, jobs, collect=True) == []


class TestCheckRounds:
    def test_recorded_rounds_validate(self):
        jobs, result = run_simulation(record_instances=True)
        assert result.rounds, "simulation recorded no rounds"
        for record in result.rounds:
            assert record.instance is not None
            assert record.capacity_ms > 0
        assert Oracle().check_rounds(result, collect=True) == []

    def test_unrecorded_rounds_skip(self):
        jobs, result = run_simulation(record_instances=False)
        for record in result.rounds:
            assert record.instance is None
        assert Oracle().check_rounds(result, collect=True) == []


class TestCheckSchedule:
    def test_search_result_validates(self):
        instance = small_instance()
        search = CapacitySearch().run(instance)
        lower, upper = capacity_bounds(instance)
        violations = Oracle().check_schedule(
            instance,
            search.schedule,
            capacity_ms=search.capacity_ms,
            upper_bound_ms=upper,
            predicted_makespan_ms=search.schedule.predicted_makespan_ms(
                instance
            ),
            collect=True,
        )
        assert violations == []

    def test_capacity_violation_detected(self):
        instance = small_instance()
        search = CapacitySearch().run(instance)
        with pytest.raises(InvariantViolation, match="above the converged"):
            Oracle(include=["capacity-soundness"]).check_schedule(
                instance, search.schedule, capacity_ms=1.0
            )

    def test_wrong_prediction_detected(self):
        instance = small_instance()
        search = CapacitySearch().run(instance)
        with pytest.raises(InvariantViolation, match="does not match"):
            Oracle(include=["makespan-prediction"]).check_schedule(
                instance, search.schedule, predicted_makespan_ms=1.0
            )

    def test_impossible_upper_bound_detected(self):
        instance = small_instance()
        search = CapacitySearch().run(instance)
        with pytest.raises(InvariantViolation, match="exceeds the greedy"):
            Oracle(include=["lp-sandwich"]).check_schedule(
                instance, search.schedule, upper_bound_ms=1.0
            )

    def test_lp_lower_bound_holds(self):
        from repro.core.lp_bound import solve_relaxed_makespan

        instance = small_instance()
        search = CapacitySearch().run(instance)
        lp = solve_relaxed_makespan(instance)
        violations = Oracle(include=["lp-sandwich"]).check_schedule(
            instance,
            search.schedule,
            lower_bound_ms=lp.makespan_ms,
            collect=True,
        )
        assert violations == []
