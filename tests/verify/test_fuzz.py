"""Tests for the deterministic scenario fuzzer: generation, replay, shrinking."""

import json

import pytest

from repro.sim.chaos import ChaosPlan
from repro.verify.fuzz import (
    Scenario,
    derive_seeds,
    generate_instance,
    generate_scenario,
    minimize_scenario,
    replay_artifact,
    run_campaign,
    run_scenario,
    write_artifact,
)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seeds(0, 10) == derive_seeds(0, 10)

    def test_prefix_stable(self):
        assert derive_seeds(0, 20)[:10] == derive_seeds(0, 10)

    def test_master_seed_matters(self):
        assert derive_seeds(0, 10) != derive_seeds(1, 10)


class TestGeneration:
    def test_same_seed_same_digest(self):
        assert generate_scenario(5).digest() == generate_scenario(5).digest()

    def test_different_seeds_differ(self):
        digests = {generate_scenario(s).digest() for s in range(20)}
        assert len(digests) == 20

    def test_grammar_bounds(self):
        for seed in range(30):
            scenario = generate_scenario(seed)
            assert 2 <= len(scenario.phones) <= 8
            assert 1 <= len(scenario.jobs) <= 10
            assert scenario.kernel in ("python", "numpy")
            assert set(scenario.measured_b) == {
                p.phone_id for p in scenario.phones
            }
            arriving = {job_id for _, job_id in scenario.arrivals}
            assert arriving < {j.job_id for j in scenario.jobs} or not arriving

    def test_generate_instance_deterministic(self):
        a = generate_instance(11)
        b = generate_instance(11)
        assert len(a.phones) == len(b.phones)
        assert len(a.jobs) == len(b.jobs)


class TestScenarioSerialization:
    def test_round_trip_preserves_digest(self):
        scenario = generate_scenario(9)
        clone = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert clone.digest() == scenario.digest()

    def test_missing_field_rejected(self):
        data = generate_scenario(9).to_dict()
        del data["jobs"]
        with pytest.raises(ValueError, match="missing field"):
            Scenario.from_dict(data)

    def test_arrivals_must_name_known_jobs(self):
        scenario = generate_scenario(9)
        data = scenario.to_dict()
        data["arrivals"] = [[100.0, "no-such-job"]]
        with pytest.raises(ValueError, match="unknown jobs"):
            Scenario.from_dict(data)

    def test_at_least_one_initial_job_required(self):
        data = generate_scenario(9).to_dict()
        data["arrivals"] = [
            [100.0 * (i + 1), job["job_id"]]
            for i, job in enumerate(data["jobs"])
        ]
        with pytest.raises(ValueError, match="initial batch"):
            Scenario.from_dict(data)


class TestRunScenario:
    def test_clean_seed_passes_all_invariants(self):
        outcome = run_scenario(generate_scenario(12345))
        assert outcome.ok
        assert outcome.makespan_ms is not None and outcome.makespan_ms > 0
        assert outcome.rounds >= 1
        assert outcome.completions >= 1

    def test_execution_is_deterministic(self):
        scenario = generate_scenario(2012)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.makespan_ms == second.makespan_ms
        assert first.completions == second.completions
        assert first.digest == second.digest


class TestCampaign:
    def test_runs_validated(self):
        with pytest.raises(ValueError, match="runs"):
            run_campaign(0)

    def test_campaign_digest_is_reproducible(self):
        first = run_campaign(10, seed=0, minimize=False)
        second = run_campaign(10, seed=0, minimize=False)
        assert first.campaign_digest == second.campaign_digest
        assert first.digests == second.digests
        assert len(first.digests) == 10

    def test_seed_changes_campaign(self):
        assert (
            run_campaign(5, seed=0, minimize=False).campaign_digest
            != run_campaign(5, seed=1, minimize=False).campaign_digest
        )


class TestArtifacts:
    def test_write_and_replay_round_trip(self, tmp_path):
        outcome = run_scenario(generate_scenario(42))
        path = write_artifact(outcome, tmp_path)
        assert path.name == "fuzz-42.json"
        replay = replay_artifact(path)
        assert replay.digest_matches
        assert replay.reproduced
        assert replay.outcome.ok == outcome.ok

    def test_tampered_scenario_fails_digest(self, tmp_path):
        outcome = run_scenario(generate_scenario(42))
        path = write_artifact(outcome, tmp_path)
        payload = json.loads(path.read_text())
        payload["scenario"]["measured_b"] = {
            k: v * 2.0 for k, v in payload["scenario"]["measured_b"].items()
        }
        path.write_text(json.dumps(payload))
        assert not replay_artifact(path).digest_matches

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "fuzz-1.json"
        path.write_text(json.dumps({"format": 999, "scenario": {}}))
        with pytest.raises(ValueError, match="unsupported artifact format"):
            replay_artifact(path)


class TestMinimizer:
    def test_shrinks_against_synthetic_predicate(self):
        # "Fails" whenever job00 is present alongside any crash fault —
        # the minimum under that predicate is tiny, and the shrinker
        # must find it without ever running the simulator.
        scenario = None
        for seed in range(200):
            candidate = generate_scenario(seed)
            if candidate.chaos.crashes and len(candidate.jobs) >= 4:
                scenario = candidate
                break
        assert scenario is not None, "grammar never produced crashes"

        def is_failing(candidate):
            return bool(candidate.chaos.crashes) and any(
                j.job_id == "job00" for j in candidate.jobs
            )

        minimal = minimize_scenario(
            scenario, is_failing=is_failing, budget=100_000
        )
        assert is_failing(minimal)
        assert len(minimal.jobs) == 1
        assert len(minimal.phones) == 1
        assert len(minimal.chaos.crashes) == 1
        assert not minimal.chaos.slowdowns
        assert not minimal.arrivals

    def test_passing_scenario_returned_unchanged(self):
        scenario = generate_scenario(3)
        assert (
            minimize_scenario(scenario, is_failing=lambda s: False)
            is scenario
        )

    def test_budget_bounds_work(self):
        scenario = generate_scenario(8)
        calls = 0

        def is_failing(candidate):
            nonlocal calls
            calls += 1
            return True

        minimize_scenario(scenario, is_failing=is_failing, budget=5)
        # One call proves the original fails, five more spend the budget.
        assert calls <= 6


class TestChaosPlanRoundTrip:
    def test_chaos_survives_scenario_serialization(self):
        for seed in range(50):
            scenario = generate_scenario(seed)
            if not scenario.chaos.is_empty:
                clone = ChaosPlan.from_dict(scenario.chaos.to_dict())
                assert clone.to_dict() == scenario.chaos.to_dict()
                return
        pytest.fail("grammar never produced chaos")


class TestPolicyScenarios:
    """Scenarios parametrised over the pluggable scheduling policies."""

    NON_DEFAULT = ("replication", "energy-aware", "shortest-expected")

    def test_default_scenario_dict_has_no_policy_key(self):
        # Digest compatibility: pre-policy artifacts replay unchanged,
        # so the default policy must not appear in the serialised form.
        data = generate_scenario(7).to_dict()
        assert "policy" not in data
        clone = Scenario.from_dict(json.loads(json.dumps(data)))
        assert clone.policy == "cwc-greedy"
        assert clone.digest() == generate_scenario(7).digest()

    def test_policy_field_round_trips_and_shifts_digest(self):
        import dataclasses

        base = generate_scenario(7)
        for name in self.NON_DEFAULT:
            variant = dataclasses.replace(base, policy=name)
            data = variant.to_dict()
            assert data["policy"] == name
            clone = Scenario.from_dict(json.loads(json.dumps(data)))
            assert clone.policy == name
            assert clone.digest() == variant.digest()
            assert variant.digest() != base.digest()

    def test_unknown_policy_rejected(self):
        import dataclasses

        with pytest.raises(ValueError, match="unknown scenario policy"):
            dataclasses.replace(
                generate_scenario(7), policy="round-robin"
            )

    @pytest.mark.parametrize("policy", NON_DEFAULT)
    def test_policy_scenarios_pass_the_full_oracle(self, policy):
        import dataclasses

        scenario = dataclasses.replace(
            generate_scenario(12345), policy=policy
        )
        first = run_scenario(scenario)
        assert first.ok, first.violations
        second = run_scenario(scenario)
        assert first.digest == second.digest

    @pytest.mark.parametrize("policy", NON_DEFAULT)
    def test_policy_artifacts_replay(self, policy, tmp_path):
        import dataclasses

        scenario = dataclasses.replace(
            generate_scenario(31), policy=policy
        )
        outcome = run_scenario(scenario)
        path = write_artifact(outcome, tmp_path)
        recorded = json.loads(path.read_text())
        assert recorded["scenario"]["policy"] == policy
        replay = replay_artifact(path)
        assert replay.digest_matches
        assert replay.outcome.scenario.policy == policy
        assert replay.outcome.digest == outcome.digest
