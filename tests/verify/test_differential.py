"""Differential tests: all capacity-search legs agree, byte for byte."""

import pytest

from repro.core.model import Job, JobKind, PhoneSpec
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.verify import (
    DifferentialMismatchError,
    differential_check,
    run_differential_campaign,
)

PROFILES = {"primes": TaskProfile("primes", 10.0, 800.0)}


def small_instance():
    phones = tuple(
        PhoneSpec(phone_id=f"p{i}", cpu_mhz=800.0 + 100.0 * i)
        for i in range(4)
    )
    jobs = tuple(
        Job(f"j{i}", "primes", JobKind.BREAKABLE, 30.0, 300.0 + 40.0 * i)
        for i in range(6)
    )
    b = {p.phone_id: 2.0 for p in phones}
    return SchedulingInstance.build(jobs, phones, b, RuntimePredictor(PROFILES))


class TestDifferentialCheck:
    def test_all_legs_agree_on_small_instance(self):
        report = differential_check(small_instance())
        assert report.legs == (
            "reference",
            "python-cold",
            "python-warm",
            "numpy-cold",
            "numpy-warm",
        )
        assert report.capacity_ms > 0
        assert len(report.schedule_digest) == 64

    def test_lp_sandwich_checked_when_enabled(self):
        report = differential_check(small_instance(), lp=True)
        assert report.lp_checked
        assert report.lp_bound_ms is not None
        assert report.lp_bound_ms <= report.makespan_ms + 1e-6
        assert report.makespan_ms <= report.greedy_bound_ms + 1e-6

    def test_lp_can_be_disabled(self):
        report = differential_check(small_instance(), lp=False)
        assert not report.lp_checked
        assert report.lp_bound_ms is None

    def test_reports_are_deterministic(self):
        first = differential_check(small_instance())
        second = differential_check(small_instance())
        assert first == second


class TestCampaign:
    def test_count_validated(self):
        with pytest.raises(ValueError, match="count"):
            run_differential_campaign(0)

    def test_hundred_fuzzed_instances_agree(self):
        # The PR's acceptance bar: byte-identical schedules across the
        # reference, python, and numpy kernels (cold and warm) on 100
        # fuzzed instances.
        reports = run_differential_campaign(100, seed=0)
        assert len(reports) == 100
        assert all(len(r.legs) == 5 for r in reports)

    def test_campaign_is_deterministic(self):
        first = run_differential_campaign(5, seed=3)
        second = run_differential_campaign(5, seed=3)
        assert first == second

    def test_mismatch_error_is_assertion(self):
        assert issubclass(DifferentialMismatchError, AssertionError)
