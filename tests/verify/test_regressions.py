"""Regression tests for bugs the scenario fuzzer surfaced.

Each test pins a minimized failing scenario (hand-shrunk from the
fuzzer's counterexample) so the bug stays fixed.  The pattern: build
the exact :class:`~repro.verify.fuzz.Scenario`, run it, and assert the
oracle reports no violations.
"""

from repro.core.model import Job, JobKind, PhoneSpec
from repro.sim.chaos import ChaosPlan
from repro.sim.failures import PlannedFailure
from repro.verify import Oracle
from repro.verify.fuzz import Scenario, run_scenario

PHONES = (
    PhoneSpec(phone_id="p0", cpu_mhz=800.0),
    PhoneSpec(phone_id="p1", cpu_mhz=1000.0),
)
JOBS = (
    Job("j0", "primes", JobKind.BREAKABLE, 30.0, 200.0),
    Job("j1", "primes", JobKind.BREAKABLE, 30.0, 400.0),
)
B = {"p0": 2.0, "p1": 2.0}


def scenario_with(chaos, arrivals=()):
    return Scenario(
        seed=1,
        phones=PHONES,
        jobs=JOBS,
        measured_b=dict(B),
        true_b=dict(B),
        chaos=chaos,
        arrivals=arrivals,
    )


class TestLateArrivalKeepAlive:
    """Fuzzer find: offline failures went undetected after a late arrival.

    When the fleet drains, the server parks its keep-alive monitors so
    the event loop can finish.  A job arriving *after* that restarts a
    scheduling round — but the monitors used to stay parked, so a phone
    silently going offline during the new round was never detected: its
    partition was neither completed, checkpointed, nor reported
    unfinished, and the conservation invariant tripped.
    """

    def test_offline_failure_after_late_arrival_is_detected(self):
        # j0 drains in ~11 s; j1 arrives at t=4000 s (monitors parked in
        # between); p0 vanishes mid-partition at t=4005 s.
        scenario = scenario_with(
            chaos=ChaosPlan(
                failures=[PlannedFailure("p0", 4_005_000.0, online=False)]
            ),
            arrivals=((4_000_000.0, "j1"),),
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]

    def test_detection_recorded_in_trace(self):
        from repro.sim.entities import FleetGroundTruth
        from repro.core.greedy import CwcScheduler
        from repro.core.prediction import RuntimePredictor
        from repro.sim.server import CentralServer
        from repro.workloads.mixes import paper_task_profiles

        profiles = paper_task_profiles()
        server = CentralServer(
            PHONES,
            FleetGroundTruth(profiles, deviation_sigma=0.0, seed=1),
            RuntimePredictor(profiles),
            CwcScheduler(),
            B,
            chaos=ChaosPlan(
                failures=[PlannedFailure("p0", 4_005_000.0, online=False)]
            ),
        )
        result = server.run((JOBS[0],), arrivals=((4_000_000.0, JOBS[1]),))
        detected = [
            f for f in result.trace.failures
            if f.phone_id == "p0" and not f.online
        ]
        assert detected, "offline failure after late arrival went undetected"
        assert detected[0].detected_at_ms > 4_005_000.0
        Oracle().check_run(result, JOBS)

    def test_failure_after_full_drain_stays_clean(self):
        # Control: the failure fires after ALL work (including the late
        # arrival's) completed — nothing to detect, nothing lost.
        scenario = scenario_with(
            chaos=ChaosPlan(
                failures=[PlannedFailure("p0", 5_000_000.0, online=False)]
            ),
            arrivals=((4_000_000.0, "j1"),),
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]

    def test_no_arrival_baseline_stays_clean(self):
        scenario = scenario_with(
            chaos=ChaosPlan(
                failures=[PlannedFailure("p0", 2_000.0, online=False)]
            ),
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]


class TestPolicyReplicaAccounting:
    """Tournament finds: replica directives meet chaos mid-flight.

    Proactive replicas ride the speculation machinery, which must keep
    crediting each partition exactly once even when the replica's
    target — or the primary — fails between planning and completion.
    Each scenario here is a hand-shrunk chaos plan from early
    tournament legs; the oracle's conservation and single-credit
    invariants are the assertion.
    """

    def replication_scenario(self, chaos, arrivals=()):
        import dataclasses

        return dataclasses.replace(
            scenario_with(chaos, arrivals), policy="replication"
        )

    def test_replica_target_offline_mid_run_conserves_bytes(self):
        # p1 (the natural replica target) dies 2 s in: the replica is
        # lost with it, but the primary's credit must stand alone.
        scenario = self.replication_scenario(
            chaos=ChaosPlan(
                failures=[PlannedFailure("p1", 2_000.0, online=False)]
            ),
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]

    def test_primary_offline_leaves_replica_to_finish(self):
        scenario = self.replication_scenario(
            chaos=ChaosPlan(
                failures=[PlannedFailure("p0", 2_000.0, online=False)]
            ),
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]

    def test_replicas_with_late_arrival_stay_single_credit(self):
        # The parked-monitor interaction (above) crossed with proactive
        # replication: the arrival restarts a round whose directives
        # must not double-credit the drained first round's jobs.
        scenario = self.replication_scenario(
            chaos=ChaosPlan(
                failures=[PlannedFailure("p0", 4_005_000.0, online=False)]
            ),
            arrivals=((4_000_000.0, "j1"),),
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]

    def test_energy_policy_under_offline_chaos_stays_clean(self):
        import dataclasses

        scenario = dataclasses.replace(
            scenario_with(
                chaos=ChaosPlan(
                    failures=[
                        PlannedFailure("p1", 2_000.0, online=False)
                    ]
                ),
            ),
            policy="energy-aware",
        )
        outcome = run_scenario(scenario)
        assert outcome.ok, [str(v) for v in outcome.violations]
