"""The Monte Carlo policy tournament harness.

Determinism is the backbone: the same seed must produce the same
digest on a rerun *and* through the artifact replay path, and the
oracle must stay clean on every leg.  The statistics layer (bootstrap
bands, paired-ratio significance) is pinned on synthetic data where
the right answer is computable by hand.
"""

import dataclasses
import json
import random

import pytest

from repro.verify.tournament import (
    METRICS,
    REGIMES,
    TOURNAMENT_FORMAT,
    ChaosRegime,
    PolicyCell,
    TournamentLeg,
    bootstrap_ci,
    replay_tournament,
    run_leg,
    run_tournament,
    write_tournament_artifact,
)

POLICIES = ("cwc-greedy", "replication", "shortest-expected")


def small_tournament(seed=5, runs=2, regimes=("calm", "churn")):
    return run_tournament(
        runs, policies=POLICIES, regimes=regimes, seed=seed
    )


# ---------------------------------------------------------------------------
# regimes
# ---------------------------------------------------------------------------


class TestRegimes:
    def test_stock_regimes_exist(self):
        assert set(REGIMES) >= {"calm", "churn"}
        for regime in REGIMES.values():
            assert regime.name
            assert regime.duration_ms > 0

    def test_bad_monkey_rates_fail_fast(self):
        with pytest.raises(ValueError):
            ChaosRegime(
                name="bad", description="", monkey={"crash_rate": -1.0}
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ChaosRegime(name="", description="")

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ChaosRegime(name="x", description="", duration_ms=0.0)

    def test_sampling_is_deterministic_given_rng(self):
        regime = REGIMES["churn"]
        ids = [f"p{i}" for i in range(6)]
        one = regime.sample_plan(ids, random.Random("fixed"))
        two = regime.sample_plan(ids, random.Random("fixed"))
        assert one.to_dict() == two.to_dict()


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


class TestBootstrap:
    def test_empty_and_singleton_collapse(self):
        rng = random.Random(0)
        assert bootstrap_ci([], rng=rng) == (0.0, 0.0)
        assert bootstrap_ci([4.2], rng=rng) == (4.2, 4.2)

    def test_band_brackets_the_mean(self):
        values = [float(v) for v in range(1, 21)]
        lo, hi = bootstrap_ci(values, rng=random.Random(1))
        mean = sum(values) / len(values)
        assert lo <= mean <= hi
        assert lo < hi

    def test_deterministic_given_rng_seed(self):
        values = [1.0, 5.0, 9.0, 2.0, 7.0]
        a = bootstrap_ci(values, rng=random.Random("s"))
        b = bootstrap_ci(values, rng=random.Random("s"))
        assert a == b

    def test_parameter_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="resamples"):
            bootstrap_ci([1.0, 2.0], rng=rng, resamples=0)
        with pytest.raises(ValueError, match="alpha"):
            bootstrap_ci([1.0, 2.0], rng=rng, alpha=1.5)


# ---------------------------------------------------------------------------
# tournaments
# ---------------------------------------------------------------------------


class TestTournamentDeterminism:
    def test_same_seed_byte_identical_digest(self):
        first = small_tournament()
        second = small_tournament()
        assert first.digest == second.digest
        assert [leg.digest_line() for leg in first.legs] == [
            leg.digest_line() for leg in second.legs
        ]

    def test_different_seed_changes_digest(self):
        assert small_tournament(seed=5).digest != small_tournament(
            seed=6
        ).digest

    def test_oracle_clean_and_fully_crossed(self):
        report = small_tournament()
        assert report.ok
        assert report.violation_count == 0
        assert len(report.legs) == 2 * len(POLICIES) * len(report.regimes)
        # Paired design: every policy saw the same scenarios (digests
        # differ only through the scenario's policy field).
        for regime in report.regimes:
            seeds = {
                policy: sorted(
                    leg.scenario_seed
                    for leg in report.legs
                    if leg.regime == regime and leg.policy == policy
                )
                for policy in report.policies
            }
            baseline = seeds[report.policies[0]]
            assert all(s == baseline for s in seeds.values())

    def test_scoreboard_covers_every_cell(self):
        report = small_tournament()
        assert len(report.cells) == len(POLICIES) * len(report.regimes)
        for cell in report.cells:
            assert cell.legs == report.runs
            assert set(cell.stats) == set(METRICS)
            if cell.policy != "cwc-greedy":
                # Paired ratios exist for makespan (never zero).
                assert "makespan_ms" in cell.vs_default
        for regime in report.regimes:
            for metric in METRICS:
                verdict = report.winners[regime][metric]
                assert verdict["policy"] in report.policies

    def test_cell_lookup_and_summary(self):
        report = small_tournament()
        cell = report.cell("replication", "calm")
        assert isinstance(cell, PolicyCell)
        with pytest.raises(KeyError):
            report.cell("replication", "no-such-regime")
        lines = report.summary_lines()
        assert any("regime calm" in line for line in lines)
        assert any(report.digest in line for line in lines)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="runs"):
            run_tournament(0)
        with pytest.raises(ValueError, match="unknown policy"):
            run_tournament(1, policies=("round-robin",))
        with pytest.raises(ValueError, match="at least one policy"):
            run_tournament(1, policies=())
        with pytest.raises(ValueError, match="duplicate policies"):
            run_tournament(1, policies=("cwc-greedy", "cwc-greedy"))
        with pytest.raises(ValueError, match="unknown chaos regime"):
            run_tournament(1, regimes=("hurricane",))
        with pytest.raises(ValueError, match="at least one regime"):
            run_tournament(1, regimes=())
        with pytest.raises(ValueError, match="duplicate regime"):
            run_tournament(
                1, regimes=(REGIMES["calm"], REGIMES["calm"])
            )

    def test_progress_callback_sees_every_leg(self):
        seen = []
        run_tournament(
            1,
            policies=("cwc-greedy",),
            regimes=("calm",),
            seed=3,
            progress=lambda index, leg: seen.append((index, leg.policy)),
        )
        assert seen == [(0, "cwc-greedy")]


class TestRunLeg:
    def test_crash_becomes_no_crash_violation(self):
        from repro.verify.fuzz import generate_scenario

        scenario = generate_scenario(11)
        broken = dataclasses.replace(scenario, measured_b={})
        leg = run_leg(broken)
        assert not leg.ok
        assert leg.violations == ("no-crash",)
        assert leg.error is not None


# ---------------------------------------------------------------------------
# artifacts and replay
# ---------------------------------------------------------------------------


class TestArtifacts:
    def test_write_replay_round_trip(self, tmp_path):
        report = run_tournament(
            1, policies=POLICIES[:2], regimes=("calm",), seed=9
        )
        path = write_tournament_artifact(report, tmp_path)
        assert path.name == "tournament-9.json"
        replay = replay_tournament(path)
        assert replay.digest_matches
        assert replay.report.digest == report.digest
        assert replay.recorded_digest == report.digest

    def test_tampered_digest_detected(self, tmp_path):
        report = run_tournament(
            1, policies=POLICIES[:2], regimes=("calm",), seed=9
        )
        path = write_tournament_artifact(report, tmp_path)
        payload = json.loads(path.read_text())
        payload["digest"] = "0" * 64
        path.write_text(json.dumps(payload))
        replay = replay_tournament(path)
        assert not replay.digest_matches

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "tournament-1.json"
        path.write_text(json.dumps({"format": TOURNAMENT_FORMAT + 1}))
        with pytest.raises(ValueError, match="format"):
            replay_tournament(path)

    def test_regime_without_rates_rejected(self, tmp_path):
        report = run_tournament(
            1, policies=("cwc-greedy",), regimes=("calm",), seed=9
        )
        path = write_tournament_artifact(report, tmp_path)
        payload = json.loads(path.read_text())
        del payload["regimes"][0]["monkey"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="monkey"):
            replay_tournament(path)

    def test_replay_uses_serialised_regime_not_stock_table(self, tmp_path):
        # A custom regime absent from REGIMES must replay fine.
        custom = ChaosRegime(
            name="custom",
            description="tiny",
            monkey={"crash_rate": 0.1},
            duration_ms=50_000.0,
        )
        report = run_tournament(
            1, policies=("cwc-greedy",), regimes=(custom,), seed=4
        )
        path = write_tournament_artifact(report, tmp_path)
        replay = replay_tournament(path)
        assert replay.digest_matches


# ---------------------------------------------------------------------------
# scoring on synthetic legs
# ---------------------------------------------------------------------------


def synthetic_leg(policy, regime, seed, makespan, energy=100.0, recovery=0.0):
    return TournamentLeg(
        policy=policy,
        regime=regime,
        scenario_seed=seed,
        scenario_digest=f"d{seed}",
        makespan_ms=makespan,
        energy_j=energy,
        recovery_ms=recovery,
        violations=(),
    )


class TestScoring:
    def test_paired_ratio_flags_consistent_winner(self):
        from repro.verify.tournament import _score

        legs = []
        for seed in range(8):
            base = 1000.0 * (seed + 1)
            legs.append(synthetic_leg("cwc-greedy", "r", seed, base))
            # Challenger is always exactly 20% faster: raw bands overlap
            # wildly across scenarios, but the paired ratio is pinned.
            legs.append(
                synthetic_leg("shortest-expected", "r", seed, base * 0.8)
            )
        cells, winners = _score(
            legs, ("cwc-greedy", "shortest-expected"), ("r",)
        )
        verdict = winners["r"]["makespan_ms"]
        assert verdict["policy"] == "shortest-expected"
        assert verdict["significant"] is True
        challenger = next(
            c for c in cells if c.policy == "shortest-expected"
        )
        mean, lo, hi = challenger.vs_default["makespan_ms"]
        assert mean == pytest.approx(0.8)
        assert lo == pytest.approx(0.8)
        assert hi == pytest.approx(0.8)

    def test_noisy_challenger_not_significant(self):
        from repro.verify.tournament import _score

        rng = random.Random(13)
        legs = []
        for seed in range(8):
            base = 1000.0
            legs.append(synthetic_leg("cwc-greedy", "r", seed, base))
            legs.append(
                synthetic_leg(
                    "shortest-expected",
                    "r",
                    seed,
                    base * rng.uniform(0.7, 1.4),
                )
            )
        _cells, winners = _score(
            legs, ("cwc-greedy", "shortest-expected"), ("r",)
        )
        assert winners["r"]["makespan_ms"]["significant"] is False

    def test_default_win_is_never_marked_significant(self):
        from repro.verify.tournament import _score

        legs = []
        for seed in range(4):
            legs.append(synthetic_leg("cwc-greedy", "r", seed, 500.0))
            legs.append(
                synthetic_leg("shortest-expected", "r", seed, 900.0)
            )
        _cells, winners = _score(
            legs, ("cwc-greedy", "shortest-expected"), ("r",)
        )
        verdict = winners["r"]["makespan_ms"]
        assert verdict["policy"] == "cwc-greedy"
        assert verdict["significant"] is False

    def test_zero_baseline_metric_skipped_in_ratios(self):
        from repro.verify.tournament import _score

        legs = [
            synthetic_leg("cwc-greedy", "r", 0, 500.0, recovery=0.0),
            synthetic_leg(
                "shortest-expected", "r", 0, 400.0, recovery=100.0
            ),
        ]
        cells, _winners = _score(
            legs, ("cwc-greedy", "shortest-expected"), ("r",)
        )
        challenger = next(
            c for c in cells if c.policy == "shortest-expected"
        )
        assert "recovery_ms" not in challenger.vs_default
