"""Unit tests for the invariant registry and each registered checker."""

from types import SimpleNamespace

import pytest

from repro.verify.invariants import (
    InvariantViolation,
    RunContext,
    Violation,
    run_invariant,
    run_registry,
    schedule_registry,
)
from repro.sim.server import RunResult
from repro.sim.trace import (
    CompletionRecord,
    FailureRecord,
    ResilienceEvent,
    Span,
    SpanKind,
    TimelineTrace,
)
from repro.core.model import Job, JobKind

EXPECTED_RUN = {
    "sequential-phones",
    "conservation",
    "no-duplicate-credit",
    "no-zombie-work",
    "copy-before-execute",
    "makespan-consistency",
    "telemetry-agreement",
    "span-tree",
    "span-nesting",
    "span-dispatch-match",
}
EXPECTED_SCHEDULE = {
    "coverage",
    "capacity-soundness",
    "makespan-prediction",
    "lp-sandwich",
}


def result_with(spans=(), completions=(), failures=(), rejoins=(),
                unfinished=()):
    trace = TimelineTrace()
    records = (
        [("span", s, s.start_ms) for s in spans]
        + [("completion", c, c.time_ms) for c in completions]
        + [("failure", f, f.detected_at_ms) for f in failures]
        + [("rejoin", r, r.time_ms) for r in rejoins]
    )
    records.sort(key=lambda rec: rec[2])
    for kind, record, at_ms in records:
        if kind == "span":
            trace.add_span(record, at_ms=at_ms)
        elif kind == "completion":
            trace.add_completion(record, at_ms=at_ms)
        elif kind == "failure":
            trace.add_failure(record, at_ms=at_ms)
        else:
            trace.add_resilience_event(record, at_ms=at_ms)
    return RunResult(trace=trace, rounds=[], unfinished_jobs=tuple(unfinished))


def check(name, result, jobs=()):
    run_registry()[name].check(RunContext(result=result, jobs=jobs))


JOB = Job("j", "primes", JobKind.BREAKABLE, 10.0, 100.0)


class TestRegistry:
    def test_expected_invariants_registered(self):
        assert set(run_registry()) == EXPECTED_RUN
        assert set(schedule_registry()) == EXPECTED_SCHEDULE

    def test_registry_returns_snapshots(self):
        snapshot = run_registry()
        snapshot.clear()
        assert set(run_registry()) == EXPECTED_RUN

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_invariant("conservation", "dup")(lambda ctx: None)

    def test_invariant_metadata(self):
        inv = run_registry()["conservation"]
        assert inv.scope == "run"
        assert inv.description

    def test_violation_str(self):
        violation = Violation("conservation", "run", "lost 3 KB")
        assert str(violation) == "[run:conservation] lost 3 KB"


class TestSequentialPhones:
    def test_disjoint_spans_pass(self):
        result = result_with([
            Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0),
            Span("p", "j", SpanKind.EXECUTE, 10.0, 20.0, input_kb=1.0),
        ])
        check("sequential-phones", result)

    def test_overlap_detected(self):
        result = result_with([
            Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0),
            Span("p", "j", SpanKind.EXECUTE, 5.0, 20.0, input_kb=1.0),
        ])
        with pytest.raises(InvariantViolation, match="overlaps"):
            check("sequential-phones", result)

    def test_overlap_on_other_phone_is_independent(self):
        result = result_with([
            Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0),
            Span("q", "j", SpanKind.COPY, 5.0, 20.0, input_kb=1.0),
        ])
        check("sequential-phones", result)


class TestConservation:
    def test_exact_accounting_passes(self):
        result = result_with(
            completions=[CompletionRecord("p", "j", 10.0, 100.0, 5.0)],
        )
        check("conservation", result, jobs=(JOB,))

    def test_lost_input_detected(self):
        result = result_with()
        with pytest.raises(InvariantViolation, match="not conserved"):
            check("conservation", result, jobs=(JOB,))

    def test_unfinished_jobs_count(self):
        result = result_with(unfinished=(JOB,))
        check("conservation", result, jobs=(JOB,))

    def test_checkpointed_work_counts(self):
        result = result_with(
            completions=[CompletionRecord("p", "j", 10.0, 60.0, 5.0)],
            failures=[FailureRecord("p", 9.0, 11.0, online=True,
                                    processed_kb=40.0)],
        )
        check("conservation", result, jobs=(JOB,))


class TestNoDuplicateCredit:
    def test_single_credit_passes(self):
        result = result_with(
            completions=[CompletionRecord("p", "j", 10.0, 100.0, 5.0)],
        )
        check("no-duplicate-credit", result, jobs=(JOB,))

    def test_double_credit_detected(self):
        result = result_with(
            completions=[
                CompletionRecord("p", "j", 10.0, 100.0, 5.0),
                CompletionRecord("q", "j", 11.0, 100.0, 5.0),
            ],
        )
        with pytest.raises(InvariantViolation, match="over-credited"):
            check("no-duplicate-credit", result, jobs=(JOB,))

    def test_unknown_job_detected(self):
        result = result_with(
            completions=[CompletionRecord("p", "ghost", 10.0, 1.0, 5.0)],
        )
        with pytest.raises(InvariantViolation, match="unknown job"):
            check("no-duplicate-credit", result, jobs=(JOB,))


class TestNoZombieWork:
    FAILURE = FailureRecord("p", 50.0, 60.0, online=False)

    def test_span_before_failure_passes(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0)],
            failures=[self.FAILURE],
        )
        check("no-zombie-work", result)

    def test_uninterrupted_crossing_span_detected(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 40.0, 80.0, input_kb=1.0)],
            failures=[self.FAILURE],
        )
        with pytest.raises(InvariantViolation, match="uninterrupted span"):
            check("no-zombie-work", result)

    def test_interrupted_crossing_span_passes(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 40.0, 80.0, input_kb=1.0,
                        interrupted=True)],
            failures=[self.FAILURE],
        )
        check("no-zombie-work", result)

    def test_dark_window_span_detected(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 70.0, 80.0, input_kb=1.0)],
            failures=[self.FAILURE],
        )
        with pytest.raises(InvariantViolation, match="while dark"):
            check("no-zombie-work", result)

    def test_work_after_rejoin_passes(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 70.0, 80.0, input_kb=1.0)],
            failures=[self.FAILURE],
            rejoins=[ResilienceEvent("rejoin", "p", 65.0)],
        )
        check("no-zombie-work", result)


class TestCopyBeforeExecute:
    def test_copied_then_executed_passes(self):
        result = result_with([
            Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0),
            Span("p", "j", SpanKind.EXECUTE, 10.0, 20.0, input_kb=1.0),
        ])
        check("copy-before-execute", result)

    def test_execute_without_copy_detected(self):
        result = result_with([
            Span("p", "j", SpanKind.EXECUTE, 0.0, 10.0, input_kb=1.0),
        ])
        with pytest.raises(InvariantViolation, match="without ever copying"):
            check("copy-before-execute", result)


class TestMakespanConsistency:
    def test_real_result_is_consistent(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0)],
        )
        check("makespan-consistency", result)

    def test_disagreeing_reported_makespan_detected(self):
        # RunResult derives its makespan from the trace, so a fake
        # result stands in for a reporting bug.
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0))
        fake = SimpleNamespace(
            trace=trace, unfinished_jobs=(), measured_makespan_ms=99.0
        )
        with pytest.raises(InvariantViolation, match="does not equal"):
            check("makespan-consistency", fake)

    def test_completion_after_makespan_detected(self):
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0))
        trace.add_completion(
            CompletionRecord("p", "j", 50.0, 1.0, 5.0), at_ms=50.0
        )
        result = RunResult(trace=trace, rounds=[])
        with pytest.raises(InvariantViolation, match="after the makespan"):
            check("makespan-consistency", result)


class TestTelemetryAgreement:
    def test_skips_without_events(self):
        result = result_with(
            spans=[Span("p", "j", SpanKind.COPY, 0.0, 10.0, input_kb=1.0)],
        )
        check("telemetry-agreement", result)

    def test_armed_run_agrees_and_tamper_detected(self):
        from repro.verify.fuzz import generate_scenario, run_scenario

        scenario = generate_scenario(7)
        outcome = run_scenario(scenario)
        assert outcome.ok  # telemetry-agreement ran (events were armed)

    def test_trace_event_divergence_detected(self):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry.create(run_id="tamper")
        telemetry.event(
            "server",
            "span",
            sim_time_ms=0.0,
            phone_id="p",
            job_id="j",
            span="copy",
            start_ms=0.0,
            end_ms=10.0,
            input_kb=1.0,
        )
        trace = TimelineTrace()
        trace.add_span(Span("p", "j", SpanKind.COPY, 0.0, 25.0, input_kb=1.0))
        result = RunResult(trace=trace, rounds=[])
        ctx = RunContext(
            result=result, jobs=(), events=telemetry.bus.events
        )
        with pytest.raises(InvariantViolation, match="disagreement"):
            run_registry()["telemetry-agreement"].check(ctx)


def _span_dict(span_id, parent_id=None, name="work", *, start=0.0, end=1.0,
               sim=None, process="main", category="sim", status="ok",
               attrs=None):
    data = {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "category": category,
        "process": process,
        "start_wall_s": start,
        "end_wall_s": end,
        "status": status,
        "attrs": attrs or {},
    }
    if sim is not None:
        data["start_sim_ms"], data["end_sim_ms"] = sim
    return data


def check_spans(name, spans, events=None):
    ctx = RunContext(result=None, jobs=(), events=events, spans=spans)
    run_registry()[name].check(ctx)


class TestSpanTree:
    def test_skips_without_spans(self):
        check_spans("span-tree", None)

    def test_forest_passes(self):
        check_spans("span-tree", [
            _span_dict(1, None, "run"),
            _span_dict(2, 1, "round"),
            _span_dict(3, None, "other_root"),
        ])

    def test_trace_span_objects_accepted(self):
        from repro.obs.tracing import Tracer

        tracer = Tracer("t")
        with tracer.span("run"):
            with tracer.span("round"):
                pass
        check_spans("span-tree", tracer.spans)

    def test_duplicate_id_detected(self):
        with pytest.raises(InvariantViolation, match="duplicate span id"):
            check_spans("span-tree", [_span_dict(1), _span_dict(1)])

    def test_missing_parent_detected(self):
        with pytest.raises(InvariantViolation, match="missing"):
            check_spans("span-tree", [_span_dict(2, parent_id=99)])

    def test_parent_newer_than_child_detected(self):
        spans = [_span_dict(1, parent_id=2), _span_dict(2)]
        with pytest.raises(InvariantViolation, match="newer or equal id"):
            check_spans("span-tree", spans)

    def test_malformed_span_dict_detected(self):
        with pytest.raises(InvariantViolation, match="malformed span"):
            check_spans("span-tree", [{"span_id": "x"}])


class TestSpanNesting:
    def test_contained_child_passes(self):
        check_spans("span-nesting", [
            _span_dict(1, None, "run", start=0.0, end=10.0, sim=(0.0, 500.0)),
            _span_dict(2, 1, "round", start=1.0, end=9.0, sim=(0.0, 400.0)),
        ])

    def test_wall_escape_detected(self):
        spans = [
            _span_dict(1, None, "run", start=0.0, end=10.0),
            _span_dict(2, 1, "round", start=1.0, end=11.0),
        ]
        with pytest.raises(InvariantViolation, match="wall interval"):
            check_spans("span-nesting", spans)

    def test_sim_escape_detected(self):
        spans = [
            _span_dict(1, None, "run", start=0.0, end=10.0, sim=(0.0, 100.0)),
            _span_dict(2, 1, "round", start=1.0, end=9.0, sim=(0.0, 200.0)),
        ]
        with pytest.raises(InvariantViolation, match="sim interval"):
            check_spans("span-nesting", spans)

    def test_missing_sim_interval_skips_sim_check(self):
        # Campaign "night" spans carry no sim times; their adopted
        # children must not be compared on the sim clock against them.
        check_spans("span-nesting", [
            _span_dict(1, None, "night", start=0.0, end=10.0),
            _span_dict(2, 1, "run", start=1.0, end=9.0, sim=(0.0, 1e9)),
        ])


class TestSpanDispatchMatch:
    EVENT = {
        "component": "server",
        "kind": "dispatch",
        "sim_time_ms": 5.0,
        "payload": {"phone_id": "p1", "job_id": "j1"},
    }
    COPY = _span_dict(
        1, None, "copy", category="fleet", process="fleet/p1",
        start=0.0, end=1.0, sim=(5.0, 20.0), attrs={"job_id": "j1"},
    )

    def test_matched_pair_passes(self):
        check_spans("span-dispatch-match", [self.COPY], events=[self.EVENT])

    def test_skips_without_events(self):
        check_spans("span-dispatch-match", [self.COPY], events=None)

    def test_unmatched_dispatch_detected(self):
        with pytest.raises(InvariantViolation, match="dispatch event"):
            check_spans("span-dispatch-match", [], events=[self.EVENT])

    def test_unmatched_copy_span_detected(self):
        with pytest.raises(InvariantViolation, match="copy span"):
            check_spans("span-dispatch-match", [self.COPY], events=[])


class TestSpanInvariantsEndToEnd:
    def test_traced_fuzz_scenario_passes_all_span_invariants(self):
        from repro.verify.fuzz import generate_scenario, run_scenario

        outcome = run_scenario(generate_scenario(11))
        assert outcome.ok, outcome.violations

    def test_traced_chaos_scenario_passes(self):
        from repro.verify.fuzz import generate_scenario, run_scenario

        # Seed 2 injects chaos faults: interrupted fleet spans must
        # still form a legal tree matched to their dispatch events.
        scenario = generate_scenario(2)
        outcome = run_scenario(scenario)
        assert outcome.ok, outcome.violations
