"""Tests for the phone sandbox: execution, suspension, resumption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.executable import Finished, Suspended, TaskExecutable
from repro.runtime.registry import TaskRegistry
from repro.runtime.sandbox import PhoneSandbox


class SumTask(TaskExecutable):
    """Adds integer items — simple enough to verify by hand."""

    name = "sum"
    breakable = True

    def initial_state(self):
        return 0

    def process_item(self, state, item):
        return state + item

    def finalize(self, state):
        return state

    def aggregate(self, partials):
        return sum(partials)


@pytest.fixture
def sandbox():
    registry = TaskRegistry()
    registry.register(SumTask())
    return PhoneSandbox(registry)


class TestExecute:
    def test_complete_run(self, sandbox):
        outcome = sandbox.execute("sum", [1, 2, 3, 4])
        assert isinstance(outcome, Finished)
        assert outcome.result == 10
        assert outcome.items_processed == 4

    def test_empty_input(self, sandbox):
        outcome = sandbox.execute("sum", [])
        assert isinstance(outcome, Finished)
        assert outcome.result == 0

    def test_max_items_suspends(self, sandbox):
        outcome = sandbox.execute("sum", [1, 2, 3, 4], max_items=2)
        assert isinstance(outcome, Suspended)
        assert outcome.position == 2
        assert outcome.state == 3  # 1 + 2

    def test_resume_continues_from_checkpoint(self, sandbox):
        suspended = sandbox.execute("sum", [1, 2, 3, 4], max_items=2)
        outcome = sandbox.execute("sum", [1, 2, 3, 4], resume_from=suspended)
        assert isinstance(outcome, Finished)
        assert outcome.result == 10
        assert outcome.items_processed == 2  # only the remainder

    def test_resume_on_different_sandbox_instance(self, sandbox):
        """The checkpoint migrates between 'phones' (sandboxes)."""
        suspended = sandbox.execute("sum", [5, 6, 7], max_items=1)
        other_registry = TaskRegistry()
        other_registry.register(SumTask())
        other = PhoneSandbox(other_registry)
        outcome = other.execute("sum", [5, 6, 7], resume_from=suspended)
        assert isinstance(outcome, Finished)
        assert outcome.result == 18

    def test_max_items_at_boundary_finishes(self, sandbox):
        outcome = sandbox.execute("sum", [1, 2], max_items=2)
        assert isinstance(outcome, Finished)

    def test_bad_resume_position_rejected(self, sandbox):
        bad = Suspended(state=0, position=99)
        with pytest.raises(ValueError, match="position"):
            sandbox.execute("sum", [1, 2], resume_from=bad)

    def test_unknown_task_raises(self, sandbox):
        from repro.runtime.registry import TaskLoadError

        with pytest.raises(TaskLoadError):
            sandbox.execute("nope", [1])

    @settings(max_examples=50, deadline=None)
    @given(
        items=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=50),
        cut=st.integers(min_value=0, max_value=60),
    )
    def test_suspend_resume_equals_one_shot(self, items, cut):
        """Migration invariant: interrupting after any number of items
        and resuming elsewhere must give exactly the one-shot result."""
        registry = TaskRegistry()
        registry.register(SumTask())
        sandbox = PhoneSandbox(registry)
        direct = sandbox.execute("sum", items)
        assert isinstance(direct, Finished)
        first = sandbox.execute("sum", items, max_items=cut)
        if isinstance(first, Finished):
            assert first.result == direct.result
        else:
            second = sandbox.execute("sum", items, resume_from=first)
            assert isinstance(second, Finished)
            assert second.result == direct.result


class TestAggregate:
    def test_breakable_aggregation(self, sandbox):
        assert sandbox.aggregate("sum", [3, 4, 5]) == 12

    def test_execute_text_uses_task_splitter(self):
        registry = TaskRegistry()
        registry.load("repro.workloads.primes:PrimeCountTask")
        sandbox = PhoneSandbox(registry)
        outcome = sandbox.execute_text("primes", "2\n3\n4\n5")
        assert isinstance(outcome, Finished)
        assert outcome.result == 3


class TestDefaultAggregate:
    def test_atomic_default_rejects_multiple_partials(self):
        class AtomicTask(SumTask):
            name = "atomic"
            breakable = False
            aggregate = TaskExecutable.aggregate

        task = AtomicTask()
        assert task.aggregate([42]) == 42
        with pytest.raises(ValueError):
            task.aggregate([1, 2])
