"""Tests for the TaskExecutable contract (the paper's Task.java shape)."""

import pytest

from repro.runtime.executable import (
    ExecutionOutcome,
    Finished,
    Suspended,
    TaskExecutable,
)


class WordTotal(TaskExecutable):
    """Minimal breakable task: counts words per line, sums partials."""

    name = "word-total"
    executable_kb = 12.0
    breakable = True

    def initial_state(self):
        return 0

    def process_item(self, state, item):
        return state + len(item.split())

    def finalize(self, state):
        return state

    def aggregate(self, partials):
        return sum(partials)


class Identity(TaskExecutable):
    """Minimal atomic task relying entirely on the ABC defaults."""

    name = "identity"
    breakable = False

    def initial_state(self):
        return []

    def process_item(self, state, item):
        state.append(item)
        return state

    def finalize(self, state):
        return tuple(state)


class TestAbstractContract:
    def test_cannot_instantiate_abstract_base(self):
        with pytest.raises(TypeError):
            TaskExecutable()

    def test_partial_implementation_rejected(self):
        class Incomplete(TaskExecutable):
            def initial_state(self):
                return None

        with pytest.raises(TypeError):
            Incomplete()

    def test_defaults(self):
        task = Identity()
        assert task.executable_kb == 50.0
        assert task.breakable is False
        assert Identity.breakable is False
        assert WordTotal().breakable is True


class TestFoldExecution:
    def test_items_fold_into_result(self):
        task = WordTotal()
        state = task.initial_state()
        for item in ("one two", "three", "four five six"):
            state = task.process_item(state, item)
        assert task.finalize(state) == 6

    def test_items_from_text_round_trip(self):
        task = WordTotal()
        text = "alpha beta\ngamma\n\ndelta epsilon"
        items = list(task.items_from_text(text))
        assert items == ["alpha beta", "gamma", "", "delta epsilon"]
        state = task.initial_state()
        for item in items:
            state = task.process_item(state, item)
        assert task.finalize(state) == 5

    def test_suspend_and_resume_matches_straight_run(self):
        task = WordTotal()
        items = ["a b", "c", "d e f", "g"]
        straight = task.initial_state()
        for item in items:
            straight = task.process_item(straight, item)

        # Suspend after two items (the JavaGO undock area), resume.
        state = task.initial_state()
        for item in items[:2]:
            state = task.process_item(state, item)
        snapshot = Suspended(state=state, position=2)
        resumed = snapshot.state
        for item in items[snapshot.position:]:
            resumed = task.process_item(resumed, item)
        assert task.finalize(resumed) == task.finalize(straight)


class TestAggregation:
    def test_breakable_aggregates_partials(self):
        assert WordTotal().aggregate([3, 4, 5]) == 12

    def test_atomic_default_accepts_single_partial(self):
        assert Identity().aggregate([("x",)]) == ("x",)

    def test_atomic_default_rejects_multiple_partials(self):
        with pytest.raises(ValueError, match="cannot aggregate"):
            Identity().aggregate([("x",), ("y",)])


class TestOutcomes:
    def test_outcome_union_members(self):
        finished = Finished(result=6, items_processed=3)
        suspended = Suspended(state=2, position=1)
        assert isinstance(finished, ExecutionOutcome)
        assert isinstance(suspended, ExecutionOutcome)

    def test_outcomes_are_frozen(self):
        finished = Finished(result=6, items_processed=3)
        with pytest.raises(AttributeError):
            finished.result = 7

    def test_registered_workloads_honour_the_contract(self):
        from repro.runtime.registry import TaskRegistry
        from repro.workloads.primes import PrimeCountTask
        from repro.workloads.wordcount import WordCountTask

        registry = TaskRegistry()
        for task in (PrimeCountTask(), WordCountTask()):
            registry.register(task)
            assert isinstance(task, TaskExecutable)
            assert task.name in registry
