"""Tests for dynamic task loading (the reflection analogue)."""

import pytest

from repro.runtime.executable import TaskExecutable
from repro.runtime.registry import TaskLoadError, TaskRegistry


class DummyTask(TaskExecutable):
    name = "dummy"

    def initial_state(self):
        return 0

    def process_item(self, state, item):
        return state + 1

    def finalize(self, state):
        return state


class NamelessTask(DummyTask):
    name = ""


class TestRegister:
    def test_register_and_get(self):
        registry = TaskRegistry()
        task = registry.register(DummyTask())
        assert registry.get("dummy") is task
        assert "dummy" in registry
        assert registry.names() == ("dummy",)

    def test_duplicate_name_rejected(self):
        registry = TaskRegistry()
        registry.register(DummyTask())
        with pytest.raises(TaskLoadError, match="already registered"):
            registry.register(DummyTask())

    def test_nameless_task_rejected(self):
        with pytest.raises(TaskLoadError, match="no name"):
            TaskRegistry().register(NamelessTask())

    def test_unknown_get_raises(self):
        with pytest.raises(TaskLoadError, match="no task registered"):
            TaskRegistry().get("missing")


class TestDynamicLoad:
    def test_load_by_specifier(self):
        registry = TaskRegistry()
        task = registry.load("repro.workloads.primes:PrimeCountTask")
        assert task.name == "primes"
        assert registry.get("primes") is task

    def test_load_with_constructor_args(self):
        registry = TaskRegistry()
        task = registry.load("repro.workloads.wordcount:WordCountTask", "night")
        assert task.word == "night"

    def test_malformed_specifier_rejected(self):
        with pytest.raises(TaskLoadError, match="module.path:ClassName"):
            TaskRegistry().load("just-a-name")

    def test_unknown_module_rejected(self):
        with pytest.raises(TaskLoadError, match="cannot import"):
            TaskRegistry().load("no.such.module:Task")

    def test_unknown_class_rejected(self):
        with pytest.raises(TaskLoadError, match="no class"):
            TaskRegistry().load("repro.workloads.primes:Nope")

    def test_non_task_class_rejected(self):
        with pytest.raises(TaskLoadError, match="not a TaskExecutable"):
            TaskRegistry().load("repro.workloads.primes:is_prime")

    def test_load_all_paper_tasks(self):
        registry = TaskRegistry()
        for spec in (
            "repro.workloads.primes:PrimeCountTask",
            "repro.workloads.wordcount:WordCountTask",
            "repro.workloads.photoblur:PhotoBlurTask",
            "repro.workloads.maxint:MaxIntTask",
        ):
            registry.load(spec)
        assert set(registry.names()) == {"primes", "wordcount", "blur", "maxint"}
