"""Tests for task packaging (the .jar-shipping analogue)."""

import pytest

from repro.core.model import Job, JobKind
from repro.runtime.packager import (
    PACKAGE_OVERHEAD_KB,
    TaskPackage,
    install_package,
    package_task,
)
from repro.runtime.registry import TaskLoadError, TaskRegistry
from repro.workloads.maxint import MaxIntTask
from repro.workloads.primes import PrimeCountTask
from repro.workloads.wordcount import WordCountTask


class TestPackageTask:
    def test_packages_paper_task(self):
        package = package_task(PrimeCountTask)
        assert package.name == "primes"
        assert package.specifier == "repro.workloads.primes:PrimeCountTask"
        assert package.executable_kb > PACKAGE_OVERHEAD_KB

    def test_size_measured_from_source(self):
        primes = package_task(PrimeCountTask)
        maxint = package_task(MaxIntTask)
        # Different modules -> different (positive) sizes.
        assert primes.executable_kb != maxint.executable_kb

    def test_constructor_arguments_captured(self):
        package = package_task(WordCountTask, "lumber", name="count-lumber")
        assert package.args == ("lumber",)
        assert package.kwargs == {"name": "count-lumber"}
        assert package.name == "count-lumber"

    def test_bad_constructor_arguments_fail_fast(self):
        with pytest.raises(ValueError):
            package_task(WordCountTask, "")

    def test_non_task_class_rejected(self):
        with pytest.raises(TaskLoadError):
            package_task(dict)  # type: ignore[arg-type]

    def test_package_validation(self):
        with pytest.raises(ValueError):
            TaskPackage(name="", specifier="m:C", executable_kb=1.0)
        with pytest.raises(ValueError):
            TaskPackage(name="x", specifier="no-colon", executable_kb=1.0)
        with pytest.raises(ValueError):
            TaskPackage(name="x", specifier="m:C", executable_kb=0.0)


class TestInstallPackage:
    def test_round_trip(self):
        package = package_task(WordCountTask, "garden", name="count-garden")
        registry = TaskRegistry()
        task = install_package(registry, package)
        assert registry.get("count-garden") is task
        assert task.word == "garden"

    def test_install_on_many_phones(self):
        """The same package installs on every phone's registry."""
        package = package_task(PrimeCountTask)
        for _ in range(3):
            registry = TaskRegistry()
            install_package(registry, package)
            assert "primes" in registry

    def test_name_mismatch_detected(self):
        package = TaskPackage(
            name="wrong",
            specifier="repro.workloads.primes:PrimeCountTask",
            executable_kb=5.0,
        )
        with pytest.raises(TaskLoadError, match="wrong"):
            install_package(TaskRegistry(), package)


class TestPackagedJobSizing:
    def test_measured_size_feeds_job_model(self):
        """The E_j the cost model uses can come from the package."""
        package = package_task(PrimeCountTask)
        job = Job(
            job_id="j",
            task=package.name,
            kind=JobKind.BREAKABLE,
            executable_kb=package.executable_kb,
            input_kb=1000.0,
        )
        assert job.executable_kb == package.executable_kb
