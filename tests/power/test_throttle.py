"""Tests for CPU throttling policies, especially the MIMD controller."""

import pytest

from repro.power.throttle import (
    ContinuousPolicy,
    FixedDutyPolicy,
    MimdThrottle,
    NoTaskPolicy,
)


class TestSimplePolicies:
    def test_no_task_always_off(self):
        policy = NoTaskPolicy()
        assert not any(policy.cpu_on(t, 50.0) for t in range(100))

    def test_continuous_always_on(self):
        policy = ContinuousPolicy()
        assert all(policy.cpu_on(t, 50.0) for t in range(100))

    def test_fixed_duty_fraction(self):
        policy = FixedDutyPolicy(duty=0.25, period_s=20.0)
        on = sum(policy.cpu_on(t * 0.5, 50.0) for t in range(4000))
        assert on / 4000 == pytest.approx(0.25, abs=0.02)

    def test_fixed_duty_extremes(self):
        assert not FixedDutyPolicy(duty=0.0).cpu_on(1.0, 50.0)
        assert FixedDutyPolicy(duty=1.0).cpu_on(1.0, 50.0)

    def test_fixed_duty_validation(self):
        with pytest.raises(ValueError):
            FixedDutyPolicy(duty=1.5)
        with pytest.raises(ValueError):
            FixedDutyPolicy(duty=0.5, period_s=0.0)


class TestMimdThrottle:
    def drive(self, throttle, *, rate_fn, duration_s, dt_s=1.0):
        """Feed the controller a synthetic charging curve.

        ``rate_fn(cpu_on)`` gives %/s so tests can model phones where the
        CPU does or does not affect charging.
        """
        percent = 0.0
        on_time = 0.0
        for step in range(int(duration_s / dt_s)):
            now = step * dt_s
            on = throttle.cpu_on(now, percent)
            percent = min(100.0, percent + rate_fn(on) * dt_s)
            if on:
                on_time += dt_s
        return percent, on_time

    def test_calibration_measures_delta(self):
        throttle = MimdThrottle()
        # 1 %/minute regardless of CPU.
        self.drive(throttle, rate_fn=lambda on: 1 / 60.0, duration_s=61.0)
        assert not throttle.calibrating
        assert throttle.delta_s == pytest.approx(60.0, abs=2.0)

    def test_cpu_off_during_calibration(self):
        throttle = MimdThrottle()
        assert not throttle.cpu_on(0.0, 0.0)
        assert not throttle.cpu_on(1.0, 0.1)

    def test_initial_sleep_is_half_delta(self):
        throttle = MimdThrottle()
        self.drive(throttle, rate_fn=lambda on: 1 / 60.0, duration_s=61.0)
        assert throttle.sleep_s == pytest.approx(throttle.delta_s / 2, abs=1.0)

    def test_sleep_shrinks_when_charging_unaffected(self):
        throttle = MimdThrottle()
        # CPU never hurts charging -> every beta == delta -> sleep decays.
        self.drive(throttle, rate_fn=lambda on: 1 / 60.0, duration_s=60.0 * 60)
        assert throttle.sleep_s == pytest.approx(throttle._min_sleep_s, rel=0.6)

    def test_sleep_grows_when_cpu_hurts_charging(self):
        throttle = MimdThrottle()
        # CPU halves the charge rate -> beta > delta -> sleep doubles.
        self.drive(
            throttle,
            rate_fn=lambda on: (0.5 if on else 1.0) / 60.0,
            duration_s=60.0 * 30,
        )
        assert throttle.sleep_s > throttle.delta_s / 2

    def test_adjustments_recorded(self):
        throttle = MimdThrottle()
        self.drive(throttle, rate_fn=lambda on: 1 / 60.0, duration_s=60.0 * 10)
        assert throttle.adjustments
        for _, beta, sleep in throttle.adjustments:
            assert beta > 0
            assert sleep > 0

    def test_high_duty_reached_on_unaffected_phone(self):
        throttle = MimdThrottle(recalibrate_every_percent=1000.0)
        _, on_time = self.drive(
            throttle, rate_fn=lambda on: 1 / 60.0, duration_s=3600.0
        )
        assert on_time / 3600.0 > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            MimdThrottle(sleep_decrease=1.5)
        with pytest.raises(ValueError):
            MimdThrottle(sleep_increase=0.5)
        with pytest.raises(ValueError):
            MimdThrottle(tolerance=-0.1)
        with pytest.raises(ValueError):
            MimdThrottle(min_sleep_s=0.0)
        with pytest.raises(ValueError):
            MimdThrottle(recalibrate_every_percent=0.0)


class TestMimdRecalibration:
    def test_delta_recalibrated_after_five_percent(self):
        """After 5% of charge the controller re-measures δ with the task
        paused — visible as a return to the calibrating state."""
        throttle = MimdThrottle(recalibrate_every_percent=5.0)
        percent = 0.0
        saw_recalibration = False
        # 1%/min charging, CPU never affects it.
        for step in range(60 * 60):
            now = float(step)
            throttle.cpu_on(now, percent)
            percent = min(100.0, percent + 1 / 60.0)
            if percent > 6.5 and throttle.calibrating:
                saw_recalibration = True
                break
        assert saw_recalibration

    def test_cpu_paused_during_recalibration(self):
        throttle = MimdThrottle(recalibrate_every_percent=2.0)
        percent = 0.0
        for step in range(60 * 30):
            now = float(step)
            on = throttle.cpu_on(now, percent)
            if throttle.calibrating:
                assert not on
            percent = min(100.0, percent + 1 / 60.0)
