"""Tests for the charging simulation (Figure 10 dynamics)."""

import pytest

from repro.power.battery import HTC_G2, HTC_SENSATION
from repro.power.charging import ChargingTrace, compute_penalty, simulate_charging
from repro.power.throttle import (
    ContinuousPolicy,
    FixedDutyPolicy,
    MimdThrottle,
    NoTaskPolicy,
)


class TestIdealCharging:
    def test_linear_profile(self):
        trace = simulate_charging(HTC_SENSATION, NoTaskPolicy())
        # Residual % at half time ≈ 50 % (linearity).
        half = trace.percent_at(trace.duration_s / 2)
        assert half == pytest.approx(50.0, abs=1.5)

    def test_duration_matches_profile(self):
        trace = simulate_charging(HTC_SENSATION, NoTaskPolicy())
        assert trace.duration_s == pytest.approx(
            HTC_SENSATION.ideal_full_charge_s, rel=0.02
        )
        assert trace.reached_target

    def test_partial_charge_window(self):
        trace = simulate_charging(
            HTC_SENSATION, NoTaskPolicy(), start_percent=40.0, target_percent=60.0
        )
        assert trace.percents[0] == 40.0
        assert trace.percents[-1] >= 60.0

    def test_zero_compute(self):
        trace = simulate_charging(HTC_SENSATION, NoTaskPolicy())
        assert trace.compute_s == 0.0
        assert trace.duty_factor == 0.0


class TestLoadedCharging:
    def test_sensation_delayed_roughly_35_percent(self):
        ideal = simulate_charging(HTC_SENSATION, NoTaskPolicy())
        heavy = simulate_charging(HTC_SENSATION, ContinuousPolicy())
        delay = heavy.duration_s / ideal.duration_s - 1.0
        assert 0.25 <= delay <= 0.45

    def test_g2_not_delayed(self):
        ideal = simulate_charging(HTC_G2, NoTaskPolicy())
        heavy = simulate_charging(HTC_G2, ContinuousPolicy())
        assert heavy.duration_s == pytest.approx(ideal.duration_s, rel=0.02)

    def test_temperature_rises_under_load(self):
        heavy = simulate_charging(HTC_SENSATION, ContinuousPolicy())
        assert max(heavy.temps_c) > HTC_SENSATION.t_throttle_c


class TestMimdCharging:
    def test_sensation_mimd_nearly_ideal(self):
        ideal = simulate_charging(HTC_SENSATION, NoTaskPolicy())
        mimd = simulate_charging(HTC_SENSATION, MimdThrottle())
        delay = mimd.duration_s / ideal.duration_s - 1.0
        assert delay < 0.10

    def test_sensation_mimd_does_substantial_compute(self):
        mimd = simulate_charging(HTC_SENSATION, MimdThrottle())
        assert mimd.duty_factor > 0.5

    def test_compute_penalty_in_paper_ballpark(self):
        heavy = simulate_charging(HTC_SENSATION, ContinuousPolicy())
        mimd = simulate_charging(HTC_SENSATION, MimdThrottle())
        penalty = compute_penalty(mimd, heavy)
        assert 0.1 <= penalty <= 0.5  # paper: ~24.5 %

    def test_mimd_beats_naive_fixed_duty_on_charge_time(self):
        """A fixed 100%-ish duty (continuous) delays charging; MIMD
        should not."""
        mimd = simulate_charging(HTC_SENSATION, MimdThrottle())
        heavy = simulate_charging(HTC_SENSATION, ContinuousPolicy())
        assert mimd.duration_s < heavy.duration_s


class TestTraceUtilities:
    def test_time_to_percent(self):
        trace = simulate_charging(HTC_SENSATION, NoTaskPolicy())
        t50 = trace.time_to_percent(50.0)
        assert t50 is not None
        assert trace.percent_at(t50) >= 50.0

    def test_time_to_unreached_percent_is_none(self):
        trace = simulate_charging(
            HTC_SENSATION, NoTaskPolicy(), target_percent=50.0
        )
        assert trace.time_to_percent(90.0) is None

    def test_percent_monotone_nondecreasing(self):
        trace = simulate_charging(HTC_SENSATION, FixedDutyPolicy(0.5))
        for a, b in zip(trace.percents, trace.percents[1:]):
            assert b >= a - 1e-9

    def test_max_s_cap(self):
        trace = simulate_charging(
            HTC_SENSATION, NoTaskPolicy(), max_s=60.0
        )
        assert not trace.reached_target
        assert trace.duration_s == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_charging(
                HTC_SENSATION, NoTaskPolicy(), start_percent=90.0,
                target_percent=50.0,
            )
        with pytest.raises(ValueError):
            simulate_charging(HTC_SENSATION, NoTaskPolicy(), dt_s=0.0)

    def test_compute_penalty_requires_compute(self):
        idle = simulate_charging(HTC_SENSATION, NoTaskPolicy(), max_s=60.0)
        with pytest.raises(ValueError):
            compute_penalty(idle, idle)
