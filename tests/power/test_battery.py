"""Tests for the battery/thermal charging model."""

import pytest

from repro.power.battery import (
    HTC_G2,
    HTC_SENSATION,
    PowerProfile,
    ThermalState,
    battery_rate_percent_per_s,
)


class TestRateConversion:
    def test_rate(self):
        # 3.6 W into a 3.6 Wh battery = 100 %/h.
        assert battery_rate_percent_per_s(3.6, 3.6) == pytest.approx(100 / 3600)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            battery_rate_percent_per_s(1.0, 0.0)


class TestPowerProfile:
    def test_sensation_ideal_charge_near_100_minutes(self):
        assert HTC_SENSATION.ideal_full_charge_s / 60 == pytest.approx(99, rel=0.05)

    def test_sensation_continuous_charge_near_135_minutes(self):
        assert HTC_SENSATION.continuous_full_charge_s() / 60 == pytest.approx(
            133, rel=0.05
        )

    def test_sensation_equilibrium_duty_near_point_eight(self):
        assert HTC_SENSATION.equilibrium_duty == pytest.approx(0.8, abs=0.05)

    def test_g2_never_derates(self):
        assert HTC_G2.equilibrium_duty == 1.0
        assert HTC_G2.rate_fraction(HTC_G2.steady_state_temp_c) == 1.0

    def test_rate_fraction_below_threshold_is_one(self):
        assert HTC_SENSATION.rate_fraction(HTC_SENSATION.t_throttle_c) == 1.0
        assert HTC_SENSATION.rate_fraction(20.0) == 1.0

    def test_rate_fraction_decreases_above_threshold(self):
        hot = HTC_SENSATION.rate_fraction(HTC_SENSATION.t_throttle_c + 4.0)
        assert hot < 1.0
        assert hot >= HTC_SENSATION.min_rate_fraction

    def test_rate_fraction_floored(self):
        assert (
            HTC_SENSATION.rate_fraction(500.0) == HTC_SENSATION.min_rate_fraction
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile(
                name="bad",
                battery_wh=0.0,
                battery_demand_w=3.0,
                cpu_draw_w=1.0,
                t_ambient_c=25.0,
                cpu_heat_c=10.0,
                tau_s=120.0,
                t_throttle_c=40.0,
                charge_derate_per_c=0.05,
            )
        with pytest.raises(ValueError, match="t_throttle_c"):
            PowerProfile(
                name="bad",
                battery_wh=5.0,
                battery_demand_w=3.0,
                cpu_draw_w=1.0,
                t_ambient_c=45.0,
                cpu_heat_c=10.0,
                tau_s=120.0,
                t_throttle_c=40.0,
                charge_derate_per_c=0.05,
            )


class TestThermalState:
    def test_starts_at_ambient(self):
        state = ThermalState(HTC_SENSATION)
        assert state.temp_c == HTC_SENSATION.t_ambient_c

    def test_heats_toward_steady_state(self):
        state = ThermalState(HTC_SENSATION)
        for _ in range(10_000):
            state.step(cpu_on=True, dt_s=1.0)
        assert state.temp_c == pytest.approx(
            HTC_SENSATION.steady_state_temp_c, abs=0.1
        )

    def test_cools_back_to_ambient(self):
        state = ThermalState(HTC_SENSATION, temp_c=45.0)
        for _ in range(10_000):
            state.step(cpu_on=False, dt_s=1.0)
        assert state.temp_c == pytest.approx(HTC_SENSATION.t_ambient_c, abs=0.1)

    def test_monotone_heating(self):
        state = ThermalState(HTC_SENSATION)
        previous = state.temp_c
        for _ in range(100):
            current = state.step(cpu_on=True, dt_s=1.0)
            assert current >= previous
            previous = current

    def test_time_constant(self):
        """After tau seconds the gap to target closes by ~63 %."""
        state = ThermalState(HTC_SENSATION)
        steps = int(HTC_SENSATION.tau_s)
        for _ in range(steps):
            state.step(cpu_on=True, dt_s=1.0)
        target = HTC_SENSATION.steady_state_temp_c
        start = HTC_SENSATION.t_ambient_c
        expected = target - (target - start) * 2.718281828 ** -1
        assert state.temp_c == pytest.approx(expected, rel=0.01)

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalState(HTC_SENSATION).step(cpu_on=True, dt_s=0.0)
