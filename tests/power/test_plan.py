"""Tests for fleet power planning."""

import pytest

from repro.power.battery import HTC_G2, HTC_SENSATION
from repro.power.plan import plan_fleet_power


class TestPlanFleetPower:
    def plan_one(self, profile=HTC_SENSATION, start=0.0, hours=8.0):
        plans = plan_fleet_power(
            {"p": profile}, {"p": start}, window_hours=hours
        )
        return plans["p"]

    def test_full_battery_is_unthrottled(self):
        plan = self.plan_one(start=100.0)
        assert plan.slowdown == 1.0
        assert plan.full_charge_s == 0.0
        assert plan.charging_duty == 1.0

    def test_empty_sensation_throttles_then_frees(self):
        plan = self.plan_one(start=0.0, hours=8.0)
        # Charges in ~100 min, then ~6.3 h unthrottled.
        assert plan.full_charge_s < 2.5 * 3600.0
        assert 1.0 < plan.slowdown < 1.3
        assert 0.5 < plan.charging_duty <= 1.0

    def test_higher_start_charge_means_lower_slowdown(self):
        empty = self.plan_one(start=0.0, hours=4.0)
        topped = self.plan_one(start=80.0, hours=4.0)
        assert topped.slowdown <= empty.slowdown

    def test_g2_has_nearly_no_penalty(self):
        plan = self.plan_one(profile=HTC_G2, start=0.0, hours=8.0)
        # The G2 never derates, so even while charging the MIMD duty is
        # high; over 8 h the averaged slowdown is small.
        assert plan.slowdown < 1.3

    def test_short_window_never_full(self):
        plan = self.plan_one(start=0.0, hours=0.5)
        assert plan.full_charge_s == pytest.approx(0.5 * 3600.0)
        # The whole window is throttled: slowdown = 1/duty.
        assert plan.slowdown == pytest.approx(
            1.0 / plan.charging_duty, rel=0.05
        )

    def test_compute_seconds_consistent(self):
        plan = self.plan_one(start=0.0, hours=6.0)
        assert plan.compute_seconds == pytest.approx(
            plan.window_s / plan.slowdown
        )

    def test_multiple_phones(self):
        plans = plan_fleet_power(
            {"a": HTC_SENSATION, "b": HTC_G2},
            {"a": 0.0, "b": 50.0},
            window_hours=6.0,
        )
        assert set(plans) == {"a", "b"}
        assert all(plan.slowdown >= 1.0 for plan in plans.values())

    def test_missing_start_defaults_to_zero(self):
        plans = plan_fleet_power({"a": HTC_SENSATION}, {}, window_hours=6.0)
        assert plans["a"].start_percent == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_fleet_power({"a": HTC_SENSATION}, {}, window_hours=0.0)
        with pytest.raises(ValueError):
            plan_fleet_power(
                {"a": HTC_SENSATION}, {"a": 150.0}, window_hours=6.0
            )

    def test_plans_feed_central_server(self):
        """The plan's slowdowns are valid CentralServer inputs."""
        from repro.core.greedy import CwcScheduler
        from repro.core.model import Job, JobKind, PhoneSpec
        from repro.core.prediction import RuntimePredictor, TaskProfile
        from repro.sim.entities import FleetGroundTruth
        from repro.sim.server import CentralServer

        phones = tuple(
            PhoneSpec(phone_id=f"p{i}", cpu_mhz=1000.0) for i in range(2)
        )
        plans = plan_fleet_power(
            {p.phone_id: HTC_SENSATION for p in phones},
            {"p0": 0.0, "p1": 100.0},
            window_hours=6.0,
        )
        profiles = {"primes": TaskProfile("primes", 5.0, 1000.0)}
        server = CentralServer(
            phones,
            FleetGroundTruth(profiles),
            RuntimePredictor(profiles),
            CwcScheduler(),
            {p.phone_id: 2.0 for p in phones},
            compute_slowdown={
                pid: plan.slowdown for pid, plan in plans.items()
            },
        )
        jobs = (Job("j", "primes", JobKind.BREAKABLE, 10.0, 500.0),)
        result = server.run(jobs)
        assert not result.unfinished_jobs
