"""Durability: crash-safe snapshots and replay-verified recovery.

The paper's CWC server is an always-on service: it survives weeks of
charging nights, phone churn, and its own restarts.  This package makes
the reproduction equally operable:

``repro.durability.snapshot``
    A versioned, sha256-digested snapshot store with atomic
    write-rename semantics (:class:`SnapshotStore`).  A snapshot that
    was being written when the process died never becomes visible; a
    snapshot corrupted on disk is detected by its digest and skipped in
    favour of the previous good one.

``repro.durability.recovery``
    Round-boundary checkpointing for :class:`~repro.sim.server.CentralServer`
    runs and the crash-at-any-round recovery guarantee: a run killed at
    an arbitrary scheduling instant and restored from its latest
    snapshot produces a byte-identical remaining schedule and trace.
    Because event-loop actions are closures, restore is *deterministic
    replay with state verification* — the run is replayed from the
    scenario's inputs, and at the checkpointed round the live state
    must byte-match the snapshot (:class:`RecoveryError` otherwise);
    engine determinism then guarantees the identical continuation.

Night-level campaign snapshots (multi-night continuous operation) are
built on the same store by :class:`~repro.sim.campaign.ContinuousCampaign`.
"""

from .snapshot import (
    SNAPSHOT_FORMAT,
    Snapshot,
    SnapshotCorruptError,
    SnapshotStore,
    rng_state_from_json,
    rng_state_to_json,
    stable_seed,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "RUN_SNAPSHOT_KIND",
    "CrashRestoreOutcome",
    "RecoveryError",
    "RunKilled",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotStore",
    "checkpointing_hook",
    "crash_restore_check",
    "execute_scenario",
    "rng_state_from_json",
    "rng_state_to_json",
    "run_digests",
    "stable_seed",
]

# Names from ``.recovery``, loaded lazily (PEP 562).  The recovery
# module imports the fuzzer (its scenarios are the replay substrate),
# which imports the arrival generators, which import ``.snapshot`` for
# RNG-state serialisation — eagerly importing ``.recovery`` here would
# therefore make ``import repro.durability.snapshot`` circular.
_RECOVERY_NAMES = frozenset(
    {
        "RUN_SNAPSHOT_KIND",
        "CrashRestoreOutcome",
        "RecoveryError",
        "RunKilled",
        "checkpointing_hook",
        "crash_restore_check",
        "execute_scenario",
        "run_digests",
        "verification_hook",
    }
)


def __getattr__(name: str):
    if name in _RECOVERY_NAMES:
        from . import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
