"""Versioned, digested, atomically-written snapshot store.

A snapshot is a JSON document::

    {"format": 1, "kind": "...", "snapshot_id": N,
     "state": {...}, "sha256": "..."}

``sha256`` covers the canonical JSON of everything else, so any
truncation or bit-rot is detected on load.  Writes go through a
temporary file + ``fsync`` + ``os.replace`` — the POSIX atomic-rename
idiom — so a crash mid-write leaves either the previous snapshot set or
the new one, never a half-written file with a valid name.

:meth:`SnapshotStore.latest` embodies the recovery policy: walk
snapshots newest-first and return the first one whose digest verifies,
silently skipping corrupt files (they are reported via
``corrupt_files``).  :meth:`SnapshotStore.load` of a *specific* file is
strict and raises :class:`SnapshotCorruptError` instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SNAPSHOT_FORMAT",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotStore",
    "rng_state_to_json",
    "rng_state_from_json",
    "stable_seed",
]

#: Version stamp of the snapshot document layout.
SNAPSHOT_FORMAT = 1

_SNAP_RE = re.compile(r"^snap-(\d{6})\.json$")


class SnapshotCorruptError(ValueError):
    """A snapshot file failed its digest, format, or schema check."""


def _canonical(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _digest_body(kind: str, snapshot_id: int, state: dict) -> str:
    body = {
        "format": SNAPSHOT_FORMAT,
        "kind": kind,
        "snapshot_id": snapshot_id,
        "state": state,
    }
    return hashlib.sha256(_canonical(body)).hexdigest()


def rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` → JSON-safe nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(data: list) -> tuple:
    """Inverse of :func:`rng_state_to_json` (feeds ``setstate``)."""
    if len(data) != 3:
        raise ValueError(f"rng state must have 3 parts, got {len(data)}")
    version, internal, gauss_next = data
    return (int(version), tuple(int(v) for v in internal), gauss_next)


def stable_seed(*parts) -> int:
    """A deterministic 32-bit seed from arbitrary hashable parts.

    Unlike ``hash()``, stable across processes and ``PYTHONHASHSEED``
    values — the derivation used for per-(phone, night) link seeds so a
    resumed campaign rebuilds exactly the links the original would have.
    """
    payload = repr(parts).encode("utf-8")
    return int.from_bytes(
        hashlib.sha256(payload).digest()[:4], "big"
    )


@dataclass(frozen=True)
class Snapshot:
    """One verified snapshot document."""

    kind: str
    snapshot_id: int
    state: dict
    sha256: str
    path: str = ""

    def to_payload(self) -> dict:
        return {
            "format": SNAPSHOT_FORMAT,
            "kind": self.kind,
            "snapshot_id": self.snapshot_id,
            "state": self.state,
            "sha256": self.sha256,
        }

    @classmethod
    def build(cls, kind: str, snapshot_id: int, state: dict) -> "Snapshot":
        if not kind:
            raise ValueError("snapshot kind must be non-empty")
        if snapshot_id < 0:
            raise ValueError(f"snapshot_id must be >= 0, got {snapshot_id!r}")
        return cls(
            kind=kind,
            snapshot_id=snapshot_id,
            state=state,
            sha256=_digest_body(kind, snapshot_id, state),
        )

    @classmethod
    def from_payload(cls, data: object, *, source: str = "") -> "Snapshot":
        """Verify format + digest and rebuild; raise on any mismatch."""
        where = f"{source}: " if source else ""
        if not isinstance(data, dict):
            raise SnapshotCorruptError(f"{where}snapshot must be an object")
        if data.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotCorruptError(
                f"{where}unsupported snapshot format {data.get('format')!r} "
                f"(expected {SNAPSHOT_FORMAT})"
            )
        missing = [
            f
            for f in ("kind", "snapshot_id", "state", "sha256")
            if f not in data
        ]
        if missing:
            raise SnapshotCorruptError(
                f"{where}snapshot missing fields: {', '.join(missing)}"
            )
        expected = _digest_body(
            str(data["kind"]), int(data["snapshot_id"]), data["state"]
        )
        if data["sha256"] != expected:
            raise SnapshotCorruptError(
                f"{where}snapshot digest mismatch: recorded "
                f"{data['sha256']!r}, computed {expected!r}"
            )
        return cls(
            kind=str(data["kind"]),
            snapshot_id=int(data["snapshot_id"]),
            state=data["state"],
            sha256=str(data["sha256"]),
            path=source,
        )


class SnapshotStore:
    """A directory of ``snap-NNNNNN.json`` snapshot documents.

    Snapshot ids are a strictly increasing sequence per store; the file
    name carries the id so recovery can walk newest-first without
    parsing every document.
    """

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        #: Files :meth:`latest` skipped because they failed verification
        #: (diagnostics for the operator; the store never deletes them).
        self.corrupt_files: list[str] = []

    @property
    def directory(self) -> Path:
        return self._dir

    def _paths(self) -> list[tuple[int, Path]]:
        found = []
        for path in self._dir.iterdir():
            match = _SNAP_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def snapshot_ids(self) -> list[int]:
        return [snapshot_id for snapshot_id, _ in self._paths()]

    def __len__(self) -> int:
        return len(self._paths())

    def save(self, kind: str, state: dict) -> Snapshot:
        """Digest, then atomically write, one new snapshot."""
        paths = self._paths()
        next_id = paths[-1][0] + 1 if paths else 0
        if next_id > 999_999:
            raise ValueError("snapshot store exhausted its id space")
        snapshot = Snapshot.build(kind, next_id, state)
        final = self._dir / f"snap-{next_id:06d}.json"
        tmp = self._dir / f".snap-{next_id:06d}.json.tmp"
        data = json.dumps(snapshot.to_payload(), sort_keys=True, indent=1)
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(data)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        return Snapshot(
            kind=snapshot.kind,
            snapshot_id=snapshot.snapshot_id,
            state=snapshot.state,
            sha256=snapshot.sha256,
            path=str(final),
        )

    def load(self, path: str | Path) -> Snapshot:
        """Load one specific snapshot file; strict verification."""
        path = Path(path)
        try:
            with path.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SnapshotCorruptError(f"{path}: unreadable: {exc}") from exc
        except ValueError as exc:
            raise SnapshotCorruptError(
                f"{path}: not valid JSON: {exc}"
            ) from None
        return Snapshot.from_payload(data, source=str(path))

    def latest(self, *, kind: str | None = None) -> Snapshot | None:
        """The newest verifiable snapshot (optionally of one kind).

        Corrupt or truncated files are skipped — the fall-back-to-
        previous-snapshot recovery policy — and recorded in
        :attr:`corrupt_files`.  Returns None when no snapshot survives.
        """
        for _, path in reversed(self._paths()):
            try:
                snapshot = self.load(path)
            except SnapshotCorruptError:
                self.corrupt_files.append(str(path))
                continue
            if kind is not None and snapshot.kind != kind:
                continue
            return snapshot
        return None

    def prune(self, *, keep_last: int) -> int:
        """Delete all but the newest ``keep_last`` snapshots."""
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last!r}")
        paths = self._paths()
        doomed = paths[:-keep_last] if len(paths) > keep_last else []
        for _, path in doomed:
            path.unlink()
        return len(doomed)
