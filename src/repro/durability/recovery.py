"""Round-boundary checkpointing and replay-verified crash recovery.

The event loop's pending actions are closures over live pipelines, so a
snapshot cannot serialise the heap itself.  What it *can* serialise —
and what :meth:`~repro.sim.server.CentralServer.capture_state` captures
— is everything that determines the remaining run: queues, ``F_A``,
learned predictions, warm-start caches, per-phone runtime state,
monitor state, the engine clock, and the timing skeleton of the pending
events.  Restore is therefore **deterministic replay with state
verification**:

1. rebuild the server from the scenario's inputs (they are the durable
   ground truth — a :class:`~repro.verify.fuzz.Scenario` is replayable
   by construction);
2. replay to the snapshot's scheduling instant;
3. byte-compare the live :meth:`capture_state` against the snapshot
   (:class:`RecoveryError` on any mismatch — the snapshot proves the
   replay reached the exact pre-crash state);
4. keep running: engine determinism guarantees the continuation is
   byte-identical to the run that was never killed.

Directly re-scheduling pending events from a snapshot was rejected: a
rebuilt heap assigns fresh sequence numbers, which can flip the
deterministic tie-break between same-time events (an init-scheduled
chaos fault vs. a mid-run rescheduled keep-alive probe) and silently
change the continuation.  Replay keeps the original sequence numbers by
construction.

:func:`crash_restore_check` packages the full drill — baseline run,
killed run with checkpoints, restore, byte-identity comparison, oracle
pass — and is what ``repro fuzz --crash-restore`` drives per scenario.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..core.serialize import schedule_to_dict
from ..verify.fuzz import Scenario, build_scenario_server, scenario_workload
from ..verify.oracle import Oracle
from .snapshot import Snapshot, SnapshotStore

__all__ = [
    "RUN_SNAPSHOT_KIND",
    "RunKilled",
    "RecoveryError",
    "CrashRestoreOutcome",
    "checkpointing_hook",
    "verification_hook",
    "execute_scenario",
    "run_digests",
    "crash_restore_check",
]

#: Snapshot kind for round-boundary server checkpoints.
RUN_SNAPSHOT_KIND = "server-round"


class RunKilled(RuntimeError):
    """Raised by a crash drill's hook to kill a run at an instant."""

    def __init__(self, instant: int) -> None:
        super().__init__(f"run killed at scheduling instant {instant}")
        self.instant = instant


class RecoveryError(RuntimeError):
    """A replayed restore failed to reproduce the snapshotted state."""


def _canonical(payload: object) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def checkpointing_hook(
    store: SnapshotStore, *, kill_at_instant: int | None = None
):
    """An ``on_round`` hook that checkpoints every scheduling instant.

    Instants are counted by hook invocation (a round that aborts for
    lack of phones still counts), so the sequence is identical across
    replays of the same scenario.  When ``kill_at_instant`` is given,
    the hook raises :class:`RunKilled` *before* saving that instant's
    snapshot — the crash happens mid-flight, with only the earlier
    checkpoints on disk, exactly like a real power cut.
    """
    counter = {"instant": 0}

    def hook(server, round_index: int) -> None:
        instant = counter["instant"]
        counter["instant"] += 1
        if kill_at_instant is not None and instant >= kill_at_instant:
            raise RunKilled(instant)
        store.save(
            RUN_SNAPSHOT_KIND,
            {
                "instant": instant,
                "round_index": round_index,
                "server": server.capture_state(),
            },
        )

    return hook


def verification_hook(snapshot: Snapshot, witness: dict | None = None):
    """An ``on_round`` hook that proves a replay reached the snapshot.

    At the snapshot's scheduling instant the live
    :meth:`~repro.sim.server.CentralServer.capture_state` must equal the
    snapshotted state byte for byte; ``witness["verified"]`` flips True
    when it does, and :class:`RecoveryError` carries the diff summary
    when it does not.
    """
    if snapshot.kind != RUN_SNAPSHOT_KIND:
        raise ValueError(
            f"expected a {RUN_SNAPSHOT_KIND!r} snapshot, got {snapshot.kind!r}"
        )
    counter = {"instant": 0}
    target = int(snapshot.state["instant"])
    expected = snapshot.state["server"]

    def hook(server, round_index: int) -> None:
        instant = counter["instant"]
        counter["instant"] += 1
        if instant != target:
            return
        live = server.capture_state()
        if _canonical(live) != _canonical(expected):
            diverged = sorted(
                key
                for key in set(live) | set(expected)
                if _canonical(live.get(key)) != _canonical(expected.get(key))
            )
            raise RecoveryError(
                f"replay reached scheduling instant {target} with state "
                f"diverging from snapshot {snapshot.snapshot_id} in "
                f"fields: {', '.join(diverged)}"
            )
        if witness is not None:
            witness["verified"] = True

    return hook


def execute_scenario(
    scenario: Scenario, *, on_round=None, probe_workers=None, telemetry=None
):
    """Run one scenario deterministically, returning its ``RunResult``.

    Telemetry stays disarmed by default (event envelopes and spans
    carry wall-clock times, which have no place in byte-identity
    checks) — but :func:`run_digests` covers only deterministic fields,
    so passing an armed ``telemetry`` (e.g. with the span tracer on)
    never changes a drill's digests.  Per-round instances are retained
    so the oracle's schedule-scope invariants can run.
    ``probe_workers`` arms the capacity search's speculative pool —
    schedules and digests are unchanged, so drills use it to exercise
    shared-memory teardown under kills.
    """
    server = build_scenario_server(
        scenario,
        telemetry=telemetry,
        on_round=on_round,
        record_instances=True,
        probe_workers=probe_workers,
    )
    initial, arrivals = scenario_workload(scenario)
    return server.run(initial, arrivals=arrivals)


def run_digests(result) -> dict:
    """Deterministic digests of a finished run's schedule and trace.

    Covers every round's schedule (canonical
    :func:`~repro.core.serialize.schedule_to_dict` form plus the
    deterministic search diagnostics) and the full trace; wall-clock
    fields (``scheduling_wall_ms``) are excluded by construction.  Two
    runs are considered byte-identical when these digests match.
    """
    rounds_doc = [
        {
            "round_index": record.round_index,
            "scheduled_at_ms": record.scheduled_at_ms,
            "schedule": schedule_to_dict(record.schedule),
            "predicted_makespan_ms": record.predicted_makespan_ms,
            "rescheduled": record.rescheduled,
            "job_ids": list(record.job_ids),
            "capacity_ms": record.capacity_ms,
            "kernel": record.kernel,
            "warm_started": record.warm_started,
        }
        for record in result.rounds
    ]
    return {
        "schedule_sha256": hashlib.sha256(
            _canonical(rounds_doc)
        ).hexdigest(),
        "trace_sha256": hashlib.sha256(
            _canonical(result.trace.to_dict())
        ).hexdigest(),
        "rounds": len(result.rounds),
        "makespan_ms": result.measured_makespan_ms,
        "completions": len(result.trace.completions),
        "unfinished_jobs": len(result.unfinished_jobs),
    }


@dataclass(frozen=True)
class CrashRestoreOutcome:
    """One scenario's verdict under the kill/restore drill."""

    seed: int
    kill_instant: int
    baseline_instants: int
    killed: bool
    snapshot_id: int | None
    snapshot_instant: int | None
    state_verified: bool
    identical: bool
    violations: tuple[str, ...] = ()
    error: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.identical and not self.violations and self.error is None
        )


def crash_restore_check(
    scenario: Scenario,
    *,
    store_dir: str | Path,
    kill_instant: int | None = None,
    probe_workers: int | None = None,
    tracing: bool = False,
) -> CrashRestoreOutcome:
    """The full crash-at-any-round recovery drill for one scenario.

    1. **Baseline** — run the scenario uninterrupted, recording its
       schedule/trace digests and counting its scheduling instants.
    2. **Kill** — rerun with round-boundary checkpoints into
       ``store_dir`` and a :class:`RunKilled` injected at
       ``kill_instant`` (seed-chosen from the baseline's instant count
       when not given; instant 0 exercises the cold-restart path where
       no snapshot exists yet).
    3. **Restore** — replay from the scenario, byte-verifying the live
       state against the latest surviving snapshot at its instant, and
       run to completion.
    4. **Prove** — the restored run's digests must equal the baseline's
       and the invariant oracle must report zero violations.

    With ``tracing=True`` the killed and restored legs run with the
    span tracer armed: the kill must leave the tracer holding only
    closed (checkpointable) spans, and the restored run additionally
    passes the span invariants.  Digest comparison is unaffected —
    spans never enter :func:`run_digests`.
    """
    import random as _random

    try:
        baseline = execute_scenario(scenario, probe_workers=probe_workers)
    except Exception as exc:  # noqa: BLE001 - sim crashes are findings
        return CrashRestoreOutcome(
            seed=scenario.seed,
            kill_instant=-1,
            baseline_instants=0,
            killed=False,
            snapshot_id=None,
            snapshot_instant=None,
            state_verified=False,
            identical=False,
            error=f"baseline crashed: {type(exc).__name__}: {exc}",
        )
    base_digests = run_digests(baseline)
    # Hook invocations >= len(rounds) (aborted rounds fire the hook
    # without appending a RoundRecord), so any instant below the round
    # count is guaranteed to fire.
    instants = max(1, len(baseline.rounds))
    if kill_instant is None:
        kill_instant = _random.Random(
            f"crash-restore:{scenario.seed}"
        ).randrange(instants)

    def _drill_telemetry(leg: str):
        if not tracing:
            return None
        from ..obs.telemetry import Telemetry

        return Telemetry.create(
            run_id=f"crash-{scenario.seed}-{leg}", tracing=True
        )

    store = SnapshotStore(store_dir)
    killed = False
    kill_telemetry = _drill_telemetry("kill")
    try:
        execute_scenario(
            scenario,
            on_round=checkpointing_hook(store, kill_at_instant=kill_instant),
            probe_workers=probe_workers,
            telemetry=kill_telemetry,
        )
    except RunKilled:
        killed = True
        if kill_telemetry is not None:
            open_count = kill_telemetry.tracer.open_count
            if open_count:
                return CrashRestoreOutcome(
                    seed=scenario.seed,
                    kill_instant=kill_instant,
                    baseline_instants=instants,
                    killed=True,
                    snapshot_id=None,
                    snapshot_instant=None,
                    state_verified=False,
                    identical=False,
                    error=(
                        f"kill left {open_count} span(s) open — the crash "
                        f"boundary must close every span"
                    ),
                )
    except Exception as exc:  # noqa: BLE001
        return CrashRestoreOutcome(
            seed=scenario.seed,
            kill_instant=kill_instant,
            baseline_instants=instants,
            killed=False,
            snapshot_id=None,
            snapshot_instant=None,
            state_verified=False,
            identical=False,
            error=f"killed run crashed: {type(exc).__name__}: {exc}",
        )

    snapshot = store.latest(kind=RUN_SNAPSHOT_KIND)
    witness = {"verified": False}
    hook = None if snapshot is None else verification_hook(snapshot, witness)
    restore_telemetry = _drill_telemetry("restore")
    try:
        restored = execute_scenario(
            scenario,
            on_round=hook,
            probe_workers=probe_workers,
            telemetry=restore_telemetry,
        )
    except RecoveryError as exc:
        return CrashRestoreOutcome(
            seed=scenario.seed,
            kill_instant=kill_instant,
            baseline_instants=instants,
            killed=killed,
            snapshot_id=snapshot.snapshot_id if snapshot else None,
            snapshot_instant=(
                int(snapshot.state["instant"]) if snapshot else None
            ),
            state_verified=False,
            identical=False,
            error=str(exc),
        )

    restored_digests = run_digests(restored)
    oracle = Oracle()
    restore_spans = (
        restore_telemetry.tracer.spans
        if restore_telemetry is not None
        else None
    )
    restore_events = (
        restore_telemetry.bus.events if restore_telemetry is not None else None
    )
    violations = [
        str(v)
        for v in oracle.check_run(
            restored,
            scenario.jobs,
            events=restore_events,
            spans=restore_spans,
            collect=True,
        )
    ]
    violations.extend(
        str(v) for v in oracle.check_rounds(restored, collect=True)
    )
    return CrashRestoreOutcome(
        seed=scenario.seed,
        kill_instant=kill_instant,
        baseline_instants=instants,
        killed=killed,
        snapshot_id=snapshot.snapshot_id if snapshot else None,
        snapshot_instant=(
            int(snapshot.state["instant"]) if snapshot else None
        ),
        state_verified=witness["verified"] if snapshot else True,
        identical=restored_digests == base_digests,
        violations=tuple(violations),
    )
