"""Battery, charging, and CPU-throttling substrate (Section 4.3)."""

from .battery import HTC_G2, HTC_SENSATION, PowerProfile, battery_rate_percent_per_s
from .charging import ChargingTrace, compute_penalty, simulate_charging
from .plan import PhonePowerPlan, plan_fleet_power
from .throttle import ContinuousPolicy, FixedDutyPolicy, MimdThrottle, NoTaskPolicy

__all__ = [
    "HTC_G2",
    "HTC_SENSATION",
    "ChargingTrace",
    "ContinuousPolicy",
    "FixedDutyPolicy",
    "MimdThrottle",
    "NoTaskPolicy",
    "PhonePowerPlan",
    "plan_fleet_power",
    "PowerProfile",
    "battery_rate_percent_per_s",
    "compute_penalty",
    "simulate_charging",
]
