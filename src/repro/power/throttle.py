"""CPU throttling policies, including the paper's MIMD controller.

CWC cannot change CPU voltage/frequency without root, so it preserves
the charging profile by *duty-cycling* the task: run for ``δ/2``, sleep,
and adapt the sleep length multiplicatively (Section 4.3):

* ``δ`` — the *target charging parameter*: measured seconds for the
  residual charge to rise 1 % with no task running;
* run the task for ``δ/2``, sleep for the current sleep length, repeat,
  until the charge has risen 1 %; call the elapsed time ``β`` — the
  *actual charging parameter*;
* ``β ≈ δ`` → there is charger headroom: multiply the sleep length by
  0.75 (more CPU);
* ``β > δ`` → the CPU is eating into charging: multiply the sleep
  length by 2 (less CPU);
* re-measure ``δ`` every 5 % of charge, since the profile can shift
  (other apps, USB vs wall charger).

A policy is anything with ``cpu_on(now_s, percent) -> bool``; the
simulator in :mod:`repro.power.charging` ticks it forward in time.
"""

from __future__ import annotations

import enum
import math

__all__ = ["NoTaskPolicy", "ContinuousPolicy", "FixedDutyPolicy", "MimdThrottle"]


class NoTaskPolicy:
    """The ideal charging profile: CPU never used."""

    name = "no-task"

    def cpu_on(self, now_s: float, percent: float) -> bool:
        return False


class ContinuousPolicy:
    """Heavy utilisation without throttling (the paper's worst case)."""

    name = "continuous"

    def cpu_on(self, now_s: float, percent: float) -> bool:
        return True


class FixedDutyPolicy:
    """Open-loop duty cycling — the ablation baseline for MIMD.

    Runs ``duty`` of every ``period_s`` seconds.  Unlike MIMD it cannot
    adapt to the actual charging rate, so it either wastes headroom or
    delays charging depending on how well ``duty`` was guessed.
    """

    def __init__(self, duty: float, period_s: float = 30.0) -> None:
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must lie in [0, 1], got {duty!r}")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s!r}")
        self._duty = duty
        self._period_s = period_s
        self.name = f"fixed-duty-{duty:.2f}"

    def cpu_on(self, now_s: float, percent: float) -> bool:
        return (now_s % self._period_s) < self._duty * self._period_s


class _Phase(enum.Enum):
    CALIBRATE = "calibrate"
    RUN = "run"


class MimdThrottle:
    """The paper's multiplicative-increase/multiplicative-decrease throttle.

    Parameters
    ----------
    tolerance:
        ``β <= δ * (1 + tolerance)`` counts as "β = δ" (charging
        unaffected), triggering the sleep decrease.
    sleep_decrease / sleep_increase:
        The multiplicative factors (paper: 0.75 and 2).
    recalibrate_every_percent:
        Re-measure ``δ`` (with the task paused) after this much charge
        gain (paper: 5 %).
    min_sleep_s:
        Floor for the sleep interval so the duty cycle can approach —
        but never reach — 100 % CPU.
    """

    name = "mimd"

    def __init__(
        self,
        *,
        tolerance: float = 0.05,
        sleep_decrease: float = 0.75,
        sleep_increase: float = 2.0,
        recalibrate_every_percent: float = 5.0,
        min_sleep_s: float = 0.5,
        telemetry=None,
    ) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance!r}")
        if not 0.0 < sleep_decrease < 1.0:
            raise ValueError(
                f"sleep_decrease must lie in (0, 1), got {sleep_decrease!r}"
            )
        if sleep_increase <= 1.0:
            raise ValueError(
                f"sleep_increase must be > 1, got {sleep_increase!r}"
            )
        if recalibrate_every_percent <= 0:
            raise ValueError("recalibrate_every_percent must be > 0")
        if min_sleep_s <= 0:
            raise ValueError(f"min_sleep_s must be > 0, got {min_sleep_s!r}")
        self._tolerance = tolerance
        self._sleep_decrease = sleep_decrease
        self._sleep_increase = sleep_increase
        self._recal_percent = recalibrate_every_percent
        self._min_sleep_s = min_sleep_s

        self._phase = _Phase.CALIBRATE
        self._delta_s: float | None = None
        self._run_s: float | None = None
        self._sleep_s: float | None = None
        self._phase_started_s = 0.0
        self._phase_started_percent: float | None = None
        self._percent_window_start_s = 0.0
        self._window_base_percent: float | None = None
        self._cycle_position_s = 0.0
        self._last_now_s: float | None = None
        self._running = True  # within the duty cycle: currently in run half?
        self._last_recal_percent: float | None = None
        self.adjustments: list[tuple[float, float, float]] = []  # (t, beta, sleep)
        #: Optional repro.obs Telemetry facade (duty-cycle decisions are
        #: mirrored as ``throttle`` events; β/δ deviation as a gauge).
        self._tel = telemetry

    # -- introspection (used by tests and the Fig. 10 experiment) --------

    @property
    def delta_s(self) -> float | None:
        """The current target charging parameter δ (None while calibrating)."""
        return self._delta_s

    @property
    def sleep_s(self) -> float | None:
        return self._sleep_s

    @property
    def calibrating(self) -> bool:
        return self._phase is _Phase.CALIBRATE

    # -- policy protocol --------------------------------------------------

    def cpu_on(self, now_s: float, percent: float) -> bool:
        if self._window_base_percent is None:
            self._window_base_percent = percent
            self._percent_window_start_s = now_s
            self._last_recal_percent = percent

        if self._phase is _Phase.CALIBRATE:
            if percent - self._window_base_percent >= 1.0:
                self._finish_calibration(now_s, percent)
                return self._tick_duty_cycle(now_s)
            return False

        # RUN phase: first check the 1 % window (β measurement), then the
        # 5 % recalibration trigger, then advance the duty cycle.
        if percent - self._window_base_percent >= 1.0:
            beta = now_s - self._percent_window_start_s
            self._adapt(now_s, beta)
            self._window_base_percent = percent
            self._percent_window_start_s = now_s
        assert self._last_recal_percent is not None
        if percent - self._last_recal_percent >= self._recal_percent:
            self._begin_recalibration(now_s, percent)
            return False
        return self._tick_duty_cycle(now_s)

    # -- internals --------------------------------------------------------

    def _finish_calibration(self, now_s: float, percent: float) -> None:
        delta = now_s - self._percent_window_start_s
        self._delta_s = max(delta, 2 * self._min_sleep_s)
        self._run_s = self._delta_s / 2.0
        if self._sleep_s is None:
            self._sleep_s = self._delta_s / 2.0
        self._phase = _Phase.RUN
        self._window_base_percent = percent
        self._percent_window_start_s = now_s
        self._cycle_position_s = 0.0
        self._last_now_s = now_s
        self._running = True

    def _begin_recalibration(self, now_s: float, percent: float) -> None:
        self._phase = _Phase.CALIBRATE
        self._window_base_percent = percent
        self._percent_window_start_s = now_s
        self._last_recal_percent = percent

    def _adapt(self, now_s: float, beta: float) -> None:
        assert self._delta_s is not None and self._sleep_s is not None
        headroom = beta <= self._delta_s * (1.0 + self._tolerance)
        if headroom:
            self._sleep_s = max(
                self._min_sleep_s, self._sleep_s * self._sleep_decrease
            )
        else:
            self._sleep_s = self._sleep_s * self._sleep_increase
        self.adjustments.append((now_s, beta, self._sleep_s))
        tel = self._tel
        if tel is not None and tel.enabled:
            deviation = beta / self._delta_s - 1.0
            tel.inc(
                "throttle_adjustments_total",
                direction="more_cpu" if headroom else "less_cpu",
            )
            tel.set_gauge("throttle_profile_deviation", deviation)
            tel.set_gauge("throttle_sleep_s", self._sleep_s)
            tel.event(
                "throttle",
                "duty_adjust",
                sim_time_ms=now_s * 1000.0,
                beta_s=beta,
                delta_s=self._delta_s,
                sleep_s=self._sleep_s,
                deviation=deviation,
            )

    def _tick_duty_cycle(self, now_s: float) -> bool:
        assert self._run_s is not None and self._sleep_s is not None
        if self._last_now_s is None:
            self._last_now_s = now_s
        elapsed = now_s - self._last_now_s
        self._last_now_s = now_s
        self._cycle_position_s += elapsed
        while True:
            if self._running:
                if self._cycle_position_s < self._run_s:
                    return True
                self._cycle_position_s -= self._run_s
                self._running = False
            else:
                if self._cycle_position_s < self._sleep_s:
                    return False
                self._cycle_position_s -= self._sleep_s
                self._running = True
