"""Fleet power planning: from battery state to compute slowdowns.

The fleet simulator models throttling as a per-phone execution-time
multiplier.  This module derives that multiplier from first principles
instead of a guess, per Section 4.3's observations:

* while a phone charges, the MIMD throttle holds CPU duty near the
  phone's thermal equilibrium (≈0.8 on a Sensation), stretching
  execution times by ``1 / duty``;
* once the battery is full, "the energy from the power outlet is
  directly applied to CPU computations" — no penalty, duty 1.0;
* a phone that starts the night at 60 % reaches full sooner and spends
  more of the window unthrottled than one starting empty.

:func:`plan_fleet_power` runs the charging simulation per phone and
returns a :class:`PhonePowerPlan` with the window-averaged slowdown the
scheduler/simulator should apply.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from .battery import PowerProfile
from .charging import ChargingTrace, simulate_charging
from .throttle import MimdThrottle

__all__ = ["PhonePowerPlan", "plan_fleet_power"]


@dataclass(frozen=True)
class PhonePowerPlan:
    """One phone's compute capability over a charging window."""

    phone_id: str
    start_percent: float
    window_s: float
    #: Seconds until the battery is full under MIMD throttling
    #: (window_s if it never fills within the window).
    full_charge_s: float
    #: CPU duty while charging (the MIMD equilibrium actually measured).
    charging_duty: float
    #: Window-averaged execution-time multiplier (>= 1).
    slowdown: float
    trace: ChargingTrace

    @property
    def compute_seconds(self) -> float:
        """CPU seconds available during the window."""
        return self.window_s / self.slowdown


def _plan_for(
    phone_id: str,
    profile: PowerProfile,
    start_percent: float,
    window_s: float,
    dt_s: float,
) -> PhonePowerPlan:
    if start_percent >= 100.0:
        # Already full: unthrottled all night.
        trace = simulate_charging(
            profile,
            MimdThrottle(),
            start_percent=99.0,
            target_percent=100.0,
            dt_s=dt_s,
        )
        return PhonePowerPlan(
            phone_id=phone_id,
            start_percent=start_percent,
            window_s=window_s,
            full_charge_s=0.0,
            charging_duty=1.0,
            slowdown=1.0,
            trace=trace,
        )

    trace = simulate_charging(
        profile,
        MimdThrottle(),
        start_percent=start_percent,
        target_percent=100.0,
        dt_s=dt_s,
        max_s=window_s,
    )
    charging_s = min(trace.duration_s, window_s)
    duty = trace.duty_factor if trace.cpu_on else 0.0
    compute_while_charging = duty * charging_s
    unthrottled_s = max(0.0, window_s - charging_s) if trace.reached_target else 0.0
    compute_total = compute_while_charging + unthrottled_s
    if compute_total <= 0:
        slowdown = math.inf
    else:
        slowdown = window_s / compute_total
    return PhonePowerPlan(
        phone_id=phone_id,
        start_percent=start_percent,
        window_s=window_s,
        full_charge_s=charging_s if trace.reached_target else window_s,
        charging_duty=duty,
        slowdown=max(1.0, slowdown),
        trace=trace,
    )


def plan_fleet_power(
    profiles: Mapping[str, PowerProfile],
    start_percent: Mapping[str, float],
    *,
    window_hours: float,
    dt_s: float = 5.0,
) -> dict[str, PhonePowerPlan]:
    """Plan every phone's throttling for a charging window.

    Returns plans keyed by phone id; the ``slowdown`` fields plug
    straight into :class:`~repro.sim.server.CentralServer`'s
    ``compute_slowdown`` argument.
    """
    if window_hours <= 0:
        raise ValueError(f"window_hours must be > 0, got {window_hours!r}")
    window_s = window_hours * 3600.0
    plans = {}
    for phone_id, profile in profiles.items():
        start = start_percent.get(phone_id, 0.0)
        if not 0.0 <= start <= 100.0:
            raise ValueError(
                f"start percent for {phone_id!r} must lie in [0, 100], "
                f"got {start!r}"
            )
        plans[phone_id] = _plan_for(phone_id, profile, start, window_s, dt_s)
    return plans
