"""Time-stepped charging simulation (Figure 10).

:func:`simulate_charging` advances a :class:`~repro.power.battery.PowerProfile`
under a throttling policy in fixed time steps, producing a
:class:`ChargingTrace`: the residual-percentage curve, the CPU activity
pattern, and summary statistics (time to full, accumulated compute
time, duty factor).  Running it with :class:`NoTaskPolicy`,
:class:`ContinuousPolicy`, and :class:`MimdThrottle` regenerates the
three curves of the paper's Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .battery import PowerProfile, ThermalState

__all__ = ["ChargingTrace", "simulate_charging", "compute_penalty"]


@dataclass(frozen=True)
class ChargingTrace:
    """Output of one charging simulation."""

    policy_name: str
    dt_s: float
    times_s: tuple[float, ...]
    percents: tuple[float, ...]
    cpu_on: tuple[bool, ...]
    temps_c: tuple[float, ...]
    reached_target: bool

    @property
    def duration_s(self) -> float:
        """Wall time until the target charge was reached (or the cap)."""
        return self.times_s[-1] if self.times_s else 0.0

    @property
    def compute_s(self) -> float:
        """Accumulated CPU-on time — useful work done while charging."""
        return sum(self.dt_s for on in self.cpu_on if on)

    @property
    def duty_factor(self) -> float:
        """Fraction of wall time the CPU was on."""
        if not self.cpu_on:
            return 0.0
        return sum(1 for on in self.cpu_on if on) / len(self.cpu_on)

    def percent_at(self, time_s: float) -> float:
        """Residual charge at a given time (step-wise interpolation)."""
        if not self.times_s:
            raise ValueError("empty trace")
        if time_s <= self.times_s[0]:
            return self.percents[0]
        for t, p in zip(self.times_s, self.percents):
            if t >= time_s:
                return p
        return self.percents[-1]

    def time_to_percent(self, percent: float) -> float | None:
        """First time the residual charge reached ``percent``."""
        for t, p in zip(self.times_s, self.percents):
            if p >= percent:
                return t
        return None


def simulate_charging(
    profile: PowerProfile,
    policy,
    *,
    start_percent: float = 0.0,
    target_percent: float = 100.0,
    dt_s: float = 1.0,
    max_s: float = 24 * 3600.0,
    telemetry=None,
    phone_id: str = "",
    sample_every_s: float = 60.0,
) -> ChargingTrace:
    """Charge a phone from ``start_percent`` to ``target_percent``.

    ``policy`` is queried every ``dt_s`` seconds for whether the CPU
    runs during the next step; the battery then integrates the power
    budget.  The simulation stops at the target charge or at ``max_s``
    (``reached_target`` records which).

    With an armed ``telemetry`` facade the battery residual is pushed
    into the ``battery_percent`` time series every ``sample_every_s``
    simulated seconds, labelled by policy (and ``phone_id`` when
    given) — the raw material for Fig. 10-style charging curves.
    """
    if not 0.0 <= start_percent < target_percent <= 100.0:
        raise ValueError(
            f"need 0 <= start < target <= 100, got {start_percent}, {target_percent}"
        )
    if dt_s <= 0 or max_s <= 0:
        raise ValueError("dt_s and max_s must be > 0")

    thermal = ThermalState(profile)
    times = [0.0]
    percents = [start_percent]
    temps = [thermal.temp_c if thermal.temp_c is not None else profile.t_ambient_c]
    cpu_flags: list[bool] = []
    now = 0.0
    percent = start_percent
    reached = False

    policy_name = getattr(policy, "name", policy.__class__.__name__)
    recording = telemetry is not None and telemetry.enabled
    series_labels = {"policy": policy_name}
    if phone_id:
        series_labels["id"] = phone_id
    next_sample_s = 0.0

    def push_sample() -> None:
        telemetry.record_sample(
            "battery_percent", now * 1000.0, percent, **series_labels
        )

    if recording:
        push_sample()
        next_sample_s = sample_every_s

    while now < max_s:
        on = bool(policy.cpu_on(now, percent))
        temp = thermal.step(cpu_on=on, dt_s=dt_s)
        rate = profile.charge_rate_percent_per_s(temp)
        percent = min(100.0, percent + rate * dt_s)
        now += dt_s
        times.append(now)
        percents.append(percent)
        temps.append(temp)
        cpu_flags.append(on)
        if recording and now >= next_sample_s:
            push_sample()
            next_sample_s = now + sample_every_s
        if percent >= target_percent - 1e-9:
            reached = True
            break

    if recording:
        push_sample()

    return ChargingTrace(
        policy_name=policy_name,
        dt_s=dt_s,
        times_s=tuple(times),
        percents=tuple(percents),
        cpu_on=tuple(cpu_flags),
        temps_c=tuple(temps),
        reached_target=reached,
    )


def compute_penalty(throttled: ChargingTrace, continuous: ChargingTrace) -> float:
    """Extra wall time per unit of compute under throttling.

    The paper reports ≈24.5 %: doing the same computation with the MIMD
    duty cycle takes about 1.245× the wall time of running continuously.
    Computed as the ratio of wall-time-per-compute-second, minus one.
    """
    if throttled.compute_s <= 0 or continuous.compute_s <= 0:
        raise ValueError("both traces need nonzero compute time")
    throttled_rate = throttled.duration_s / throttled.compute_s
    continuous_rate = continuous.duration_s / continuous.compute_s
    return throttled_rate / continuous_rate - 1.0
