"""Battery and charging model (Section 4.3).

The paper observes that a phone's residual battery percentage grows
*linearly* with time while charging, at a device- and charger-specific
rate, and that heavy CPU use can bend this profile: on the HTC
Sensation a full charge takes ≈100 minutes idle but ≈135 minutes under
continuous CPU load (+35 %), while the HTC G2 shows "no significant
effect".  Yet the paper's MIMD throttle sustains a high duty cycle
(compute time only ≈24.5 % above continuous) *without* delaying the
charge.

A pure power-budget model cannot produce all three observations at
once: if every CPU-on second proportionally starved the battery, any
duty cycle high enough to be useful would delay charging.  The
mechanism that reconciles them is **thermal derating**: the charging
circuit reduces charge current as the device heats up, CPU load heats
the device with a time constant of minutes, and duty-cycling lets it
cool between bursts.  The model is therefore:

* the battery charges at ``battery_demand_w`` while the device
  temperature is at most ``t_throttle_c``;
* above the threshold the charge rate is derated linearly by
  ``charge_derate_per_c`` per °C (floored at ``min_rate_fraction``);
* CPU load drives temperature toward
  ``t_ambient_c + cpu_heat_c × duty`` with time constant ``tau_s``.

The *Sensation-like* preset is calibrated so an idle charge takes
≈100 min, a continuously loaded charge ≈135 min, and the temperature
threshold sits at the ≈0.8-duty point — which is what makes the MIMD
controller's equilibrium match the paper's ≈24.5 % compute penalty.
The *G2-like* preset heats too little to ever cross its threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PowerProfile",
    "ThermalState",
    "HTC_SENSATION",
    "HTC_G2",
    "battery_rate_percent_per_s",
]


def battery_rate_percent_per_s(power_w: float, battery_wh: float) -> float:
    """Convert battery input power to residual-percentage change rate."""
    if battery_wh <= 0:
        raise ValueError(f"battery_wh must be > 0, got {battery_wh!r}")
    return power_w / battery_wh * 100.0 / 3600.0


@dataclass(frozen=True)
class PowerProfile:
    """Electrical and thermal characteristics of one phone + charger."""

    name: str
    battery_wh: float
    battery_demand_w: float
    cpu_draw_w: float
    t_ambient_c: float
    cpu_heat_c: float
    tau_s: float
    t_throttle_c: float
    charge_derate_per_c: float
    min_rate_fraction: float = 0.3

    def __post_init__(self) -> None:
        for label, value in (
            ("battery_wh", self.battery_wh),
            ("battery_demand_w", self.battery_demand_w),
            ("tau_s", self.tau_s),
        ):
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{label} must be finite and > 0, got {value!r}")
        for label, value in (
            ("cpu_draw_w", self.cpu_draw_w),
            ("cpu_heat_c", self.cpu_heat_c),
            ("charge_derate_per_c", self.charge_derate_per_c),
        ):
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{label} must be finite and >= 0, got {value!r}")
        if not 0.0 < self.min_rate_fraction <= 1.0:
            raise ValueError(
                f"min_rate_fraction must lie in (0, 1], got {self.min_rate_fraction!r}"
            )
        if self.t_throttle_c < self.t_ambient_c:
            raise ValueError("t_throttle_c must be >= t_ambient_c")

    # -- derived characteristics ------------------------------------------

    @property
    def ideal_rate_percent_per_s(self) -> float:
        """Slope of the linear profile with no tasks (cool device)."""
        return battery_rate_percent_per_s(self.battery_demand_w, self.battery_wh)

    @property
    def ideal_full_charge_s(self) -> float:
        """Seconds for 0 → 100 % with no tasks running."""
        return 100.0 / self.ideal_rate_percent_per_s

    @property
    def steady_state_temp_c(self) -> float:
        """Device temperature under continuous CPU load."""
        return self.t_ambient_c + self.cpu_heat_c

    @property
    def equilibrium_duty(self) -> float:
        """Duty cycle whose steady-state temperature hits the threshold.

        Below this, charging is unaffected; above it, derating begins.
        The Sensation-like preset puts this near 0.8, matching the
        paper's ≈24.5 % compute-time penalty for MIMD throttling.
        """
        if self.cpu_heat_c == 0:
            return 1.0
        return min(1.0, (self.t_throttle_c - self.t_ambient_c) / self.cpu_heat_c)

    def rate_fraction(self, temp_c: float) -> float:
        """Fraction of the ideal charge rate delivered at ``temp_c``."""
        excess = max(0.0, temp_c - self.t_throttle_c)
        return max(self.min_rate_fraction, 1.0 - self.charge_derate_per_c * excess)

    def charge_rate_percent_per_s(self, temp_c: float) -> float:
        """Residual-percentage slope at the given device temperature."""
        return self.ideal_rate_percent_per_s * self.rate_fraction(temp_c)

    def continuous_full_charge_s(self) -> float:
        """Approximate 0 → 100 % time under continuous load.

        Assumes the device reaches its steady-state temperature quickly
        relative to the charge duration (tau is minutes; charging is
        more than an hour), so the derated rate dominates.
        """
        return 100.0 / self.charge_rate_percent_per_s(self.steady_state_temp_c)


@dataclass
class ThermalState:
    """First-order device temperature driven by CPU duty."""

    profile: PowerProfile
    temp_c: float | None = None

    def __post_init__(self) -> None:
        if self.temp_c is None:
            self.temp_c = self.profile.t_ambient_c

    def step(self, *, cpu_on: bool, dt_s: float) -> float:
        """Advance the temperature by one time step; return it."""
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s!r}")
        target = self.profile.t_ambient_c + (
            self.profile.cpu_heat_c if cpu_on else 0.0
        )
        assert self.temp_c is not None
        decay = math.exp(-dt_s / self.profile.tau_s)
        self.temp_c = target + (self.temp_c - target) * decay
        return self.temp_c


#: Calibrated to the paper's HTC Sensation observations: 1520 mAh at
#: 3.7 V ≈ 5.6 Wh battery charging at ≈3.4 W → ≈99 min idle full
#: charge; continuous load heats the device to 45 °C where derating
#: yields ≈135 min; the 41 °C threshold sits at duty ≈0.8 — the MIMD
#: equilibrium matching the ≈24.5 % compute penalty.
HTC_SENSATION = PowerProfile(
    name="htc-sensation",
    battery_wh=5.6,
    battery_demand_w=3.4,
    cpu_draw_w=1.2,
    t_ambient_c=25.0,
    cpu_heat_c=20.0,
    tau_s=120.0,
    t_throttle_c=41.0,
    charge_derate_per_c=0.065,
)

#: The G2's single-core CPU heats the device far less; its temperature
#: never crosses the threshold, so even continuous load leaves the
#: charging profile unchanged ("no significant effect").
HTC_G2 = PowerProfile(
    name="htc-g2",
    battery_wh=4.8,
    battery_demand_w=3.0,
    cpu_draw_w=0.8,
    t_ambient_c=25.0,
    cpu_heat_c=9.0,
    tau_s=120.0,
    t_throttle_c=41.0,
    charge_derate_per_c=0.065,
)
