"""Scheduler comparison harness.

The paper's headline scheduler result (Fig. 12a) is a single run; a
robust comparison repeats it over many randomised conditions.  This
module runs a set of schedulers over seeded variations of a scenario
and summarises the makespan distributions — the machinery behind the
scheduler-tournament bench and a reusable tool for anyone extending
CWC with new scheduling policies.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..core.greedy import Scheduler
from ..core.instance import SchedulingInstance
from .stats import summarize
from .tables import render_table

__all__ = ["SchedulerComparison", "compare_schedulers"]


@dataclass(frozen=True)
class SchedulerComparison:
    """Makespan statistics for one scheduler across trials."""

    name: str
    makespans_ms: tuple[float, ...]

    @property
    def mean_ms(self) -> float:
        return sum(self.makespans_ms) / len(self.makespans_ms)

    @property
    def summary(self):
        return summarize(list(self.makespans_ms))


def compare_schedulers(
    schedulers: Sequence[Scheduler],
    instance_factory: Callable[[int], SchedulingInstance],
    *,
    trials: int = 10,
    validate: bool = True,
) -> list[SchedulerComparison]:
    """Run every scheduler on ``trials`` seeded instances.

    ``instance_factory(seed)`` builds the trial's instance; every
    scheduler sees the *same* instance per trial, so the comparison is
    paired.  Results come back sorted fastest-mean-first.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    if not schedulers:
        raise ValueError("need at least one scheduler")
    names = [scheduler.name for scheduler in schedulers]
    if len(set(names)) != len(names):
        raise ValueError("scheduler names must be unique")

    makespans: dict[str, list[float]] = {name: [] for name in names}
    for seed in range(trials):
        instance = instance_factory(seed)
        for scheduler in schedulers:
            schedule = scheduler.schedule(instance)
            if validate:
                schedule.validate(instance)
            makespans[scheduler.name].append(
                schedule.predicted_makespan_ms(instance)
            )

    results = [
        SchedulerComparison(name=name, makespans_ms=tuple(values))
        for name, values in makespans.items()
    ]
    results.sort(key=lambda comparison: comparison.mean_ms)
    return results


def render_comparison(results: Sequence[SchedulerComparison]) -> str:
    """Tabulate a comparison (fastest first, ratios vs the winner)."""
    if not results:
        raise ValueError("nothing to render")
    best = results[0].mean_ms
    rows = []
    for comparison in results:
        stats = comparison.summary
        rows.append(
            (
                comparison.name,
                f"{stats.mean / 1000:.1f}",
                f"{stats.p50 / 1000:.1f}",
                f"{stats.p90 / 1000:.1f}",
                f"{comparison.mean_ms / best:.2f}x",
            )
        )
    return render_table(
        ("scheduler", "mean (s)", "p50 (s)", "p90 (s)", "vs best"),
        rows,
        title=f"scheduler comparison over {len(results[0].makespans_ms)} trials",
    )
