"""Energy and cost model of Section 3.2.

The paper projects yearly energy costs for running compute on servers
versus smartphones:

* a server consumes 26.8 W (Intel Core 2 Duo) to 248 W (Nehalem) and
  additionally pays a data-centre Power Usage Effectiveness (PUE) of
  2.5 — for every watt at the server, 2.5 W total are drawn for
  cooling and power distribution;
* a smartphone peaks at ≈1.2 W (Tegra 3) with no cooling overhead;
* at the April-2011 US average commercial rate of 12.7 ¢/kWh this
  gives ≈$74.5/year for the Core 2 Duo server versus ≈$1.33/year per
  phone — over an order of magnitude.

These helpers regenerate that table and support what-if analyses
(different PUE, rates, fleet sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "EnergyCostModel",
    "DevicePower",
    "CORE2DUO_SERVER",
    "NEHALEM_SERVER",
    "TEGRA3_PHONE",
    "paper_cost_table",
]

#: US average commercial electricity price, April 2011 ($ per kWh).
PAPER_RATE_PER_KWH = 0.127

#: Average data-centre Power Usage Effectiveness the paper assumes.
PAPER_PUE = 2.5

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class DevicePower:
    """Peak power draw of one compute device."""

    name: str
    watts: float
    #: PUE multiplier; 1.0 for devices that need no cooling/distribution
    #: overhead (smartphones).
    pue: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.watts) or self.watts <= 0:
            raise ValueError(f"watts must be finite and > 0, got {self.watts!r}")
        if self.pue < 1.0:
            raise ValueError(f"pue must be >= 1, got {self.pue!r}")

    @property
    def effective_watts(self) -> float:
        return self.watts * self.pue


CORE2DUO_SERVER = DevicePower("Intel Core 2 Duo server", 26.8, pue=PAPER_PUE)
NEHALEM_SERVER = DevicePower("Intel Nehalem server", 248.0, pue=PAPER_PUE)
TEGRA3_PHONE = DevicePower("Tegra 3 smartphone", 1.2, pue=1.0)


@dataclass(frozen=True)
class EnergyCostModel:
    """Yearly energy cost calculator."""

    rate_per_kwh: float = PAPER_RATE_PER_KWH

    def __post_init__(self) -> None:
        if self.rate_per_kwh <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate_per_kwh!r}")

    def yearly_cost(self, device: DevicePower, *, duty: float = 1.0) -> float:
        """Dollars per year to run ``device`` at the given duty cycle.

        The paper's server numbers assume 24/365 operation (duty 1.0);
        a CWC phone computing only during 8 nightly charging hours has
        duty = 8/24.
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must lie in [0, 1], got {duty!r}")
        kwh = device.effective_watts / 1000.0 * HOURS_PER_YEAR * duty
        return kwh * self.rate_per_kwh

    def replacement_fleet_size(
        self, server: DevicePower, phone: DevicePower
    ) -> float:
        """Phones that fit in one server's energy envelope.

        Section 1's argument: at similar per-core capability, one can
        "harness 20 times more computational power while consuming the
        same energy" — the ratio of effective power draws.
        """
        return server.effective_watts / phone.effective_watts

    def fleet_cost(
        self, phone: DevicePower, count: int, *, duty: float = 1.0
    ) -> float:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        return self.yearly_cost(phone, duty=duty) * count


def paper_cost_table(
    model: EnergyCostModel | None = None,
) -> list[tuple[str, float, float]]:
    """(device, effective watts, $/year) rows for the Section 3.2 table."""
    model = model or EnergyCostModel()
    return [
        (device.name, device.effective_watts, model.yearly_cost(device))
        for device in (CORE2DUO_SERVER, NEHALEM_SERVER, TEGRA3_PHONE)
    ]
