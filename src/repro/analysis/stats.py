"""Statistics helpers shared by experiments: CDFs, percentiles, summaries.

Every figure in the paper's evaluation is either a CDF or a timeline;
this module provides the empirical-CDF machinery the experiment drivers
use so each driver stays about the experiment, not the arithmetic.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["EmpiricalCdf", "percentile", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    # The (lo + (hi - lo) * w) form is exact when both endpoints are
    # equal, so results never leave the sample's range.
    return ordered[low] + (ordered[high] - ordered[low]) * weight


class EmpiricalCdf:
    """Empirical cumulative distribution over a sample.

    Examples
    --------
    >>> cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
    >>> cdf.fraction_below(2.5)
    0.5
    >>> cdf.quantile(0.5)
    2.5
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("EmpiricalCdf needs at least one value")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(self._values)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold)."""
        # Binary search for the rightmost value <= threshold.
        low, high = 0, len(self._values)
        while low < high:
            mid = (low + high) // 2
            if self._values[mid] <= threshold:
                low = mid + 1
            else:
                high = mid
        return low / len(self._values)

    def quantile(self, fraction: float) -> float:
        """Inverse CDF via linear interpolation, ``fraction`` in [0, 1]."""
        return percentile(self._values, fraction * 100.0)

    def median(self) -> float:
        return self.quantile(0.5)

    def points(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs — directly plottable."""
        n = len(self._values)
        return [(v, (i + 1) / n) for i, v in enumerate(self._values)]


@dataclass(frozen=True)
class _Summary:
    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    maximum: float


def summarize(values: Sequence[float]) -> _Summary:
    """Compact description of a sample (used in experiment printouts)."""
    if not values:
        raise ValueError("summarize of empty sequence")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return _Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        p50=percentile(values, 50.0),
        p90=percentile(values, 90.0),
        maximum=max(values),
    )
