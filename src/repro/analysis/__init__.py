"""Shared statistics, cost modelling, and table rendering."""

from .costs import (
    CORE2DUO_SERVER,
    NEHALEM_SERVER,
    TEGRA3_PHONE,
    DevicePower,
    EnergyCostModel,
    paper_cost_table,
)
from .compare import SchedulerComparison, compare_schedulers, render_comparison
from .gantt import render_timeline
from .stats import EmpiricalCdf, percentile, summarize
from .tables import render_cdf_series, render_table
from .validation import (
    PredictionValidation,
    mape,
    r_squared,
    regression_through_origin,
    validation_summary,
)

__all__ = [
    "CORE2DUO_SERVER",
    "NEHALEM_SERVER",
    "TEGRA3_PHONE",
    "DevicePower",
    "EmpiricalCdf",
    "SchedulerComparison",
    "compare_schedulers",
    "render_comparison",
    "EnergyCostModel",
    "paper_cost_table",
    "PredictionValidation",
    "mape",
    "percentile",
    "r_squared",
    "regression_through_origin",
    "validation_summary",
    "render_cdf_series",
    "render_timeline",
    "render_table",
    "summarize",
]
