"""Prediction-model validation statistics (the Figure 6 analysis).

Figure 6 argues visually that clock-ratio scaling predicts task
runtimes ("the points are clustered around the y = x line").  This
module quantifies that claim the way a model-validation section would:

* :func:`regression_through_origin` — the slope of measured-vs-expected
  through the origin (1.0 = unbiased scaling);
* :func:`r_squared` — variance explained against the y = x model;
* :func:`mape` — mean absolute percentage error of the prediction;
* :func:`validation_summary` — all of the above for a set of
  (expected, measured) pairs.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "PredictionValidation",
    "mape",
    "r_squared",
    "regression_through_origin",
    "validation_summary",
]


def _check_pairs(pairs: Sequence[tuple[float, float]]) -> None:
    if not pairs:
        raise ValueError("need at least one (expected, measured) pair")
    for expected, measured in pairs:
        if expected <= 0 or measured <= 0:
            raise ValueError(
                f"speedups must be > 0, got ({expected!r}, {measured!r})"
            )


def regression_through_origin(pairs: Sequence[tuple[float, float]]) -> float:
    """Least-squares slope of measured = slope * expected.

    1.0 means the clock-ratio model is unbiased; above 1.0 means phones
    systematically beat their clock prediction (Fig. 6's outliers pull
    this slightly up).
    """
    _check_pairs(pairs)
    numerator = sum(e * m for e, m in pairs)
    denominator = sum(e * e for e, _ in pairs)
    return numerator / denominator


def r_squared(pairs: Sequence[tuple[float, float]]) -> float:
    """Variance explained by the identity model measured = expected.

    Computed against y = x (not a fitted line): the paper's claim is
    that the *parameter-free* clock-ratio model predicts measurements.
    Can be negative if the model is worse than predicting the mean.
    """
    _check_pairs(pairs)
    measured = [m for _, m in pairs]
    mean = sum(measured) / len(measured)
    ss_total = sum((m - mean) ** 2 for m in measured)
    ss_residual = sum((m - e) ** 2 for e, m in pairs)
    if ss_total == 0:
        return 1.0 if ss_residual == 0 else 0.0
    return 1.0 - ss_residual / ss_total

def mape(pairs: Sequence[tuple[float, float]]) -> float:
    """Mean absolute percentage error of expected vs measured."""
    _check_pairs(pairs)
    return sum(abs(m - e) / m for e, m in pairs) / len(pairs)


@dataclass(frozen=True)
class PredictionValidation:
    """Validation statistics for a prediction model."""

    pairs: int
    slope: float
    r2: float
    mape: float
    max_under_prediction: float
    max_over_prediction: float


def validation_summary(
    pairs: Sequence[tuple[float, float]],
) -> PredictionValidation:
    """All validation statistics for (expected, measured) speedup pairs."""
    _check_pairs(pairs)
    ratios = [m / e for e, m in pairs]
    return PredictionValidation(
        pairs=len(pairs),
        slope=regression_through_origin(pairs),
        r2=r_squared(pairs),
        mape=mape(pairs),
        max_under_prediction=max(ratios) - 1.0,
        max_over_prediction=1.0 - min(ratios),
    )
