"""ASCII timeline rendering — Figure 12's task-execution plots.

Figure 12a/12c draw per-phone timelines where vertical black stripes
are server-to-phone copies, white regions are local executions, shaded
regions are re-scheduled work, and ``x`` marks where failed tasks were
re-assigned.  :func:`render_timeline` reproduces that visual in a
terminal:

* ``#`` — copying executable/input from the server;
* ``=`` — executing locally;
* ``%`` — executing re-scheduled (migrated) work;
* ``!`` — the instant a failure cut a span short;
* `` `` — idle.
"""

from __future__ import annotations

from ..sim.trace import SpanKind, TimelineTrace

__all__ = ["render_timeline"]

_CHAR_COPY = "#"
_CHAR_EXECUTE = "="
_CHAR_RESCHEDULED = "%"
_CHAR_FAILURE = "!"
_CHAR_IDLE = " "


def render_timeline(
    trace: TimelineTrace,
    *,
    width: int = 80,
    phone_ids: tuple[str, ...] | None = None,
) -> str:
    """Render one line per phone over the run's full duration.

    ``width`` columns span ``[0, makespan]``; a span shorter than one
    column still paints at least one cell so brief copies stay visible
    (they are the "vertical black stripes" of Fig. 12a).
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width!r}")
    makespan = trace.makespan_ms()
    if makespan <= 0:
        return "(empty trace)"
    ids = phone_ids if phone_ids is not None else trace.phone_ids()
    label_width = max((len(pid) for pid in ids), default=0)

    def column(time_ms: float) -> int:
        return min(width - 1, int(time_ms / makespan * width))

    lines = []
    for pid in ids:
        cells = [_CHAR_IDLE] * width
        # Paint executions first and copies second: a copy narrower than
        # one column must stay visible over the execution that follows
        # it (the copies ARE the figure's vertical black stripes).
        spans = sorted(
            trace.spans_for(pid), key=lambda s: s.kind is SpanKind.COPY
        )
        for span in spans:
            start = column(span.start_ms)
            end = max(start + 1, column(span.end_ms))
            if span.kind is SpanKind.COPY:
                char = _CHAR_COPY
            elif span.rescheduled:
                char = _CHAR_RESCHEDULED
            else:
                char = _CHAR_EXECUTE
            for cell in range(start, end):
                cells[cell] = char
        for span in spans:
            if span.interrupted:
                end = max(column(span.start_ms) + 1, column(span.end_ms))
                cells[end - 1] = _CHAR_FAILURE
        lines.append(f"{pid.rjust(label_width)} |{''.join(cells)}|")

    axis = (
        f"{' ' * label_width} +{'-' * width}+\n"
        f"{' ' * label_width}  0{' ' * (width - len(f'{makespan / 1000:.0f} s') - 1)}"
        f"{makespan / 1000:.0f} s"
    )
    legend = (
        f"{' ' * label_width}  legend: {_CHAR_COPY}=copy "
        f"{_CHAR_EXECUTE}=execute {_CHAR_RESCHEDULED}=rescheduled "
        f"{_CHAR_FAILURE}=failure"
    )
    return "\n".join(lines + [axis, legend])
