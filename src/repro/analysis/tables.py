"""Plain-text table rendering for experiment output.

Every experiment driver prints the rows/series its paper figure
reports; this module keeps the formatting in one place so drivers stay
readable and output stays uniform across the harness.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_cdf_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    cells = [[_format(value) for value in row] for row in rows]
    for index, row in enumerate(cells):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_cdf_series(
    points: Sequence[tuple[float, float]],
    *,
    label: str = "value",
    sample_fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
) -> str:
    """Render a CDF as a compact quantile table.

    Full CDFs have one point per sample; printing a handful of
    quantiles conveys the curve's shape in a terminal.
    """
    if not points:
        raise ValueError("points must be non-empty")
    rows = []
    for fraction in sample_fractions:
        target = fraction
        # Points are (value, cumulative fraction), sorted by value.
        chosen = points[-1][0]
        for value, cumulative in points:
            if cumulative >= target:
                chosen = value
                break
        rows.append((f"p{int(fraction * 100):02d}", chosen))
    return render_table(("quantile", label), rows)


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
