"""Span tracer: the flight recorder behind ``repro trace``.

A :class:`Tracer` records :class:`TraceSpan` intervals — named phases
of work with explicit parent links — under the same discipline the
event bus applies to envelopes: a fixed schema, monotone-envelope
validation at close time, and a ring-bounded in-memory store so a
long-horizon run cannot grow without bound.

Dual clocks.  Every span carries a *wall* interval (``start_wall_s`` /
``end_wall_s``, read from an injectable monotonic clock) and an
optional *sim* interval (``start_sim_ms`` / ``end_sim_ms``).  Wall
time answers the profiler's question ("where did ``solve_s`` go?");
sim time ties lifecycle spans back to the event log.  Scheduler-side
spans (capacity search, pod solves) carry wall only; server-side
lifecycle spans (dispatch, execute, retry) carry both.

Cross-process propagation.  Worker processes cannot share the parent's
``Tracer``.  Instead the parent pickles a :class:`SpanContext` into the
worker-init payload, the worker records spans into its own local
tracer, ships them back as plain dicts (:meth:`Tracer.drain_dicts`),
and the parent re-homes them with :meth:`Tracer.adopt` — span ids are
remapped into the parent's id space, worker roots are re-parented onto
the context span, and intervals are clamped into the adopting parent
so the child⊆parent invariant survives clock granularity across
processes.

Two usage styles:

* stack style, for straight-line phases::

      with tracer.span("bounds", category="capacity"):
          ...

* explicit handles, for event-loop code where spans overlap::

      handle = tracer.start("execute", parent=round_handle,
                            sim_time_ms=now, process="fleet/phone-3")
      ...
      tracer.end(handle, sim_time_ms=later)

Determinism: the tracer allocates ids from a process-local counter and
never consults a RNG; with an injected fake clock the whole span store
is reproducible byte-for-byte.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

__all__ = [
    "SpanError",
    "SpanOrderError",
    "SpanSchemaError",
    "SpanContext",
    "TraceSpan",
    "Tracer",
    "maybe_span",
    "validate_span_dict",
]

#: Legal terminal states for a span.
SPAN_STATUSES = ("ok", "error", "interrupted")

#: Wall-interval slack (seconds) allowed when clamping adopted child
#: spans into their parent: anything within this is clock granularity,
#: anything beyond it is a caller bug and raises.
_ADOPT_SLACK_S = 0.25


class SpanError(ValueError):
    """A span was misused (double close, unknown parent, bad schema)."""


class SpanOrderError(SpanError):
    """A span violated the monotone envelope (end before start,
    child outside its parent, sim time running backwards)."""


class SpanSchemaError(SpanError):
    """A span dict failed schema validation."""


@dataclass(frozen=True)
class SpanContext:
    """Picklable capsule tying worker-side spans back to a parent span.

    ``span_id`` names the parent-side span the worker's roots will hang
    from; ``run_id`` and ``process`` seed the worker's local tracer.
    """

    run_id: str
    span_id: int
    process: str = "worker"


@dataclass(frozen=True)
class TraceSpan:
    """One closed interval of work.  Immutable once recorded."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    process: str
    start_wall_s: float
    end_wall_s: float
    start_sim_ms: float | None = None
    end_sim_ms: float | None = None
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def wall_ms(self) -> float:
        return (self.end_wall_s - self.start_wall_s) * 1e3

    @property
    def sim_ms(self) -> float | None:
        if self.start_sim_ms is None or self.end_sim_ms is None:
            return None
        return self.end_sim_ms - self.start_sim_ms

    def to_dict(self) -> dict:
        d = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "process": self.process,
            "start_wall_s": self.start_wall_s,
            "end_wall_s": self.end_wall_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }
        if self.start_sim_ms is not None:
            d["start_sim_ms"] = self.start_sim_ms
        if self.end_sim_ms is not None:
            d["end_sim_ms"] = self.end_sim_ms
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpan":
        validate_span_dict(data)
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            category=data.get("category", ""),
            process=data.get("process", "main"),
            start_wall_s=float(data["start_wall_s"]),
            end_wall_s=float(data["end_wall_s"]),
            start_sim_ms=data.get("start_sim_ms"),
            end_sim_ms=data.get("end_sim_ms"),
            status=data.get("status", "ok"),
            attrs=dict(data.get("attrs", {})),
        )


def validate_span_dict(data: dict) -> None:
    """Schema-gate one span dict; raises :class:`SpanSchemaError`."""
    if not isinstance(data, dict):
        raise SpanSchemaError(f"span must be a dict, got {type(data).__name__}")
    span_id = data.get("span_id")
    if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
        raise SpanSchemaError(f"span_id must be a positive int, got {span_id!r}")
    parent_id = data.get("parent_id")
    if parent_id is not None and (
        not isinstance(parent_id, int) or isinstance(parent_id, bool)
    ):
        raise SpanSchemaError(f"parent_id must be int or None, got {parent_id!r}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise SpanSchemaError(f"name must be a non-empty str, got {name!r}")
    for key in ("start_wall_s", "end_wall_s"):
        value = data.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SpanSchemaError(f"{key} must be a number, got {value!r}")
    if data["end_wall_s"] < data["start_wall_s"]:
        raise SpanSchemaError(
            f"span {span_id}: end_wall_s {data['end_wall_s']} precedes "
            f"start_wall_s {data['start_wall_s']}"
        )
    for key in ("start_sim_ms", "end_sim_ms"):
        value = data.get(key)
        if value is not None and (
            not isinstance(value, (int, float)) or isinstance(value, bool)
        ):
            raise SpanSchemaError(f"{key} must be a number or absent, got {value!r}")
    sim_start = data.get("start_sim_ms")
    sim_end = data.get("end_sim_ms")
    if sim_start is not None and sim_end is not None and sim_end < sim_start:
        raise SpanSchemaError(
            f"span {span_id}: end_sim_ms {sim_end} precedes start_sim_ms {sim_start}"
        )
    status = data.get("status", "ok")
    if status not in SPAN_STATUSES:
        raise SpanSchemaError(f"status must be one of {SPAN_STATUSES}, got {status!r}")
    attrs = data.get("attrs", {})
    if not isinstance(attrs, dict):
        raise SpanSchemaError(f"attrs must be a dict, got {type(attrs).__name__}")


class _OpenSpan:
    """Mutable in-flight span; becomes a :class:`TraceSpan` on close."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "process",
        "start_wall_s",
        "start_sim_ms",
        "attrs",
        "closed",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str,
        process: str,
        start_wall_s: float,
        start_sim_ms: float | None,
        attrs: dict,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.process = process
        self.start_wall_s = start_wall_s
        self.start_sim_ms = start_sim_ms
        self.attrs = attrs
        self.closed = False

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value


class Tracer:
    """Span recorder for one run (or one worker-side segment of one).

    ``max_spans`` ring-bounds the closed-span store exactly like the
    event bus's ``max_events``: the newest spans win, and
    ``dropped_spans`` counts the evicted.  The oracle's span-tree
    invariants assume an unbounded store (they treat a missing parent
    as a violation), so validation runs bound ``max_spans=None``.
    """

    def __init__(
        self,
        run_id: str = "",
        *,
        process: str = "main",
        wall_clock=time.monotonic,
        max_spans: int | None = None,
    ) -> None:
        self.run_id = run_id
        self.default_process = process
        self._wall_clock = wall_clock
        self._spans: deque[TraceSpan] = deque(maxlen=max_spans)
        self._open: dict[int, _OpenSpan] = {}
        self._stack: list[_OpenSpan] = []
        self._next_id = 1
        self.dropped_spans = 0

    # -- introspection ------------------------------------------------------

    @property
    def spans(self) -> tuple[TraceSpan, ...]:
        """Closed spans in close order (oldest retained first)."""
        return tuple(self._spans)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def to_dicts(self) -> list[dict]:
        """Closed spans as plain dicts, sorted by span id."""
        return [s.to_dict() for s in sorted(self._spans, key=lambda s: s.span_id)]

    def drain_dicts(self) -> list[dict]:
        """:meth:`to_dicts`, then clear the closed-span store.

        Worker processes call this to ship a segment back to the
        parent; durable checkpoints call it to flush the closed
        segment before the boundary.
        """
        out = self.to_dicts()
        self._spans.clear()
        return out

    # -- recording ----------------------------------------------------------

    def start(
        self,
        name: str,
        *,
        category: str = "",
        process: str | None = None,
        parent: "_OpenSpan | None" = None,
        sim_time_ms: float | None = None,
        **attrs,
    ) -> _OpenSpan:
        """Open a span.  ``parent`` defaults to the current stack top."""
        if not name:
            raise SpanError("span name must be non-empty")
        if parent is None and self._stack:
            parent = self._stack[-1]
        parent_id = None
        if parent is not None:
            if parent.closed:
                raise SpanError(
                    f"cannot parent span {name!r} under closed span "
                    f"{parent.name!r} ({parent.span_id})"
                )
            parent_id = parent.span_id
        handle = _OpenSpan(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            category=category,
            process=process or self.default_process,
            start_wall_s=self._wall_clock(),
            start_sim_ms=sim_time_ms,
            attrs=attrs,
        )
        self._next_id += 1
        if parent is not None and handle.start_wall_s < parent.start_wall_s:
            raise SpanOrderError(
                f"span {name!r} starts at {handle.start_wall_s} before its "
                f"parent {parent.name!r} at {parent.start_wall_s}"
            )
        self._open[handle.span_id] = handle
        return handle

    def end(
        self,
        handle: _OpenSpan,
        *,
        sim_time_ms: float | None = None,
        status: str = "ok",
        **attrs,
    ) -> TraceSpan:
        """Close a span, validate its envelope, and record it."""
        if handle.closed:
            raise SpanError(f"span {handle.name!r} ({handle.span_id}) already closed")
        if status not in SPAN_STATUSES:
            raise SpanError(f"status must be one of {SPAN_STATUSES}, got {status!r}")
        end_wall = self._wall_clock()
        if end_wall < handle.start_wall_s:
            raise SpanOrderError(
                f"span {handle.name!r}: wall clock ran backwards "
                f"({end_wall} < {handle.start_wall_s})"
            )
        end_sim = sim_time_ms if sim_time_ms is not None else handle.start_sim_ms
        if (
            handle.start_sim_ms is not None
            and end_sim is not None
            and end_sim < handle.start_sim_ms
        ):
            raise SpanOrderError(
                f"span {handle.name!r}: sim clock ran backwards "
                f"({end_sim} < {handle.start_sim_ms})"
            )
        if attrs:
            handle.attrs.update(attrs)
        handle.closed = True
        del self._open[handle.span_id]
        span = TraceSpan(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            name=handle.name,
            category=handle.category,
            process=handle.process,
            start_wall_s=handle.start_wall_s,
            end_wall_s=end_wall,
            start_sim_ms=handle.start_sim_ms,
            end_sim_ms=end_sim,
            status=status,
            attrs=handle.attrs,
        )
        self._record(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        category: str = "",
        process: str | None = None,
        sim_time_ms: float | None = None,
        **attrs,
    ):
        """Stack-style span: children started inside nest under it."""
        handle = self.start(
            name,
            category=category,
            process=process,
            sim_time_ms=sim_time_ms,
            **attrs,
        )
        self._stack.append(handle)
        try:
            yield handle
        except BaseException:
            self._stack.pop()
            self.end(handle, status="error")
            raise
        else:
            self._stack.pop()
            self.end(handle)

    @contextmanager
    def as_current(self, handle: _OpenSpan):
        """Make an explicit handle the stack parent for the duration."""
        if handle.closed:
            raise SpanError(f"span {handle.name!r} is closed")
        self._stack.append(handle)
        try:
            yield handle
        finally:
            self._stack.pop()

    def abort_open(
        self, *, status: str = "interrupted", sim_time_ms: float | None = None
    ) -> int:
        """Close every in-flight span (innermost first).

        Called at checkpoint/shutdown boundaries so the store holds
        only closed, exportable segments.  Returns the count closed.
        """
        handles = sorted(self._open.values(), key=lambda h: -h.span_id)
        for handle in handles:
            self.end(handle, status=status, sim_time_ms=sim_time_ms)
        self._stack.clear()
        return len(handles)

    # -- cross-process ------------------------------------------------------

    def context(self, handle: _OpenSpan, *, process: str = "worker") -> SpanContext:
        """A picklable context naming ``handle`` as the remote parent."""
        return SpanContext(run_id=self.run_id, span_id=handle.span_id, process=process)

    @classmethod
    def from_context(cls, ctx: SpanContext, *, wall_clock=time.monotonic) -> "Tracer":
        """A worker-local tracer seeded from a pickled context."""
        return cls(ctx.run_id, process=ctx.process, wall_clock=wall_clock)

    def adopt(
        self,
        span_dicts,
        *,
        parent: "_OpenSpan | TraceSpan | None" = None,
        clamp_start_s: float | None = None,
        clamp_end_s: float | None = None,
    ) -> list[TraceSpan]:
        """Re-home worker-side spans into this tracer's id space.

        Ids are remapped to fresh local ids (preserving relative
        order); parent links internal to the batch follow the remap;
        batch roots are re-parented onto ``parent``.  Wall intervals
        are clamped into ``[clamp_start_s, clamp_end_s]`` (defaulting
        to the parent's interval) so cross-process clock granularity
        cannot break the child⊆parent invariant — but a span further
        than ``0.25 s`` outside the window raises, because that is a
        propagation bug, not jitter.
        """
        parent_id = None
        if parent is not None:
            parent_id = parent.span_id
            if clamp_start_s is None:
                clamp_start_s = parent.start_wall_s
            if clamp_end_s is None and isinstance(parent, TraceSpan):
                clamp_end_s = parent.end_wall_s
        id_map: dict[int, int] = {}
        adopted: list[TraceSpan] = []
        for data in sorted(span_dicts, key=lambda d: d.get("span_id", 0)):
            validate_span_dict(data)
            start = float(data["start_wall_s"])
            end = float(data["end_wall_s"])
            if clamp_start_s is not None:
                if start < clamp_start_s - _ADOPT_SLACK_S:
                    raise SpanOrderError(
                        f"adopted span {data['name']!r} starts {clamp_start_s - start:.3f}s "
                        f"before its parent window"
                    )
                start = max(start, clamp_start_s)
                end = max(end, start)
            if clamp_end_s is not None:
                if end > clamp_end_s + _ADOPT_SLACK_S:
                    raise SpanOrderError(
                        f"adopted span {data['name']!r} ends {end - clamp_end_s:.3f}s "
                        f"after its parent window"
                    )
                end = min(end, clamp_end_s)
                start = min(start, end)
            new_id = self._next_id
            self._next_id += 1
            id_map[data["span_id"]] = new_id
            old_parent = data["parent_id"]
            span = TraceSpan(
                span_id=new_id,
                parent_id=id_map.get(old_parent, parent_id),
                name=data["name"],
                category=data.get("category", ""),
                process=data.get("process", "worker"),
                start_wall_s=start,
                end_wall_s=end,
                start_sim_ms=data.get("start_sim_ms"),
                end_sim_ms=data.get("end_sim_ms"),
                status=data.get("status", "ok"),
                attrs=dict(data.get("attrs", {})),
            )
            self._record(span)
            adopted.append(span)
        return adopted

    # -- internals ----------------------------------------------------------

    def _record(self, span: TraceSpan) -> None:
        if self._spans.maxlen is not None and len(self._spans) == self._spans.maxlen:
            self.dropped_spans += 1
        self._spans.append(span)


#: Reusable disabled context manager returned by :func:`maybe_span`.
_NULL_SPAN = nullcontext()


def maybe_span(tracer: Tracer | None, name: str, **kwargs):
    """``tracer.span(...)`` or a shared no-op when ``tracer`` is None.

    The hot-path idiom for instrumented components: resolve
    ``telemetry.tracer`` once into a local, then wrap phases with
    ``with maybe_span(tracer, "bounds"): ...`` — the disabled cost is
    one None check and a shared ``nullcontext`` enter/exit (which
    yields ``None``, so guard any handle use).
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **kwargs)
