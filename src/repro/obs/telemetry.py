"""The telemetry facade: one handle bundling registry + events + samplers.

Every instrumented layer (scheduler, capacity search, central server,
event engine, throttle, campaign) takes an optional ``telemetry``
argument.  Passing nothing gives :data:`NULL_TELEMETRY` — a disabled
facade whose recording methods return before touching any data
structure, so the un-instrumented hot path costs a single truthiness
check (PR 2/3's scheduler wins are preserved; the bench guard in
``benchmarks/test_bench_telemetry.py`` enforces it).

A live facade is just::

    tel = Telemetry.create(run_id="night-0")
    server = CentralServer(..., telemetry=tel)
    ...
    report = build_run_report(result, tel, ...)   # repro.obs.report

Components must guard loops with ``if telemetry.enabled:`` when a
recording call would otherwise sit inside a per-item inner loop;
per-event and per-probe call sites may call unconditionally (the
disabled facade's early return is a few nanoseconds).
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING

from .events import Event, EventBus
from .registry import MetricsRegistry
from .samplers import SamplerSet
from .tracing import Tracer

if TYPE_CHECKING:
    pass

__all__ = ["Telemetry", "NULL_TELEMETRY", "new_run_id"]

_RUN_COUNTER = itertools.count(1)


def new_run_id(prefix: str = "run") -> str:
    """A unique-enough run id: wall-clock seconds + process-local counter."""
    return f"{prefix}-{int(time.time())}-{next(_RUN_COUNTER)}"


class Telemetry:
    """Recording facade for one run (or one merged campaign).

    ``enabled`` is the single hot-path gate: when False, every
    recording method returns immediately and the registry/bus/samplers
    are never allocated.
    """

    __slots__ = ("enabled", "run_id", "registry", "bus", "samplers", "tracer")

    def __init__(
        self,
        *,
        enabled: bool,
        run_id: str = "",
        registry: MetricsRegistry | None = None,
        bus: EventBus | None = None,
        samplers: SamplerSet | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.enabled = enabled
        self.run_id = run_id
        self.registry = registry
        self.bus = bus
        self.samplers = samplers
        self.tracer = tracer

    @classmethod
    def create(
        cls,
        run_id: str | None = None,
        *,
        sample_period_ms: float = 5_000.0,
        sink=None,
        wall_clock=time.time,
        max_events: int | None = None,
        max_samples: int | None = None,
        tracing: bool = False,
        max_spans: int | None = None,
    ) -> "Telemetry":
        """A fully armed facade with fresh registry, bus, and samplers.

        ``max_events`` / ``max_samples`` bound in-memory telemetry for
        long-horizon runs: the event bus keeps only the newest
        ``max_events`` envelopes (pair with a
        :class:`~repro.obs.events.RotatingJsonlSink` ``sink`` to keep
        the durable log complete) and every sampler series becomes a
        ring of at most ``max_samples`` rows.

        ``tracing=True`` arms a :class:`~repro.obs.tracing.Tracer`
        (``max_spans`` ring-bounds its store).  The tracer is opt-in
        separately from metrics/events because span recording sits on
        per-probe hot paths: components gate on ``telemetry.tracer is
        not None`` so a tracerless facade costs one attribute load.
        """
        run_id = run_id or new_run_id()
        return cls(
            enabled=True,
            run_id=run_id,
            registry=MetricsRegistry(),
            bus=EventBus(
                run_id, sink=sink, wall_clock=wall_clock, max_events=max_events
            ),
            samplers=SamplerSet(
                period_ms=sample_period_ms, max_samples=max_samples
            ),
            tracer=Tracer(run_id, max_spans=max_spans) if tracing else None,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        return NULL_TELEMETRY

    # -- recording (no-ops when disabled) ----------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        if not self.enabled:
            return
        self.registry.inc(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        if not self.enabled:
            return
        self.registry.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        if not self.enabled:
            return
        self.registry.observe(name, value, **labels)

    def event(
        self,
        component: str,
        kind: str,
        *,
        sim_time_ms: float,
        severity: str = "info",
        **payload,
    ) -> Event | None:
        if not self.enabled:
            return None
        return self.bus.emit(
            component,
            kind,
            sim_time_ms=sim_time_ms,
            severity=severity,
            **payload,
        )

    def record_sample(
        self, name: str, time_ms: float, value: float, **labels: str
    ) -> None:
        if not self.enabled:
            return
        self.samplers.record(name, time_ms, value, **labels)

    def maybe_sample(self, now_ms: float) -> None:
        if not self.enabled:
            return
        self.samplers.maybe_sample(now_ms)

    def sample_now(self, now_ms: float) -> None:
        if not self.enabled:
            return
        self.samplers.sample_now(now_ms)


#: The shared disabled facade: allocation-free recording no-ops.
NULL_TELEMETRY = Telemetry(enabled=False)
