"""Structured event log: one envelope schema for every run event.

Before this module each subsystem kept its own ad-hoc record stream —
:class:`~repro.sim.trace.ChaosRecord`,
:class:`~repro.sim.trace.ResilienceEvent`,
:class:`~repro.sim.trace.FailureRecord`,
:class:`~repro.sim.server.RoundRecord` — with no common schema and no
export path.  The :class:`EventBus` unifies them: every event is an
:class:`Event` envelope

``(run_id, seq, sim_time_ms, wall_time_s, component, kind, severity,
payload)``

emitted at a monotonically non-decreasing simulation time and appended
to an in-memory log that serialises to JSONL (one envelope per line,
append-only — the same artifact shape AsyncFlow-style collectors and
OpenDT's sim-worker archive for reproducibility).

:func:`validate_event_dict` is the schema gate: the CI telemetry smoke
job replays every JSONL line through it, and ``repro report
--validate`` does the same for operators.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator

__all__ = [
    "COMPONENTS",
    "SEVERITIES",
    "Event",
    "EventBus",
    "EventOrderError",
    "EventSchemaError",
    "read_events_jsonl",
    "validate_event_dict",
]

#: Known emitting components.  The schema treats this as an open set
#: (extensions register new components freely); the tuple documents the
#: layers instrumented today.
COMPONENTS = (
    "server",
    "engine",
    "scheduler",
    "capacity",
    "chaos",
    "throttle",
    "campaign",
    "run",
)

SEVERITIES = ("debug", "info", "warning", "error")

_REQUIRED_FIELDS = (
    "run_id",
    "seq",
    "sim_time_ms",
    "wall_time_s",
    "component",
    "kind",
    "severity",
    "payload",
)


class EventSchemaError(ValueError):
    """A record does not conform to the telemetry envelope schema."""


class EventOrderError(ValueError):
    """An event arrived with a sim time earlier than its predecessor."""


@dataclass(frozen=True, slots=True)
class Event:
    """One telemetry event in the unified envelope schema."""

    run_id: str
    seq: int
    sim_time_ms: float
    wall_time_s: float
    component: str
    kind: str
    severity: str
    payload: dict

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "seq": self.seq,
            "sim_time_ms": round(self.sim_time_ms, 6),
            "wall_time_s": round(self.wall_time_s, 6),
            "component": self.component,
            "kind": self.kind,
            "severity": self.severity,
            "payload": self.payload,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def validate_event_dict(data: object) -> None:
    """Raise :class:`EventSchemaError` unless ``data`` is a valid envelope."""
    if not isinstance(data, dict):
        raise EventSchemaError(f"event must be an object, got {type(data).__name__}")
    missing = [f for f in _REQUIRED_FIELDS if f not in data]
    if missing:
        raise EventSchemaError(f"event missing fields: {', '.join(missing)}")
    unknown = [f for f in data if f not in _REQUIRED_FIELDS]
    if unknown:
        raise EventSchemaError(f"event has unknown fields: {', '.join(unknown)}")
    if not isinstance(data["run_id"], str) or not data["run_id"]:
        raise EventSchemaError("run_id must be a non-empty string")
    if not isinstance(data["seq"], int) or data["seq"] < 0:
        raise EventSchemaError("seq must be a non-negative integer")
    for field_name in ("sim_time_ms", "wall_time_s"):
        value = data[field_name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise EventSchemaError(f"{field_name} must be a number")
    if data["sim_time_ms"] < 0:
        raise EventSchemaError("sim_time_ms must be >= 0")
    for field_name in ("component", "kind"):
        value = data[field_name]
        if not isinstance(value, str) or not value:
            raise EventSchemaError(f"{field_name} must be a non-empty string")
    if data["severity"] not in SEVERITIES:
        raise EventSchemaError(
            f"severity must be one of {SEVERITIES}, got {data['severity']!r}"
        )
    if not isinstance(data["payload"], dict):
        raise EventSchemaError("payload must be an object")


class EventBus:
    """Append-only, monotonically-timestamped event log for one run.

    Parameters
    ----------
    run_id:
        Stamped into every envelope.
    sink:
        Optional text stream; when given, every event is additionally
        written as one JSONL line the moment it is emitted (the
        streaming export path — crash-safe up to the last event).
    wall_clock:
        Wall-time source (``time.time`` by default; injectable for
        deterministic tests).
    """

    def __init__(
        self,
        run_id: str,
        *,
        sink: IO[str] | None = None,
        wall_clock=time.time,
    ) -> None:
        if not run_id:
            raise ValueError("run_id must be non-empty")
        self.run_id = run_id
        self._events: list[Event] = []
        self._seq = 0
        self._last_sim_ms = 0.0
        self._sink = sink
        self._wall_clock = wall_clock

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def emit(
        self,
        component: str,
        kind: str,
        *,
        sim_time_ms: float,
        severity: str = "info",
        **payload,
    ) -> Event:
        """Append one event; sim times must be non-decreasing."""
        if severity not in SEVERITIES:
            raise EventSchemaError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        if sim_time_ms < self._last_sim_ms:
            raise EventOrderError(
                f"event {component}/{kind} at sim time {sim_time_ms} ms "
                f"arrived after an event at {self._last_sim_ms} ms; the "
                "telemetry stream must be monotonically timestamped"
            )
        self._last_sim_ms = sim_time_ms
        event = Event(
            run_id=self.run_id,
            seq=self._seq,
            sim_time_ms=sim_time_ms,
            wall_time_s=float(self._wall_clock()),
            component=component,
            kind=kind,
            severity=severity,
            payload=payload,
        )
        self._seq += 1
        self._events.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
        return event

    def of_kind(self, kind: str) -> tuple[Event, ...]:
        return tuple(e for e in self._events if e.kind == kind)

    def of_component(self, component: str) -> tuple[Event, ...]:
        return tuple(e for e in self._events if e.component == component)

    def write_jsonl(self, path: str | Path) -> int:
        """Write the full log as JSONL; returns the number of lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(event.to_json() + "\n")
        return len(self._events)


def read_events_jsonl(
    path: str | Path, *, validate: bool = True
) -> list[dict]:
    """Load (and by default schema-validate) a JSONL event log."""
    out: list[dict] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise EventSchemaError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from None
            if validate:
                try:
                    validate_event_dict(data)
                except EventSchemaError as exc:
                    raise EventSchemaError(
                        f"{path}:{line_number}: {exc}"
                    ) from None
            out.append(data)
    return out


def events_to_dicts(events: Iterable[Event]) -> list[dict]:
    """Envelope dicts for an iterable of events (report serialisation)."""
    return [event.to_dict() for event in events]
