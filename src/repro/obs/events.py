"""Structured event log: one envelope schema for every run event.

Before this module each subsystem kept its own ad-hoc record stream —
:class:`~repro.sim.trace.ChaosRecord`,
:class:`~repro.sim.trace.ResilienceEvent`,
:class:`~repro.sim.trace.FailureRecord`,
:class:`~repro.sim.server.RoundRecord` — with no common schema and no
export path.  The :class:`EventBus` unifies them: every event is an
:class:`Event` envelope

``(run_id, seq, sim_time_ms, wall_time_s, component, kind, severity,
payload)``

emitted at a monotonically non-decreasing simulation time and appended
to an in-memory log that serialises to JSONL (one envelope per line,
append-only — the same artifact shape AsyncFlow-style collectors and
OpenDT's sim-worker archive for reproducibility).

:func:`validate_event_dict` is the schema gate: the CI telemetry smoke
job replays every JSONL line through it, and ``repro report
--validate`` does the same for operators.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator

__all__ = [
    "COMPONENTS",
    "SEVERITIES",
    "Event",
    "EventBus",
    "EventOrderError",
    "EventSchemaError",
    "RotatingJsonlSink",
    "read_events_jsonl",
    "validate_event_dict",
]

#: Known emitting components.  The schema treats this as an open set
#: (extensions register new components freely); the tuple documents the
#: layers instrumented today.
COMPONENTS = (
    "server",
    "engine",
    "scheduler",
    "capacity",
    "chaos",
    "throttle",
    "campaign",
    "run",
)

SEVERITIES = ("debug", "info", "warning", "error")

_REQUIRED_FIELDS = (
    "run_id",
    "seq",
    "sim_time_ms",
    "wall_time_s",
    "component",
    "kind",
    "severity",
    "payload",
)


class EventSchemaError(ValueError):
    """A record does not conform to the telemetry envelope schema."""


class EventOrderError(ValueError):
    """An event arrived with a sim time earlier than its predecessor."""


@dataclass(frozen=True, slots=True)
class Event:
    """One telemetry event in the unified envelope schema."""

    run_id: str
    seq: int
    sim_time_ms: float
    wall_time_s: float
    component: str
    kind: str
    severity: str
    payload: dict

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "seq": self.seq,
            "sim_time_ms": round(self.sim_time_ms, 6),
            "wall_time_s": round(self.wall_time_s, 6),
            "component": self.component,
            "kind": self.kind,
            "severity": self.severity,
            "payload": self.payload,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def validate_event_dict(data: object) -> None:
    """Raise :class:`EventSchemaError` unless ``data`` is a valid envelope."""
    if not isinstance(data, dict):
        raise EventSchemaError(f"event must be an object, got {type(data).__name__}")
    missing = [f for f in _REQUIRED_FIELDS if f not in data]
    if missing:
        raise EventSchemaError(f"event missing fields: {', '.join(missing)}")
    unknown = [f for f in data if f not in _REQUIRED_FIELDS]
    if unknown:
        raise EventSchemaError(f"event has unknown fields: {', '.join(unknown)}")
    if not isinstance(data["run_id"], str) or not data["run_id"]:
        raise EventSchemaError("run_id must be a non-empty string")
    if not isinstance(data["seq"], int) or data["seq"] < 0:
        raise EventSchemaError("seq must be a non-negative integer")
    for field_name in ("sim_time_ms", "wall_time_s"):
        value = data[field_name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise EventSchemaError(f"{field_name} must be a number")
    if data["sim_time_ms"] < 0:
        raise EventSchemaError("sim_time_ms must be >= 0")
    for field_name in ("component", "kind"):
        value = data[field_name]
        if not isinstance(value, str) or not value:
            raise EventSchemaError(f"{field_name} must be a non-empty string")
    if data["severity"] not in SEVERITIES:
        raise EventSchemaError(
            f"severity must be one of {SEVERITIES}, got {data['severity']!r}"
        )
    if not isinstance(data["payload"], dict):
        raise EventSchemaError("payload must be an object")


class EventBus:
    """Append-only, monotonically-timestamped event log for one run.

    Parameters
    ----------
    run_id:
        Stamped into every envelope.
    sink:
        Optional text stream; when given, every event is additionally
        written as one JSONL line the moment it is emitted (the
        streaming export path — crash-safe up to the last event).
    wall_clock:
        Wall-time source (``time.time`` by default; injectable for
        deterministic tests).
    max_events:
        In-memory ring bound: only the newest ``max_events`` envelopes
        are retained (older ones are evicted and counted in
        :attr:`dropped_events`).  ``seq`` numbering and any streaming
        ``sink`` are unaffected — a rotating sink still receives every
        event, so the durable log stays complete while memory stays
        bounded.  None (the default) retains everything.
    """

    def __init__(
        self,
        run_id: str,
        *,
        sink: IO[str] | None = None,
        wall_clock=time.time,
        max_events: int | None = None,
    ) -> None:
        if not run_id:
            raise ValueError("run_id must be non-empty")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events!r}")
        self.run_id = run_id
        self.max_events = max_events
        self._events: deque[Event] = deque(maxlen=max_events)
        self._seq = 0
        self._last_sim_ms = 0.0
        self._sink = sink
        self._wall_clock = wall_clock

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped_events(self) -> int:
        """Envelopes evicted from the in-memory ring."""
        return self._seq - len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def emit(
        self,
        component: str,
        kind: str,
        *,
        sim_time_ms: float,
        severity: str = "info",
        **payload,
    ) -> Event:
        """Append one event; sim times must be non-decreasing."""
        if severity not in SEVERITIES:
            raise EventSchemaError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        if sim_time_ms < self._last_sim_ms:
            raise EventOrderError(
                f"event {component}/{kind} at sim time {sim_time_ms} ms "
                f"arrived after an event at {self._last_sim_ms} ms; the "
                "telemetry stream must be monotonically timestamped"
            )
        self._last_sim_ms = sim_time_ms
        event = Event(
            run_id=self.run_id,
            seq=self._seq,
            sim_time_ms=sim_time_ms,
            wall_time_s=float(self._wall_clock()),
            component=component,
            kind=kind,
            severity=severity,
            payload=payload,
        )
        self._seq += 1
        self._events.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
        return event

    def of_kind(self, kind: str) -> tuple[Event, ...]:
        return tuple(e for e in self._events if e.kind == kind)

    def of_component(self, component: str) -> tuple[Event, ...]:
        return tuple(e for e in self._events if e.component == component)

    def write_jsonl(self, path: str | Path) -> int:
        """Write the full log as JSONL; returns the number of lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(event.to_json() + "\n")
        return len(self._events)


class RotatingJsonlSink:
    """A line-rotating JSONL sink for :class:`EventBus` streaming.

    Segments are ``<base>-NNNNNN.jsonl`` files capped by line count
    and/or byte size; an atomic ``<base>.index.json`` records the
    segment sequence so :func:`read_events_jsonl` can stitch the full
    log back together.  With ``max_segments`` the sink also bounds
    *disk*: when a new segment would exceed the cap the oldest segment
    is deleted and its line count moves to ``dropped_lines`` — a
    week-long campaign gets a telemetry budget instead of an unbounded
    log.
    """

    INDEX_FORMAT = 1

    def __init__(
        self,
        directory: str | Path,
        *,
        base_name: str = "events",
        max_lines_per_segment: int = 50_000,
        max_bytes_per_segment: int | None = None,
        max_segments: int | None = None,
    ) -> None:
        if max_lines_per_segment < 1:
            raise ValueError(
                f"max_lines_per_segment must be >= 1, got {max_lines_per_segment!r}"
            )
        if max_bytes_per_segment is not None and max_bytes_per_segment < 1:
            raise ValueError(
                f"max_bytes_per_segment must be >= 1, got {max_bytes_per_segment!r}"
            )
        if max_segments is not None and max_segments < 1:
            raise ValueError(
                f"max_segments must be >= 1, got {max_segments!r}"
            )
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._base = base_name
        self._max_lines = max_lines_per_segment
        self._max_bytes = max_bytes_per_segment
        self._max_segments = max_segments
        #: ``{"name", "lines", "bytes"}`` per live segment, oldest first.
        self._segments: list[dict] = []
        self._handle: IO[str] | None = None
        self._next_segment = 0
        self.dropped_lines = 0

    @property
    def index_path(self) -> Path:
        return self._dir / f"{self._base}.index.json"

    @property
    def segment_paths(self) -> list[Path]:
        return [self._dir / seg["name"] for seg in self._segments]

    @property
    def total_lines(self) -> int:
        """Lines currently on disk (excludes dropped segments)."""
        return sum(seg["lines"] for seg in self._segments)

    def _open_segment(self) -> None:
        name = f"{self._base}-{self._next_segment:06d}.jsonl"
        self._next_segment += 1
        self._segments.append({"name": name, "lines": 0, "bytes": 0})
        self._handle = (self._dir / name).open("w", encoding="utf-8")
        if (
            self._max_segments is not None
            and len(self._segments) > self._max_segments
        ):
            doomed = self._segments.pop(0)
            self.dropped_lines += doomed["lines"]
            (self._dir / doomed["name"]).unlink(missing_ok=True)
        self._write_index()

    def _close_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write_index(self) -> None:
        payload = {
            "format": self.INDEX_FORMAT,
            "base_name": self._base,
            "segments": [dict(seg) for seg in self._segments],
            "dropped_lines": self.dropped_lines,
        }
        tmp = self._dir / f".{self._base}.index.json.tmp"
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.index_path)

    def write(self, text: str) -> int:
        """The ``IO[str]``-ish surface :class:`EventBus` writes lines to."""
        if self._handle is None:
            self._open_segment()
        assert self._handle is not None
        self._handle.write(text)
        current = self._segments[-1]
        current["lines"] += text.count("\n")
        current["bytes"] += len(text.encode("utf-8"))
        if current["lines"] >= self._max_lines or (
            self._max_bytes is not None and current["bytes"] >= self._max_bytes
        ):
            self._close_segment()
            self._write_index()
        return len(text)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
        self._write_index()

    def close(self) -> None:
        self._close_segment()
        self._write_index()

    def __enter__(self) -> "RotatingJsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _read_one_jsonl(
    path: Path, *, validate: bool, out: list[dict]
) -> None:
    with path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise EventSchemaError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from None
            if validate:
                try:
                    validate_event_dict(data)
                except EventSchemaError as exc:
                    raise EventSchemaError(
                        f"{path}:{line_number}: {exc}"
                    ) from None
            out.append(data)


def _resolve_index(path: Path) -> Path | None:
    """Locate a rotation index for ``path``, if it names one."""
    if path.is_dir():
        candidates = sorted(path.glob("*.index.json"))
        if not candidates:
            raise EventSchemaError(
                f"{path}: directory holds no *.index.json rotation index"
            )
        if len(candidates) > 1:
            names = ", ".join(c.name for c in candidates)
            raise EventSchemaError(
                f"{path}: ambiguous — multiple rotation indexes ({names}); "
                "pass the index file explicitly"
            )
        return candidates[0]
    if path.name.endswith(".index.json"):
        return path
    return None


def read_events_jsonl(
    path: str | Path, *, validate: bool = True
) -> list[dict]:
    """Load (and by default schema-validate) a JSONL event log.

    ``path`` may be a plain JSONL file, a :class:`RotatingJsonlSink`
    index file (``*.index.json``), or a directory containing exactly
    one such index — the latter two stitch every listed segment back
    into one in-order event list.
    """
    path = Path(path)
    index_path = _resolve_index(path)
    out: list[dict] = []
    if index_path is None:
        _read_one_jsonl(path, validate=validate, out=out)
        return out
    try:
        index = json.loads(index_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise EventSchemaError(
            f"{index_path}: not a valid rotation index: {exc}"
        ) from None
    if not isinstance(index, dict) or "segments" not in index:
        raise EventSchemaError(
            f"{index_path}: not a rotation index (no 'segments' key)"
        )
    if index.get("format") != RotatingJsonlSink.INDEX_FORMAT:
        raise EventSchemaError(
            f"{index_path}: unsupported index format "
            f"{index.get('format')!r} (expected "
            f"{RotatingJsonlSink.INDEX_FORMAT})"
        )
    for segment in index["segments"]:
        segment_path = index_path.parent / segment["name"]
        if not segment_path.exists():
            raise EventSchemaError(
                f"{index_path}: segment {segment['name']!r} is missing"
            )
        before = len(out)
        _read_one_jsonl(segment_path, validate=validate, out=out)
        if validate and len(out) - before != segment["lines"]:
            raise EventSchemaError(
                f"{segment_path}: index records {segment['lines']} lines "
                f"but file holds {len(out) - before}"
            )
    return out


def events_to_dicts(events: Iterable[Event]) -> list[dict]:
    """Envelope dicts for an iterable of events (report serialisation)."""
    return [event.to_dict() for event in events]
