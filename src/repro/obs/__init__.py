"""Unified telemetry: metrics registry, event log, samplers, run reports.

The observability layer the evaluation needs as first-class
infrastructure (per-phone utilisation, charging linearity,
prediction-error convergence) instead of hand reconstruction:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket
  histograms keyed by name + labels, mergeable and Prometheus-renderable;
* :mod:`repro.obs.events` — the envelope-schema event bus and its
  JSONL sink;
* :mod:`repro.obs.samplers` — sim-clock time-series samplers with
  columnar storage;
* :mod:`repro.obs.telemetry` — the facade handed to instrumented
  components (``NULL_TELEMETRY`` is the zero-overhead disabled default);
* :mod:`repro.obs.report` — the per-run artifact bundle
  (``report.json`` + ``events.jsonl`` + series CSVs + Prometheus text).
"""

from .events import (
    Event,
    EventBus,
    EventOrderError,
    EventSchemaError,
    RotatingJsonlSink,
    read_events_jsonl,
    validate_event_dict,
)
from .registry import DEFAULT_BUCKETS_MS, Histogram, MetricsRegistry
from .report import (
    RunReport,
    build_run_report,
    load_run_report,
    render_report_lines,
    run_metrics_from_events,
)
from .samplers import SamplerSet, Series
from .telemetry import NULL_TELEMETRY, Telemetry, new_run_id

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Event",
    "EventBus",
    "EventOrderError",
    "EventSchemaError",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "RotatingJsonlSink",
    "RunReport",
    "SamplerSet",
    "Series",
    "Telemetry",
    "build_run_report",
    "load_run_report",
    "new_run_id",
    "read_events_jsonl",
    "render_report_lines",
    "run_metrics_from_events",
    "validate_event_dict",
]
