"""Unified telemetry: metrics registry, event log, samplers, run reports.

The observability layer the evaluation needs as first-class
infrastructure (per-phone utilisation, charging linearity,
prediction-error convergence) instead of hand reconstruction:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket
  histograms keyed by name + labels, mergeable and Prometheus-renderable;
* :mod:`repro.obs.events` — the envelope-schema event bus and its
  JSONL sink;
* :mod:`repro.obs.samplers` — sim-clock time-series samplers with
  columnar storage;
* :mod:`repro.obs.telemetry` — the facade handed to instrumented
  components (``NULL_TELEMETRY`` is the zero-overhead disabled default);
* :mod:`repro.obs.report` — the per-run artifact bundle
  (``report.json`` + ``events.jsonl`` + series CSVs + Prometheus text);
* :mod:`repro.obs.tracing` — the span tracer (flight recorder) with
  cross-process context propagation;
* :mod:`repro.obs.trace_export` — Chrome trace-event JSON
  (Perfetto-loadable ``trace.json``);
* :mod:`repro.obs.profile` — self-time aggregation and critical-path
  extraction over recorded spans.
"""

from .events import (
    Event,
    EventBus,
    EventOrderError,
    EventSchemaError,
    RotatingJsonlSink,
    read_events_jsonl,
    validate_event_dict,
)
from .profile import (
    critical_path,
    render_critical_path_lines,
    render_profile_lines,
    self_time_table,
)
from .registry import DEFAULT_BUCKETS_MS, Histogram, MetricsRegistry
from .report import (
    RunReport,
    build_run_report,
    load_run_report,
    render_report_lines,
    run_metrics_from_events,
)
from .samplers import SamplerSet, Series
from .telemetry import NULL_TELEMETRY, Telemetry, new_run_id
from .trace_export import (
    chrome_trace,
    load_chrome_trace,
    spans_from_chrome,
    write_chrome_trace,
)
from .tracing import (
    SpanContext,
    SpanError,
    SpanOrderError,
    SpanSchemaError,
    Tracer,
    TraceSpan,
    maybe_span,
    validate_span_dict,
)

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Event",
    "EventBus",
    "EventOrderError",
    "EventSchemaError",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "RotatingJsonlSink",
    "RunReport",
    "SamplerSet",
    "Series",
    "SpanContext",
    "SpanError",
    "SpanOrderError",
    "SpanSchemaError",
    "Telemetry",
    "TraceSpan",
    "Tracer",
    "build_run_report",
    "chrome_trace",
    "critical_path",
    "load_chrome_trace",
    "load_run_report",
    "maybe_span",
    "new_run_id",
    "read_events_jsonl",
    "render_critical_path_lines",
    "render_profile_lines",
    "render_report_lines",
    "run_metrics_from_events",
    "self_time_table",
    "spans_from_chrome",
    "validate_span_dict",
    "write_chrome_trace",
]
