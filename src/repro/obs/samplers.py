"""Sim-clock-driven time-series samplers with columnar storage.

A :class:`Series` is a compact columnar time series — parallel
``times_ms`` / ``values`` arrays, one pair per sample — the cheap
representation for per-phone utilisation curves, battery residuals,
queue depths, and probe counts over a run.

A :class:`SamplerSet` owns a group of named probe callables and a
sampling period on the *simulation* clock.  The simulator calls
:meth:`SamplerSet.maybe_sample` from its event hooks (dispatch,
completion, failure, round boundaries); the set samples at most once
per period, so sampling frequency is bounded no matter how bursty the
event stream is, and a finished run leaves no dangling timers on the
event loop (a free-running periodic event would keep the discrete
event loop alive forever).  :meth:`SamplerSet.sample_now` forces a
final row — the simulator calls it once at run end so every series
covers the full makespan.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = ["Series", "SamplerSet"]


@dataclass
class Series:
    """One columnar time series: name + labels + (time, value) columns.

    With ``max_samples`` set the series is a ring buffer: the newest
    ``max_samples`` rows are retained, older rows are discarded and
    counted in ``dropped`` — the memory bound that lets a multi-night
    campaign sample forever without growing without bound.
    """

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    times_ms: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    max_samples: int | None = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {self.max_samples!r}"
            )

    def append(self, time_ms: float, value: float) -> None:
        if self.times_ms and time_ms < self.times_ms[-1]:
            raise ValueError(
                f"series {self.key()!r}: sample at {time_ms} ms arrives "
                f"after {self.times_ms[-1]} ms"
            )
        self.times_ms.append(float(time_ms))
        self.values.append(float(value))
        if self.max_samples is not None and len(self.times_ms) > self.max_samples:
            overflow = len(self.times_ms) - self.max_samples
            del self.times_ms[:overflow]
            del self.values[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self.times_ms)

    def key(self) -> str:
        if not self.labels:
            return self.name
        rendered = ",".join(
            f"{k}={v}" for k, v in sorted(self.labels.items())
        )
        return f"{self.name}{{{rendered}}}"

    def last_value(self) -> float | None:
        return self.values[-1] if self.values else None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "times_ms": [round(t, 6) for t in self.times_ms],
            "values": [round(v, 9) for v in self.values],
            "dropped": self.dropped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Series":
        return cls(
            name=data["name"],
            labels=dict(data.get("labels", {})),
            times_ms=[float(t) for t in data["times_ms"]],
            values=[float(v) for v in data["values"]],
            dropped=int(data.get("dropped", 0)),
        )

    def write_csv(self, path: str | Path) -> None:
        with Path(path).open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_ms", "value"])
            for time_ms, value in zip(self.times_ms, self.values):
                writer.writerow([f"{time_ms:.6f}", f"{value:.9g}"])

    @classmethod
    def read_csv(
        cls, path: str | Path, *, name: str, labels: dict | None = None
    ) -> "Series":
        series = cls(name=name, labels=dict(labels or {}))
        with Path(path).open(encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["time_ms", "value"]:
                raise ValueError(f"{path}: not a series CSV (header {header})")
            for lineno, row in enumerate(reader, start=2):
                if not row:  # tolerate stray blank lines
                    continue
                try:
                    time_ms, value = float(row[0]), float(row[1])
                except (IndexError, ValueError) as exc:
                    raise ValueError(
                        f"{path}:{lineno}: malformed series row {row!r}"
                    ) from exc
                series.append(time_ms, value)
        return series


class SamplerSet:
    """Named probes sampled on the simulation clock, at most once per period.

    A probe is ``() -> float`` (one series) or
    ``() -> dict[labels-tuple-or-dict, float]`` via
    :meth:`add_multi_probe` (one series per label set — the per-phone
    case).
    """

    def __init__(
        self,
        *,
        period_ms: float = 5_000.0,
        max_samples: int | None = None,
    ) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be > 0, got {period_ms!r}")
        if max_samples is not None and max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples!r}"
            )
        self.period_ms = period_ms
        #: Ring-buffer bound applied to every series (None = unbounded).
        self.max_samples = max_samples
        self._probes: list[tuple[str, Callable[[], float]]] = []
        self._multi_probes: list[
            tuple[str, Callable[[], dict]]
        ] = []
        self._series: dict[str, Series] = {}
        self._last_sample_ms: float | None = None

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        """Register a scalar probe producing the series ``name``."""
        self._probes.append((name, probe))

    def add_multi_probe(
        self, name: str, probe: Callable[[], dict]
    ) -> None:
        """Register a probe returning ``{labels_dict_or_str: value}``.

        String keys are treated as an ``id`` label — the common
        per-phone shape ``{phone_id: value}``.
        """
        self._multi_probes.append((name, probe))

    @property
    def series(self) -> tuple[Series, ...]:
        """All recorded series, sorted by key for determinism."""
        return tuple(
            self._series[key] for key in sorted(self._series)
        )

    def get_series(self, name: str, **labels: str) -> Series | None:
        probe = Series(name=name, labels=dict(labels))
        return self._series.get(probe.key())

    def record(
        self, name: str, time_ms: float, value: float, **labels: str
    ) -> None:
        """Append one sample directly, bypassing the probe machinery.

        For producers that already sit inside their own stepped loop
        (the charging simulator's battery residual, for instance) and
        can push values cheaper than a probe could pull them.  Each
        series still enforces its own non-decreasing time order.
        """
        self._record(name, dict(labels), time_ms, value)

    def maybe_sample(self, now_ms: float) -> bool:
        """Sample if at least one period elapsed; returns True if sampled."""
        if (
            self._last_sample_ms is not None
            and now_ms < self._last_sample_ms + self.period_ms
        ):
            return False
        self.sample_now(now_ms)
        return True

    def sample_now(self, now_ms: float) -> None:
        """Unconditionally take one sample of every probe at ``now_ms``."""
        if self._last_sample_ms is not None and now_ms < self._last_sample_ms:
            raise ValueError(
                f"sampling at {now_ms} ms after {self._last_sample_ms} ms; "
                "the sim clock only moves forward"
            )
        self._last_sample_ms = now_ms
        for name, probe in self._probes:
            self._record(name, {}, now_ms, probe())
        for name, probe in self._multi_probes:
            for label_key, value in probe().items():
                if isinstance(label_key, str):
                    labels = {"id": label_key}
                else:
                    labels = dict(label_key)
                self._record(name, labels, now_ms, value)

    @property
    def dropped_samples(self) -> int:
        """Total ring-buffer evictions across every series."""
        return sum(series.dropped for series in self._series.values())

    def _record(
        self, name: str, labels: dict, now_ms: float, value: float
    ) -> None:
        series = Series(name=name, labels=labels, max_samples=self.max_samples)
        existing = self._series.setdefault(series.key(), series)
        existing.append(now_ms, value)
