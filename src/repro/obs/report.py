"""Run-report artifacts: one directory bundle per instrumented run.

A :class:`RunReport` is the durable product of a telemetry-enabled run:

* ``report.json`` — run id, metadata, the full metrics registry
  snapshot, the distilled summary (fleet utilisation, fault counts,
  round-latency percentiles, top-N slowest phones), and an index of
  the series files;
* ``events.jsonl`` — the unified event log, one envelope per line
  (append-only, schema-validated by :func:`repro.obs.events.validate_event_dict`);
* ``series/*.csv`` — one columnar CSV per time series;
* ``prometheus.txt`` — the registry in Prometheus text exposition
  (:meth:`~repro.obs.registry.MetricsRegistry.render_prometheus`);
* ``trace.json`` — when the run traced spans, the Chrome trace-event
  form (:func:`repro.obs.trace_export.chrome_trace`, loadable in
  Perfetto / ``chrome://tracing``);
* ``profile.txt`` — the span self-time table and wall-clock critical
  path (:mod:`repro.obs.profile`), also trace-gated.

:func:`run_metrics_from_events` rebuilds the exact
:class:`~repro.sim.metrics.RunMetrics` a
:class:`~repro.sim.trace.TimelineTrace` would yield, but from the
unified stream — so a report bundle alone (no pickled trace, no rerun)
answers "which phone dragged the makespan".
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..sim.metrics import PhoneUtilisation, RunMetrics
from .events import Event, read_events_jsonl, validate_event_dict
from .profile import (
    critical_path,
    render_critical_path_lines,
    render_profile_lines,
    self_time_table,
)
from .registry import MetricsRegistry
from .samplers import Series
from .telemetry import Telemetry
from .trace_export import (
    load_chrome_trace,
    spans_from_chrome,
    write_chrome_trace,
)

__all__ = [
    "REPORT_SCHEMA",
    "RunReport",
    "build_run_report",
    "load_run_report",
    "render_report_lines",
    "run_metrics_from_events",
]

REPORT_SCHEMA = 1

_SERIES_DIR = "series"
_UNSAFE = re.compile(r"[^A-Za-z0-9_.=-]+")


def _series_filename(key: str) -> str:
    return _UNSAFE.sub("_", key) + ".csv"


def run_metrics_from_events(
    events: Iterable[Event | dict],
) -> RunMetrics:
    """Recompute :class:`RunMetrics` from the unified event stream.

    Reads the ``server/span`` events (the envelope form of every
    :class:`~repro.sim.trace.Span`) and reproduces
    :func:`repro.sim.metrics.compute_run_metrics` exactly: same phone
    order (first appearance), same busy/copy/execute accounting, same
    makespan.
    """
    order: dict[str, int] = {}
    copy_ms: dict[str, float] = {}
    execute_ms: dict[str, float] = {}
    finish_ms: dict[str, float] = {}
    partitions: dict[str, int] = {}
    makespan = 0.0
    for event in events:
        data = event.to_dict() if isinstance(event, Event) else event
        if data.get("component") != "server" or data.get("kind") != "span":
            continue
        payload = data["payload"]
        phone_id = payload["phone_id"]
        duration = float(payload["end_ms"]) - float(payload["start_ms"])
        order.setdefault(phone_id, len(order))
        if payload["span"] == "copy":
            copy_ms[phone_id] = copy_ms.get(phone_id, 0.0) + duration
        else:
            execute_ms[phone_id] = execute_ms.get(phone_id, 0.0) + duration
            partitions[phone_id] = partitions.get(phone_id, 0) + 1
        end = float(payload["end_ms"])
        finish_ms[phone_id] = max(finish_ms.get(phone_id, 0.0), end)
        makespan = max(makespan, end)
    phones = tuple(
        PhoneUtilisation(
            phone_id=phone_id,
            busy_ms=copy_ms.get(phone_id, 0.0) + execute_ms.get(phone_id, 0.0),
            copy_ms=copy_ms.get(phone_id, 0.0),
            execute_ms=execute_ms.get(phone_id, 0.0),
            finish_ms=finish_ms.get(phone_id, 0.0),
            partitions=partitions.get(phone_id, 0),
        )
        for phone_id in sorted(order, key=order.get)
    )
    return RunMetrics(makespan_ms=makespan, phones=phones)


@dataclass
class RunReport:
    """Everything a telemetry-enabled run exports, in memory."""

    run_id: str
    meta: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    #: Closed span dicts from the run's tracer; empty when the run was
    #: not traced (tracing is opt-in on :meth:`Telemetry.create`).
    spans: list[dict] = field(default_factory=list)

    # -- writing -----------------------------------------------------------

    def write(self, directory: str | Path) -> Path:
        """Write the full bundle; returns the bundle directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        series_dir = directory / _SERIES_DIR
        series_dir.mkdir(exist_ok=True)

        series_index = {}
        for series in self.series:
            filename = _series_filename(series.key())
            series.write_csv(series_dir / filename)
            series_index[series.key()] = {
                "file": f"{_SERIES_DIR}/{filename}",
                "name": series.name,
                "labels": dict(sorted(series.labels.items())),
                "samples": len(series),
            }

        with (directory / "events.jsonl").open(
            "w", encoding="utf-8"
        ) as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")

        registry = MetricsRegistry.from_dict(self.metrics)
        (directory / "prometheus.txt").write_text(
            registry.render_prometheus(), encoding="utf-8"
        )

        if self.spans:
            write_chrome_trace(
                directory / "trace.json", self.spans, run_id=self.run_id
            )
            profile_lines = render_profile_lines(
                self_time_table(self.spans)
            )
            profile_lines.append("")
            profile_lines.extend(
                render_critical_path_lines(critical_path(self.spans))
            )
            (directory / "profile.txt").write_text(
                "\n".join(profile_lines) + "\n", encoding="utf-8"
            )

        payload = {
            "schema": REPORT_SCHEMA,
            "run_id": self.run_id,
            "meta": self.meta,
            "metrics": self.metrics,
            "summary": self.summary,
            "series_index": dict(sorted(series_index.items())),
            "event_count": len(self.events),
            "span_count": len(self.spans),
        }
        (directory / "report.json").write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return directory

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the bundled registry snapshot."""
        return MetricsRegistry.from_dict(self.metrics).render_prometheus()

    def get_series(self, name: str, **labels: str) -> Series | None:
        wanted = Series(name=name, labels=dict(labels)).key()
        for series in self.series:
            if series.key() == wanted:
                return series
        return None

    def series_named(self, name: str) -> list[Series]:
        return [s for s in self.series if s.name == name]


def build_run_report(
    telemetry: Telemetry,
    *,
    meta: dict | None = None,
    resilience: dict | None = None,
    top_n: int = 5,
) -> RunReport:
    """Distil a finished, telemetry-enabled run into a :class:`RunReport`.

    ``telemetry`` must be an enabled facade that instrumented the run;
    the summary's utilisation block is computed *from the unified
    event stream* (:func:`run_metrics_from_events`), not from the
    timeline trace — the report is self-contained.
    """
    if not telemetry.enabled:
        raise ValueError(
            "cannot build a run report from disabled telemetry; "
            "pass Telemetry.create(...) into the run first"
        )
    metrics = run_metrics_from_events(telemetry.bus.events)
    fault_counts: dict[str, int] = {}
    for event in telemetry.bus.of_component("chaos"):
        fault_counts[event.kind] = fault_counts.get(event.kind, 0) + 1

    slowest = sorted(
        metrics.phones, key=lambda p: (-p.finish_ms, p.phone_id)
    )[:top_n]
    latency = telemetry.registry.histogram("round_latency_ms")
    summary = {
        "makespan_ms": round(metrics.makespan_ms, 6),
        "active_phones": metrics.active_phone_count,
        "parallel_efficiency": round(metrics.parallel_efficiency, 9),
        "finish_spread_fraction": round(metrics.finish_spread_fraction, 9),
        "mean_copy_fraction": round(metrics.mean_copy_fraction, 9),
        "fault_counts": dict(sorted(fault_counts.items())),
        "failures_detected": len(telemetry.bus.of_kind("failure")),
        "completions": len(telemetry.bus.of_kind("complete")),
        "retries": len(telemetry.bus.of_kind("retry")),
        "rounds": len(telemetry.bus.of_kind("round_end")),
        "round_latency_ms": {
            "count": latency.count if latency else 0,
            "p50": latency.percentile(50.0) if latency else 0.0,
            "p90": latency.percentile(90.0) if latency else 0.0,
            "p99": latency.percentile(99.0) if latency else 0.0,
        },
        "slowest_phones": [
            {
                "phone_id": p.phone_id,
                "finish_ms": round(p.finish_ms, 6),
                "busy_ms": round(p.busy_ms, 6),
                "copy_fraction": round(p.copy_fraction, 9),
                "partitions": p.partitions,
            }
            for p in slowest
        ],
    }
    if resilience is not None:
        summary["resilience"] = resilience
    tracer = telemetry.tracer
    return RunReport(
        run_id=telemetry.run_id,
        meta=dict(meta or {}),
        metrics=telemetry.registry.to_dict(),
        summary=summary,
        events=[event.to_dict() for event in telemetry.bus.events],
        series=list(telemetry.samplers.series),
        spans=tracer.to_dicts() if tracer is not None else [],
    )


def load_run_report(
    directory: str | Path, *, validate: bool = True
) -> RunReport:
    """Load a bundle written by :meth:`RunReport.write`.

    With ``validate`` (default), every JSONL event line is checked
    against the envelope schema and a malformed line raises
    :class:`~repro.obs.events.EventSchemaError` naming the line.
    """
    directory = Path(directory)
    report_path = directory / "report.json"
    if not report_path.is_file():
        raise FileNotFoundError(
            f"{directory} is not a run-report bundle (no report.json)"
        )
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported report schema {payload.get('schema')!r} "
            f"(expected {REPORT_SCHEMA})"
        )
    events: list[dict] = []
    events_path = directory / "events.jsonl"
    if events_path.is_file():
        events = read_events_jsonl(events_path, validate=validate)
    elif validate:
        raise FileNotFoundError(f"{directory}: missing events.jsonl")
    series: list[Series] = []
    for key, entry in payload.get("series_index", {}).items():
        series.append(
            Series.read_csv(
                directory / entry["file"],
                name=entry["name"],
                labels=entry.get("labels", {}),
            )
        )
    if validate:
        for event in events:
            validate_event_dict(event)
    spans: list[dict] = []
    trace_path = directory / "trace.json"
    if trace_path.is_file():
        spans = spans_from_chrome(load_chrome_trace(trace_path))
    return RunReport(
        run_id=payload["run_id"],
        meta=payload.get("meta", {}),
        metrics=payload.get("metrics", {}),
        summary=payload.get("summary", {}),
        events=events,
        series=series,
        spans=spans,
    )


def render_report_lines(
    report: RunReport, *, top_n: int | None = None
) -> list[str]:
    """Human-readable run summary (what ``repro report`` prints)."""
    summary = report.summary
    lines = [f"run report: {report.run_id}"]
    for key in sorted(report.meta):
        lines.append(f"  meta {key}: {report.meta[key]}")
    lines.append(
        f"  makespan            : {summary.get('makespan_ms', 0.0) / 1000:.1f} s "
        f"over {summary.get('active_phones', 0)} active phone(s)"
    )
    lines.append(
        f"  parallel efficiency : {summary.get('parallel_efficiency', 0.0):.3f} "
        f"(finish spread {summary.get('finish_spread_fraction', 0.0):.1%})"
    )
    lines.append(
        f"  rounds / completions: {summary.get('rounds', 0)} / "
        f"{summary.get('completions', 0)} "
        f"(retries {summary.get('retries', 0)}, "
        f"failures {summary.get('failures_detected', 0)})"
    )
    latency = summary.get("round_latency_ms", {})
    if latency.get("count"):
        lines.append(
            "  round latency       : "
            f"p50 {latency['p50'] / 1000:.1f} s, "
            f"p90 {latency['p90'] / 1000:.1f} s, "
            f"p99 {latency['p99'] / 1000:.1f} s "
            f"({latency['count']} round(s))"
        )
    faults = summary.get("fault_counts", {})
    if faults:
        rendered = ", ".join(
            f"{kind}={count}" for kind, count in sorted(faults.items())
        )
        lines.append(f"  faults injected     : {rendered}")
    slowest: Sequence[dict] = summary.get("slowest_phones", [])
    if top_n is not None:
        slowest = slowest[:top_n]
    if slowest:
        lines.append("  slowest phones:")
        for entry in slowest:
            lines.append(
                f"    {entry['phone_id']:16s} finish "
                f"{entry['finish_ms'] / 1000:8.1f} s, busy "
                f"{entry['busy_ms'] / 1000:8.1f} s, "
                f"copy {entry['copy_fraction']:.1%}, "
                f"{entry['partitions']} partition(s)"
            )
    resilience = summary.get("resilience")
    if resilience:
        lines.append(
            "  resilience          : "
            f"{resilience.get('total_faults_injected', 0)} faults, "
            f"{resilience.get('retries', 0)} retries, "
            f"{resilience.get('quarantined', 0)} quarantined, "
            f"wasted {resilience.get('wasted_fraction', 0.0):.1%}"
        )
    lines.append(
        f"  events / series     : {len(report.events)} events, "
        f"{len(report.series)} series"
    )
    if report.spans:
        lines.append(f"  trace spans         : {len(report.spans)}")
    return lines
