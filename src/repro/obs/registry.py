"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Every metric is keyed by a name plus a sorted ``(label, value)`` tuple,
the Prometheus data model restricted to what a deterministic simulation
needs:

* **counters** — monotonically increasing floats (``inc``);
* **gauges** — last-write-wins floats (``set_gauge``);
* **histograms** — fixed cumulative buckets declared up front (or the
  default latency buckets), plus ``sum`` and ``count``.

The registry is plain data: picklable, mergeable
(:meth:`MetricsRegistry.merge` adds counters/histograms and
last-write-wins gauges — how campaign sweeps combine per-worker
registries), byte-stable in :meth:`to_dict` (sorted keys), and
renderable as Prometheus text exposition
(:meth:`render_prometheus`).

The hot-path contract lives one level up: when telemetry is disabled
the :class:`~repro.obs.telemetry` facade never calls into this module
at all, so the scheduler's inner loops pay a single attribute check.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
]

#: Default histogram buckets (milliseconds): spans sub-millisecond
#: scheduler work through multi-hour simulated makespans.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    60_000.0,
    300_000.0,
    1_800_000.0,
    7_200_000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def metric_key(name: str, labels: dict[str, str] | None) -> tuple:
    """Canonical registry key: name + sorted label items."""
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


@dataclass
class Histogram:
    """One fixed-bucket histogram series (cumulative bucket counts)."""

    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        if not self.counts:
            # One slot per finite bucket plus the +Inf overflow slot.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """Approximate percentile from the bucket midpoints/bounds.

        ``q`` in [0, 100].  Returns the upper bound of the bucket the
        q-th observation falls in (+Inf bucket reports the last finite
        bound), which is the classic Prometheus-style estimate.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must lie in [0, 100], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.buckets[-1]
        return self.buckets[-1]

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": round(self.sum, 6),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        return cls(
            buckets=tuple(data["buckets"]),
            counts=list(data["counts"]),
            sum=float(data["sum"]),
            count=int(data["count"]),
        )


class MetricsRegistry:
    """Holds every metric of one run (or one merged fleet of runs)."""

    def __init__(self) -> None:
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._histogram_buckets: dict[str, tuple[float, ...]] = {}

    # -- recording ---------------------------------------------------------

    def inc(
        self, name: str, value: float = 1.0, **labels: str
    ) -> None:
        """Add ``value`` (default 1) to a counter."""
        if value < 0:
            raise ValueError(f"counters only go up, got {value!r}")
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge to its latest value."""
        self._gauges[metric_key(name, labels)] = float(value)

    def declare_histogram(
        self, name: str, buckets: tuple[float, ...]
    ) -> None:
        """Fix the bucket bounds for every series of ``name``."""
        existing = self._histogram_buckets.get(name)
        if existing is not None and existing != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already declared with different buckets"
            )
        self._histogram_buckets[name] = tuple(buckets)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into a histogram."""
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            buckets = self._histogram_buckets.get(name, DEFAULT_BUCKETS_MS)
            histogram = Histogram(buckets=buckets)
            self._histograms[key] = histogram
        histogram.observe(value)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        return self._counters.get(metric_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: str) -> float | None:
        return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: str) -> Histogram | None:
        return self._histograms.get(metric_key(name, labels))

    def series_labels(self, name: str) -> list[dict[str, str]]:
        """Label sets under which ``name`` was ever recorded."""
        out = []
        for store in (self._counters, self._gauges, self._histograms):
            for key in store:
                if key[0] == name:
                    out.append(dict(key[1]))
        return out

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # -- merging (campaign sweeps, per-worker registries) ------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/histograms add, gauges
        last-write-wins (the other registry is considered newer)."""
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        self._gauges.update(other._gauges)
        for name, buckets in other._histogram_buckets.items():
            self.declare_histogram(name, buckets)
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = Histogram(
                    buckets=histogram.buckets,
                    counts=list(histogram.counts),
                    sum=histogram.sum,
                    count=histogram.count,
                )
            else:
                mine.merge(histogram)

    def merge_dict(self, snapshot: dict) -> None:
        """Merge a :meth:`to_dict` snapshot (the picklable wire form)."""
        self.merge(MetricsRegistry.from_dict(snapshot))

    # -- serialisation -----------------------------------------------------

    @staticmethod
    def _key_str(key: tuple) -> str:
        name, labels = key
        if not labels:
            return name
        rendered = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{rendered}}}"

    @staticmethod
    def _parse_key(text: str) -> tuple:
        if "{" not in text:
            return (text, ())
        name, _, rest = text.partition("{")
        body = rest.rstrip("}")
        labels = []
        if body:
            for pair in body.split(","):
                k, _, v = pair.partition("=")
                labels.append((k, v))
        return (name, tuple(sorted(labels)))

    def to_dict(self) -> dict:
        """Deterministic JSON-safe snapshot (sorted series keys)."""
        return {
            "counters": {
                self._key_str(key): round(self._counters[key], 9)
                for key in sorted(self._counters)
            },
            "gauges": {
                self._key_str(key): round(self._gauges[key], 9)
                for key in sorted(self._gauges)
            },
            "histograms": {
                self._key_str(key): self._histograms[key].to_dict()
                for key in sorted(self._histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for key_text, value in data.get("counters", {}).items():
            registry._counters[cls._parse_key(key_text)] = float(value)
        for key_text, value in data.get("gauges", {}).items():
            registry._gauges[cls._parse_key(key_text)] = float(value)
        for key_text, hist_data in data.get("histograms", {}).items():
            key = cls._parse_key(key_text)
            registry._histograms[key] = Histogram.from_dict(hist_data)
            registry._histogram_buckets.setdefault(
                key[0], tuple(hist_data["buckets"])
            )
        return registry

    # -- Prometheus text exposition ----------------------------------------

    def render_prometheus(self) -> str:
        """Render the registry in the Prometheus text format (v0.0.4)."""

        def label_text(labels: tuple, extra: tuple = ()) -> str:
            items = labels + extra
            if not items:
                return ""
            body = ",".join(f'{k}="{v}"' for k, v in items)
            return "{" + body + "}"

        lines: list[str] = []
        typed: set[str] = set()
        for key in sorted(self._counters):
            name, labels = key
            self._check_name(name)
            if name not in typed:
                lines.append(f"# TYPE {name} counter")
                typed.add(name)
            lines.append(
                f"{name}{label_text(labels)} {self._counters[key]:g}"
            )
        for key in sorted(self._gauges):
            name, labels = key
            self._check_name(name)
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(f"{name}{label_text(labels)} {self._gauges[key]:g}")
        for key in sorted(self._histograms):
            name, labels = key
            self._check_name(name)
            histogram = self._histograms[key]
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            for bound, bucket_count in zip(
                histogram.buckets, histogram.counts
            ):
                cumulative += bucket_count
                lines.append(
                    f"{name}_bucket"
                    f"{label_text(labels, (('le', f'{bound:g}'),))} "
                    f"{cumulative}"
                )
            cumulative += histogram.counts[-1]
            lines.append(
                f"{name}_bucket{label_text(labels, (('le', '+Inf'),))} "
                f"{cumulative}"
            )
            lines.append(
                f"{name}_sum{label_text(labels)} {histogram.sum:g}"
            )
            lines.append(
                f"{name}_count{label_text(labels)} {histogram.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
