"""Chrome trace-event export: ``trace.json`` for Perfetto / about:tracing.

Spans become ``"X"`` (complete) events with microsecond ``ts``/``dur``
and ``"M"`` (metadata) events naming processes and threads.  The
``process`` string on each span maps to the pid/tid pair: a span whose
process is ``"group/lane"`` (e.g. ``"pods/pod-3"``, ``"fleet/ph-12"``)
lands in pid *group*, tid *lane*; an unslashed process (``"main"``,
``"worker-1234"``) is its own single-lane pid.  That gives Perfetto
one swimlane per pod / probe worker / phone.

Every event's ``args`` carries the full span record (ids, sim times,
status, attrs), so :func:`spans_from_chrome` reconstructs the exact
span dicts — ``trace.json`` is both the human artifact and the
round-trip storage format for :func:`repro.obs.report.load_run_report`.

``clock="wall"`` (default) lays events out on the real timeline,
rebased so the earliest span starts at ts 0 (the absolute base is kept
in ``otherData.wall_base_s``).  ``clock="sim"`` lays out only spans
carrying sim times, on the sim clock.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracing import validate_span_dict

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "spans_from_chrome",
]


def _lane(process: str) -> tuple[str, str]:
    group, sep, lane = process.partition("/")
    if not sep:
        return process, process
    return group, lane


def chrome_trace(spans, *, run_id: str = "", clock: str = "wall") -> dict:
    """Build the Chrome trace-event JSON object for ``spans``."""
    if clock not in ("wall", "sim"):
        raise ValueError(f"clock must be 'wall' or 'sim', got {clock!r}")
    spans = [dict(s) for s in spans]
    for span in spans:
        validate_span_dict(span)
    if clock == "sim":
        spans = [s for s in spans if s.get("start_sim_ms") is not None]

    wall_base = min((s["start_wall_s"] for s in spans), default=0.0)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict] = []
    for span in sorted(spans, key=lambda s: s["span_id"]):
        group, lane = _lane(span.get("process", "main"))
        if group not in pids:
            pids[group] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[group],
                    "tid": 0,
                    "args": {"name": group},
                }
            )
        pid = pids[group]
        if (group, lane) not in tids:
            tids[(group, lane)] = sum(1 for g, _ in tids if g == group) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[(group, lane)],
                    "args": {"name": lane},
                }
            )
        tid = tids[(group, lane)]
        if clock == "wall":
            ts_us = (span["start_wall_s"] - wall_base) * 1e6
            dur_us = (span["end_wall_s"] - span["start_wall_s"]) * 1e6
        else:
            ts_us = span["start_sim_ms"] * 1e3
            end_sim = span.get("end_sim_ms", span["start_sim_ms"])
            dur_us = (end_sim - span["start_sim_ms"]) * 1e3
        args = {
            "span_id": span["span_id"],
            "parent_id": span.get("parent_id"),
            "status": span.get("status", "ok"),
            "start_wall_s": span["start_wall_s"],
            "end_wall_s": span["end_wall_s"],
        }
        if span.get("start_sim_ms") is not None:
            args["start_sim_ms"] = span["start_sim_ms"]
        if span.get("end_sim_ms") is not None:
            args["end_sim_ms"] = span["end_sim_ms"]
        args.update(span.get("attrs", {}))
        events.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span.get("category", "") or "span",
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
                "dur": dur_us,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": run_id,
            "clock": clock,
            "wall_base_s": wall_base,
            "span_count": len(spans),
        },
    }


def write_chrome_trace(
    path, spans, *, run_id: str = "", clock: str = "wall"
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(spans, run_id=run_id, clock=clock)) + "\n"
    )
    return path


def load_chrome_trace(path) -> dict:
    """Load and structurally validate a ``trace.json`` artifact."""
    path = Path(path)
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError(f"{path}: not a Chrome trace-event file")
    for event in data["traceEvents"]:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"{path}: malformed trace event {event!r}")
    return data


def spans_from_chrome(data: dict) -> list[dict]:
    """Reconstruct span dicts from a :func:`chrome_trace` object."""
    known = {
        "span_id",
        "parent_id",
        "status",
        "start_wall_s",
        "end_wall_s",
        "start_sim_ms",
        "end_sim_ms",
    }
    names = {("process_name", e["pid"]): e["args"]["name"] for e in data["traceEvents"] if e["ph"] == "M" and e["name"] == "process_name"}
    threads = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in data["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    spans: list[dict] = []
    for event in data["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        group = names.get(("process_name", event["pid"]), "main")
        lane = threads.get((event["pid"], event["tid"]), group)
        process = group if lane == group else f"{group}/{lane}"
        span = {
            "span_id": args["span_id"],
            "parent_id": args.get("parent_id"),
            "name": event["name"],
            "category": "" if event.get("cat") == "span" else event.get("cat", ""),
            "process": process,
            "start_wall_s": args["start_wall_s"],
            "end_wall_s": args["end_wall_s"],
            "status": args.get("status", "ok"),
            "attrs": {k: v for k, v in args.items() if k not in known},
        }
        if args.get("start_sim_ms") is not None:
            span["start_sim_ms"] = args["start_sim_ms"]
        if args.get("end_sim_ms") is not None:
            span["end_sim_ms"] = args["end_sim_ms"]
        validate_span_dict(span)
        spans.append(span)
    spans.sort(key=lambda s: s["span_id"])
    return spans
