"""Span aggregation: flamegraph-style self-time table + critical path.

Works on the plain-dict span form (what :meth:`Tracer.to_dicts`
returns and ``trace.json`` round-trips), so it can profile a live
tracer or a loaded artifact equally.

Self time is the flamegraph quantity: a span's duration minus the
summed durations of its *direct* children.  It answers "which phase
itself burns the time" rather than "which phase contains the time" —
``capacity_search`` contains everything, but its self time is only the
bisection bookkeeping between probes.

The critical path is the chain root → last-finishing child → ... whose
per-step contribution is ``span duration − chosen child duration``.
Contributions telescope: summed over the chain they equal the root's
duration exactly, which is what lets the sharded bench assert the
decomposition explains ≥95 % of ``solve_s`` (the <100 % residue is
only spans the tracer did not cover, never arithmetic).

Both aggregations take ``clock="wall"`` (default, seconds of real
time) or ``clock="sim"`` (sim milliseconds; spans without sim times
are skipped).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProfileRow",
    "CriticalStep",
    "self_time_table",
    "critical_path",
    "render_profile_lines",
    "render_critical_path_lines",
]


def _duration_ms(span: dict, clock: str) -> float | None:
    if clock == "wall":
        return (span["end_wall_s"] - span["start_wall_s"]) * 1e3
    if clock == "sim":
        start = span.get("start_sim_ms")
        end = span.get("end_sim_ms")
        if start is None or end is None:
            return None
        return end - start
    raise ValueError(f"clock must be 'wall' or 'sim', got {clock!r}")


@dataclass(frozen=True)
class ProfileRow:
    """One aggregated line of the self-time table."""

    name: str
    category: str
    count: int
    total_ms: float
    self_ms: float
    max_ms: float


@dataclass(frozen=True)
class CriticalStep:
    """One span on the critical path with its exclusive contribution."""

    span_id: int
    name: str
    category: str
    process: str
    duration_ms: float
    contribution_ms: float


def self_time_table(spans, *, clock: str = "wall") -> list[ProfileRow]:
    """Aggregate spans by (name, category), sorted by self time desc.

    Self time never goes negative even when siblings overlap (the
    probe pool runs children concurrently, so their summed duration
    can exceed the parent's): it is floored at zero per span.
    """
    spans = list(spans)
    child_ms: dict[int, float] = {}
    for span in spans:
        dur = _duration_ms(span, clock)
        parent = span.get("parent_id")
        if dur is None or parent is None:
            continue
        child_ms[parent] = child_ms.get(parent, 0.0) + dur
    rows: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        dur = _duration_ms(span, clock)
        if dur is None:
            continue
        self_ms = max(0.0, dur - child_ms.get(span["span_id"], 0.0))
        key = (span["name"], span.get("category", ""))
        agg = rows.setdefault(key, [0, 0.0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += dur
        agg[2] += self_ms
        agg[3] = max(agg[3], dur)
    out = [
        ProfileRow(
            name=name,
            category=category,
            count=agg[0],
            total_ms=agg[1],
            self_ms=agg[2],
            max_ms=agg[3],
        )
        for (name, category), agg in rows.items()
    ]
    out.sort(key=lambda r: (-r.self_ms, r.name))
    return out


def critical_path(
    spans, *, root_id: int | None = None, clock: str = "wall"
) -> list[CriticalStep]:
    """Descend from the root through the last-finishing child.

    ``root_id=None`` picks the longest parentless span.  Returns the
    chain with per-step exclusive contributions (telescoping to the
    root's duration).  Empty when no span qualifies under ``clock``.
    """
    spans = [s for s in spans if _duration_ms(s, clock) is not None]
    if not spans:
        return []
    by_id = {s["span_id"]: s for s in spans}
    children: dict[int, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)

    def end_key(span: dict) -> tuple:
        if clock == "wall":
            return (span["end_wall_s"], span["span_id"])
        return (span["end_sim_ms"], span["span_id"])

    if root_id is None:
        roots = [s for s in spans if s.get("parent_id") not in by_id]
        root = max(roots, key=lambda s: (_duration_ms(s, clock), -s["span_id"]))
    else:
        if root_id not in by_id:
            raise ValueError(f"root span {root_id} not found")
        root = by_id[root_id]

    path: list[CriticalStep] = []
    node = root
    while True:
        dur = _duration_ms(node, clock)
        kids = children.get(node["span_id"], [])
        nxt = max(kids, key=end_key) if kids else None
        nxt_dur = _duration_ms(nxt, clock) if nxt is not None else 0.0
        path.append(
            CriticalStep(
                span_id=node["span_id"],
                name=node["name"],
                category=node.get("category", ""),
                process=node.get("process", "main"),
                duration_ms=dur,
                contribution_ms=max(0.0, dur - nxt_dur),
            )
        )
        if nxt is None:
            break
        node = nxt
    return path


def render_profile_lines(
    rows, *, top: int | None = None, clock: str = "wall"
) -> list[str]:
    """Fixed-width text table of :func:`self_time_table` rows."""
    rows = list(rows)
    if top is not None:
        rows = rows[:top]
    unit = "wall ms" if clock == "wall" else "sim ms"
    lines = [
        f"{'span':<28} {'category':<12} {'count':>7} "
        f"{'self ' + unit:>14} {'total ' + unit:>14} {'max ' + unit:>12}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row.name:<28} {row.category:<12} {row.count:>7} "
            f"{row.self_ms:>14.3f} {row.total_ms:>14.3f} {row.max_ms:>12.3f}"
        )
    return lines


def render_critical_path_lines(path, *, clock: str = "wall") -> list[str]:
    """Indented text rendering of a :func:`critical_path` chain."""
    unit = "wall ms" if clock == "wall" else "sim ms"
    lines = [f"critical path ({unit}; contribution = span minus chosen child):"]
    total = sum(step.contribution_ms for step in path)
    for depth, step in enumerate(path):
        lines.append(
            f"{'  ' * depth}{step.name} [{step.process}] "
            f"dur={step.duration_ms:.3f} contrib={step.contribution_ms:.3f}"
        )
    lines.append(f"total contribution: {total:.3f} {unit}")
    return lines
