"""Adaptive bandwidth re-measurement scheduling (Section 3.1).

The paper's stability study concludes that static WiFi links need only
*infrequent periodic* bandwidth measurements, while cellular links "may
exhibit high instability" and "will require more frequent bandwidth
measurements."  :class:`MeasurementScheduler` operationalises that: it
tracks each link's observed coefficient of variation across
measurements and assigns re-measurement intervals inversely to
instability, bounded to a configurable range.

This keeps the pre-scheduling measurement cost low (stable links are
probed rarely) without letting a drifting cellular link feed the
scheduler stale ``b_i`` values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .links import WirelessLink
from .measurement import BandwidthMeasurement, measure_link

__all__ = ["MeasurementScheduler", "LinkMeasurementState"]


@dataclass
class LinkMeasurementState:
    """Bookkeeping for one link's measurement history."""

    last_measured_ms: float | None = None
    last_result: BandwidthMeasurement | None = None
    observed_cv: float = 0.0
    measurements: int = 0


class MeasurementScheduler:
    """Decides when each link is due for a bandwidth re-measurement.

    Parameters
    ----------
    min_interval_ms / max_interval_ms:
        Bounds on the re-measurement period.  A perfectly stable link
        settles at ``max_interval_ms``; the jitteriest links are probed
        every ``min_interval_ms``.
    cv_scale:
        The coefficient of variation mapped to the *minimum* interval;
        CVs are clipped to ``[0, cv_scale]`` and interpolate linearly
        between the two bounds.
    ewma:
        Weight of the newest CV observation when updating a link's
        instability estimate.
    """

    def __init__(
        self,
        *,
        min_interval_ms: float = 60_000.0,
        max_interval_ms: float = 3_600_000.0,
        cv_scale: float = 0.15,
        ewma: float = 0.5,
    ) -> None:
        if min_interval_ms <= 0 or max_interval_ms < min_interval_ms:
            raise ValueError(
                "need 0 < min_interval_ms <= max_interval_ms, got "
                f"{min_interval_ms!r}, {max_interval_ms!r}"
            )
        if cv_scale <= 0:
            raise ValueError(f"cv_scale must be > 0, got {cv_scale!r}")
        if not 0.0 < ewma <= 1.0:
            raise ValueError(f"ewma must lie in (0, 1], got {ewma!r}")
        self._min_ms = min_interval_ms
        self._max_ms = max_interval_ms
        self._cv_scale = cv_scale
        self._ewma = ewma
        self._states: dict[str, LinkMeasurementState] = {}

    # -- policy ----------------------------------------------------------

    def interval_ms(self, phone_id: str) -> float:
        """Current re-measurement period for a link.

        Unmeasured links are due immediately (interval 0): the first
        scheduling round must not run on guesses.
        """
        state = self._states.get(phone_id)
        if state is None or state.measurements == 0:
            return 0.0
        fraction = min(1.0, state.observed_cv / self._cv_scale)
        return self._max_ms - fraction * (self._max_ms - self._min_ms)

    def is_due(self, phone_id: str, now_ms: float) -> bool:
        state = self._states.get(phone_id)
        if state is None or state.last_measured_ms is None:
            return True
        return now_ms - state.last_measured_ms >= self.interval_ms(phone_id)

    # -- measurement -----------------------------------------------------

    def record(
        self, phone_id: str, measurement: BandwidthMeasurement, now_ms: float
    ) -> None:
        """Fold a completed measurement into the link's state."""
        state = self._states.setdefault(phone_id, LinkMeasurementState())
        cv = measurement.coefficient_of_variation
        if not math.isfinite(cv):
            cv = self._cv_scale
        if state.measurements == 0:
            state.observed_cv = cv
        else:
            state.observed_cv = (
                (1.0 - self._ewma) * state.observed_cv + self._ewma * cv
            )
        state.last_measured_ms = now_ms
        state.last_result = measurement
        state.measurements += 1

    def measure_due(
        self,
        links: dict[str, WirelessLink],
        now_ms: float,
        *,
        duration_s: float = 30.0,
    ) -> dict[str, float]:
        """Measure every due link; return fresh-or-cached ``b_i`` values.

        Links not yet due keep their cached measurement — the cost
        saving the adaptive policy exists for.
        """
        b: dict[str, float] = {}
        for phone_id, link in links.items():
            if self.is_due(phone_id, now_ms):
                measurement = measure_link(link, duration_s=duration_s)
                self.record(phone_id, measurement, now_ms)
            state = self._states.get(phone_id)
            if state is None or state.last_result is None:
                raise RuntimeError(f"link {phone_id!r} was never measured")
            b[phone_id] = state.last_result.b_ms_per_kb
        return b

    def state(self, phone_id: str) -> LinkMeasurementState:
        try:
            return self._states[phone_id]
        except KeyError:
            raise KeyError(f"no measurements recorded for {phone_id!r}") from None
