"""Bandwidth measurement: the iperf step that precedes scheduling.

Before running the scheduler, CWC initiates an iperf session from each
phone to the server and logs the measured rate in KB/s; the inverse is
the cost model's ``b_i`` (Section 6, "Setup").  Because charging phones
are static, WiFi links only need *infrequent periodic* measurements
(Fig. 4); cellular links would need more frequent ones.

:func:`measure_link` runs one such session against a
:class:`~repro.netmodel.links.WirelessLink`; :func:`measure_fleet`
produces the scheduler-facing ``{phone_id: b_i}`` map.
"""

from __future__ import annotations

import math
import statistics
from collections.abc import Mapping
from dataclasses import dataclass

from .links import WirelessLink, kbps_to_b_ms_per_kb

__all__ = ["BandwidthMeasurement", "measure_link", "measure_fleet"]

#: The paper's Fig. 4 measurement duration.
DEFAULT_DURATION_S = 600.0


@dataclass(frozen=True)
class BandwidthMeasurement:
    """Result of one iperf-like session."""

    mean_kbps: float
    std_kbps: float
    min_kbps: float
    max_kbps: float
    samples: tuple[float, ...]

    @property
    def b_ms_per_kb(self) -> float:
        """The scheduler-facing ``b_i`` (inverse of the mean rate)."""
        return kbps_to_b_ms_per_kb(self.mean_kbps)

    @property
    def coefficient_of_variation(self) -> float:
        """std/mean — the Fig. 4 stability criterion."""
        return self.std_kbps / self.mean_kbps if self.mean_kbps else math.inf


def measure_link(
    link: WirelessLink,
    *,
    duration_s: float = DEFAULT_DURATION_S,
    interval_s: float = 1.0,
) -> BandwidthMeasurement:
    """Run one iperf session and summarise the trace."""
    samples = tuple(link.bandwidth_trace(duration_s, interval_s))
    mean = statistics.fmean(samples)
    std = statistics.pstdev(samples) if len(samples) > 1 else 0.0
    return BandwidthMeasurement(
        mean_kbps=mean,
        std_kbps=std,
        min_kbps=min(samples),
        max_kbps=max(samples),
        samples=samples,
    )


def measure_fleet(
    links: Mapping[str, WirelessLink],
    *,
    duration_s: float = 30.0,
    interval_s: float = 1.0,
) -> dict[str, float]:
    """Measure every phone's link; return ``{phone_id: b_i}`` in ms/KB.

    Uses a short session per phone (the "periodic (short) bandwidth
    measurement test... prior to scheduling" of Section 3.1).
    """
    return {
        phone_id: measure_link(
            link, duration_s=duration_s, interval_s=interval_s
        ).b_ms_per_kb
        for phone_id, link in links.items()
    }
