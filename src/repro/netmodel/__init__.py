"""Wireless link substrate: technologies, variability, measurement."""

from .links import (
    DEFAULT_PROFILES,
    LinkProfile,
    WirelessLink,
    kbps_to_b_ms_per_kb,
)
from .measurement import BandwidthMeasurement, measure_fleet, measure_link
from .scheduler import LinkMeasurementState, MeasurementScheduler
from .variability import Ar1Process

__all__ = [
    "Ar1Process",
    "BandwidthMeasurement",
    "DEFAULT_PROFILES",
    "LinkMeasurementState",
    "LinkProfile",
    "MeasurementScheduler",
    "WirelessLink",
    "kbps_to_b_ms_per_kb",
    "measure_fleet",
    "measure_link",
]
