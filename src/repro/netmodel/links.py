"""Wireless link models for the CWC fleet.

The paper's testbed mixes five technologies — 802.11a and 802.11g WiFi,
EDGE, 3G, and 4G — whose measured per-KB transfer times ``b_i`` span
1–70 ms/KB (Section 6, Fig. 13 setup).  :class:`LinkProfile` captures a
technology's nominal achievable rate and its variability;
:class:`WirelessLink` instantiates one phone's link at a location,
optionally degraded by co-channel interference (two of the paper's
three houses sit amid "an abundance of interfering residential access
points" on 2.4 GHz).

Rates are kilobytes per second; the scheduler-facing conversion is
``b_i [ms/KB] = 1000 / rate [KB/s]``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable
from dataclasses import dataclass, replace

from ..core.model import NetworkTechnology
from .variability import Ar1Process

__all__ = [
    "LinkProfile",
    "WirelessLink",
    "DegradationSchedule",
    "DEFAULT_PROFILES",
    "kbps_to_b_ms_per_kb",
]


def kbps_to_b_ms_per_kb(rate_kbps: float) -> float:
    """Convert an achievable rate (KB/s) to the cost model's ``b_i``."""
    if rate_kbps <= 0:
        raise ValueError(f"rate must be > 0, got {rate_kbps!r}")
    return 1000.0 / rate_kbps


class DegradationSchedule:
    """A piecewise-constant time-multiplier timeline.

    Chaos injection expresses mid-run performance faults as timed
    multiplicative factors on a per-KB cost: a bandwidth degradation
    multiplies a link's transfer time, a CPU straggler multiplies a
    phone's execution time.  Each segment is ``(start_ms, end_ms,
    factor)`` with ``end_ms = None`` meaning "until the end of the run";
    overlapping segments compound multiplicatively.

    The simulator samples :meth:`factor_at` once per operation, at the
    instant the operation starts — a deliberate granularity choice that
    keeps event scheduling deterministic and matches how the central
    server would *experience* the fault (the whole dispatch runs slow).
    """

    __slots__ = ("_segments",)

    def __init__(
        self, segments: Iterable[tuple[float, float | None, float]] = ()
    ) -> None:
        normalised = []
        for start_ms, end_ms, factor in segments:
            if not math.isfinite(start_ms) or start_ms < 0:
                raise ValueError(
                    f"segment start must be finite and >= 0, got {start_ms!r}"
                )
            if end_ms is not None and (
                not math.isfinite(end_ms) or end_ms <= start_ms
            ):
                raise ValueError(
                    f"segment end must be > start, got [{start_ms}, {end_ms}]"
                )
            if not math.isfinite(factor) or factor <= 0:
                raise ValueError(
                    f"segment factor must be finite and > 0, got {factor!r}"
                )
            normalised.append((float(start_ms), end_ms, float(factor)))
        normalised.sort(key=lambda seg: (seg[0], seg[2]))
        self._segments = tuple(normalised)

    @property
    def segments(self) -> tuple[tuple[float, float | None, float], ...]:
        return self._segments

    def __bool__(self) -> bool:
        return bool(self._segments)

    def factor_at(self, time_ms: float) -> float:
        """Compound multiplier active at ``time_ms`` (1.0 when clear)."""
        factor = 1.0
        for start_ms, end_ms, seg_factor in self._segments:
            if start_ms <= time_ms and (end_ms is None or time_ms < end_ms):
                factor *= seg_factor
        return factor

    def worst_factor(self) -> float:
        """The largest instantaneous multiplier anywhere on the timeline."""
        if not self._segments:
            return 1.0
        instants = {seg[0] for seg in self._segments}
        return max(self.factor_at(t) for t in instants)


@dataclass(frozen=True)
class LinkProfile:
    """Nominal behaviour of one wireless technology.

    ``jitter_fraction`` is the AR(1) innovation standard deviation as a
    fraction of the nominal rate; ``rho`` its autocorrelation.  The WiFi
    profiles are tight (Fig. 4: "the variation in bandwidth for WiFi
    links is very low"); cellular profiles are loose.
    """

    technology: NetworkTechnology
    nominal_kbps: float
    jitter_fraction: float
    rho: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.nominal_kbps) or self.nominal_kbps <= 0:
            raise ValueError(
                f"nominal_kbps must be finite and > 0, got {self.nominal_kbps!r}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must lie in [0, 1), got {self.jitter_fraction!r}"
            )
        if not 0.0 <= self.rho < 1.0:
            raise ValueError(f"rho must lie in [0, 1), got {self.rho!r}")


#: Calibrated so the fleet's b_i values span the paper's measured 1–70
#: ms/KB range: 4G ≈ 1 ms/KB down to EDGE ≈ 70 ms/KB.
DEFAULT_PROFILES: dict[NetworkTechnology, LinkProfile] = {
    NetworkTechnology.WIFI_A: LinkProfile(
        NetworkTechnology.WIFI_A, nominal_kbps=900.0, jitter_fraction=0.02, rho=0.5
    ),
    NetworkTechnology.WIFI_G: LinkProfile(
        NetworkTechnology.WIFI_G, nominal_kbps=700.0, jitter_fraction=0.03, rho=0.5
    ),
    NetworkTechnology.EDGE: LinkProfile(
        NetworkTechnology.EDGE, nominal_kbps=15.0, jitter_fraction=0.15, rho=0.8
    ),
    NetworkTechnology.THREE_G: LinkProfile(
        NetworkTechnology.THREE_G, nominal_kbps=150.0, jitter_fraction=0.12, rho=0.8
    ),
    NetworkTechnology.FOUR_G: LinkProfile(
        NetworkTechnology.FOUR_G, nominal_kbps=1000.0, jitter_fraction=0.08, rho=0.7
    ),
}


class WirelessLink:
    """One phone's wireless link to the central server.

    Parameters
    ----------
    profile:
        The technology profile.
    interference_factor:
        Multiplier in ``(0, 1]`` applied to the nominal rate; models
        co-channel interference at the phone's location (1.0 = the
        interference-free 802.11a house).
    seed:
        Seeds the link's private RNG so traces are reproducible.
    """

    def __init__(
        self,
        profile: LinkProfile,
        *,
        interference_factor: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < interference_factor <= 1.0:
            raise ValueError(
                f"interference_factor must lie in (0, 1], got {interference_factor!r}"
            )
        self._profile = profile
        self._interference = interference_factor
        self._rng = random.Random(seed)
        mean = profile.nominal_kbps * interference_factor
        self._process = Ar1Process(
            mean=mean,
            sigma=profile.jitter_fraction * mean,
            rho=profile.rho,
        )

    @classmethod
    def for_technology(
        cls,
        technology: NetworkTechnology,
        *,
        interference_factor: float = 1.0,
        seed: int = 0,
    ) -> "WirelessLink":
        """Build a link from the default profile table."""
        return cls(
            DEFAULT_PROFILES[technology],
            interference_factor=interference_factor,
            seed=seed,
        )

    @property
    def technology(self) -> NetworkTechnology:
        return self._profile.technology

    @property
    def mean_kbps(self) -> float:
        """Long-run achievable rate after interference."""
        return self._profile.nominal_kbps * self._interference

    @property
    def is_wifi(self) -> bool:
        return self.technology in (
            NetworkTechnology.WIFI_A,
            NetworkTechnology.WIFI_G,
        )

    def bandwidth_trace(
        self, duration_s: float, interval_s: float = 1.0
    ) -> list[float]:
        """Sample the achievable rate (KB/s) every ``interval_s`` seconds.

        This is what an iperf session observes (Fig. 4 plots exactly
        such traces for 600 s).
        """
        if duration_s <= 0 or interval_s <= 0:
            raise ValueError("duration_s and interval_s must be > 0")
        count = max(1, int(duration_s / interval_s))
        return self._process.samples(count, self._rng)

    def degraded(self, factor: float) -> "WirelessLink":
        """A copy of this link with additional interference applied."""
        return WirelessLink(
            replace(self._profile),
            interference_factor=self._interference * factor,
            seed=self._rng.randrange(2**31),
        )
