"""Stochastic processes modelling wireless-bandwidth variability.

Section 3.1 of the paper observes that a *static, charging* phone's
WiFi bandwidth is stable over 600-second iperf runs (Figure 4), while
cellular links "may exhibit high instability".  We model a link's
achievable bandwidth as a mean-reverting AR(1) process around a nominal
rate: WiFi gets a small innovation variance and strong mean reversion;
cellular technologies get larger variance and weaker reversion.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["Ar1Process"]


@dataclass
class Ar1Process:
    """Mean-reverting AR(1) process, clamped to stay positive.

    ``x[t+1] = mean + rho * (x[t] - mean) + noise``, with
    ``noise ~ N(0, sigma)``.  ``rho`` close to 1 gives slowly drifting
    fading; ``rho`` close to 0 snaps back to the mean each step.

    Parameters
    ----------
    mean:
        Long-run level the process reverts to.
    sigma:
        Standard deviation of the per-step innovation.
    rho:
        Autocorrelation in ``[0, 1)``.
    floor:
        Lower clamp (a link never achieves a negative rate; a tiny
        positive floor also protects downstream ``1/x`` conversions).
    """

    mean: float
    sigma: float
    rho: float
    floor: float = 1e-3

    def __post_init__(self) -> None:
        if not math.isfinite(self.mean) or self.mean <= 0:
            raise ValueError(f"mean must be finite and > 0, got {self.mean!r}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma!r}")
        if not 0.0 <= self.rho < 1.0:
            raise ValueError(f"rho must lie in [0, 1), got {self.rho!r}")
        if self.floor <= 0:
            raise ValueError(f"floor must be > 0, got {self.floor!r}")

    def stationary_std(self) -> float:
        """Standard deviation of the stationary distribution."""
        return self.sigma / math.sqrt(1.0 - self.rho * self.rho)

    def samples(self, count: int, rng: random.Random) -> list[float]:
        """Generate ``count`` consecutive samples from stationarity."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        return list(self.iter_samples(count, rng))

    def iter_samples(self, count: int, rng: random.Random) -> Iterator[float]:
        # Start from the stationary distribution so short traces are not
        # biased by a deterministic initial condition.
        x = self.mean + rng.gauss(0.0, self.stationary_std() if self.rho else self.sigma)
        for _ in range(count):
            x = self.mean + self.rho * (x - self.mean) + rng.gauss(0.0, self.sigma)
            yield max(self.floor, x)
