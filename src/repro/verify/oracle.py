"""The oracle: apply the invariant registry to schedules and runs.

:class:`Oracle` is the single entry point the simulator, the fuzzer,
and the test suite share.  It can fail fast (raise
:class:`~repro.verify.invariants.InvariantViolation` on the first
broken contract — what :func:`repro.sim.validation.check_run_invariants`
now delegates to) or collect every violation as
:class:`~repro.verify.invariants.Violation` records — what the fuzzer
wants, so one bad scenario reports all the contracts it broke.

Round-level schedule checks need the per-round
:class:`~repro.core.instance.SchedulingInstance`; the server retains it
on each :class:`~repro.sim.server.RoundRecord` when constructed with
``record_instances=True`` (the fuzzer's oracle tap).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .invariants import (
    InvariantViolation,
    RunContext,
    ScheduleContext,
    Violation,
    run_registry,
    schedule_registry,
)

__all__ = ["Oracle"]


class Oracle:
    """Checks schedules and finished runs against the registry.

    Parameters
    ----------
    include:
        If given, only invariants with these names run.
    exclude:
        Invariant names to skip (applied after ``include``).
    """

    def __init__(
        self,
        *,
        include: Sequence[str] | None = None,
        exclude: Sequence[str] | None = None,
    ) -> None:
        included = None if include is None else frozenset(include)
        excluded = frozenset(exclude or ())
        known = set(run_registry()) | set(schedule_registry())
        for name in (included or frozenset()) | excluded:
            if name not in known:
                raise ValueError(f"unknown invariant {name!r}")

        def keep(name: str) -> bool:
            if included is not None and name not in included:
                return False
            return name not in excluded

        self._run_invariants = tuple(
            inv for name, inv in run_registry().items() if keep(name)
        )
        self._schedule_invariants = tuple(
            inv for name, inv in schedule_registry().items() if keep(name)
        )

    # -- run scope ---------------------------------------------------------

    def check_run(
        self,
        result: Any,
        jobs: Sequence[Any],
        *,
        events: Sequence[Any] | None = None,
        spans: Sequence[Any] | None = None,
        collect: bool = False,
    ) -> list[Violation]:
        """Check every run-scope invariant on a finished simulation.

        With ``collect=False`` (default) the first violation raises;
        with ``collect=True`` all violations are returned instead.
        ``spans`` is the tracer's closed-span store (objects or dicts);
        when given, the span invariants run too.
        """
        ctx = RunContext(result=result, jobs=jobs, events=events, spans=spans)
        return self._apply(self._run_invariants, ctx, collect)

    def check_rounds(
        self, result: Any, *, collect: bool = False
    ) -> list[Violation]:
        """Check schedule-scope invariants on every retained round.

        Rounds recorded without an instance (the default, to keep
        ``RunResult`` light) are skipped; run the server with
        ``record_instances=True`` to arm this check.
        """
        violations: list[Violation] = []
        for record in result.rounds:
            instance = getattr(record, "instance", None)
            if instance is None:
                continue
            ctx = ScheduleContext(
                instance=instance,
                schedule=record.schedule,
                capacity_ms=record.capacity_ms or None,
                predicted_makespan_ms=record.predicted_makespan_ms,
            )
            violations.extend(
                self._apply(self._schedule_invariants, ctx, collect)
            )
        return violations

    # -- schedule scope ----------------------------------------------------

    def check_schedule(
        self,
        instance: Any,
        schedule: Any,
        *,
        capacity_ms: float | None = None,
        lower_bound_ms: float | None = None,
        upper_bound_ms: float | None = None,
        predicted_makespan_ms: float | None = None,
        collect: bool = False,
    ) -> list[Violation]:
        """Check one schedule against its instance and known bounds."""
        ctx = ScheduleContext(
            instance=instance,
            schedule=schedule,
            capacity_ms=capacity_ms,
            lower_bound_ms=lower_bound_ms,
            upper_bound_ms=upper_bound_ms,
            predicted_makespan_ms=predicted_makespan_ms,
        )
        return self._apply(self._schedule_invariants, ctx, collect)

    # -- shared machinery --------------------------------------------------

    @staticmethod
    def _apply(invariants, ctx, collect: bool) -> list[Violation]:
        violations: list[Violation] = []
        for invariant in invariants:
            try:
                invariant.check(ctx)
            except InvariantViolation as exc:
                if not collect:
                    raise
                violations.append(
                    Violation(
                        invariant=invariant.name,
                        scope=invariant.scope,
                        message=str(exc),
                    )
                )
        return violations
