"""Deterministic scenario fuzzer: seed -> fleet -> chaos -> oracle.

FoundationDB-style simulation testing for the CWC stack.  A single
integer seed deterministically generates a complete scenario — fleet
(sizes, speeds, link rates, hidden efficiency deviation), job mix
(breakable/atomic, sizes, executables), availability pattern (delayed
Poisson arrivals), a :class:`~repro.sim.chaos.ChaosPlan`, the server's
resilience posture, and the scheduler's kernel/warm-start knobs.  The
scenario runs through the full event-driven simulation with telemetry
(including the span tracer) armed and per-round instances retained,
then the
:class:`~repro.verify.oracle.Oracle` checks every registered invariant.

Scenarios serialise to JSON (:meth:`Scenario.to_dict`) and carry a
sha256 **digest** of that canonical form, so a campaign's digests prove
rerun-for-rerun determinism.  When a scenario fails, the shrinker
(:func:`minimize_scenario`) greedily drops arrivals, chaos streams,
individual faults, jobs, and phones while the failure persists, and the
result is written as a replayable ``fuzz-<seed>.json`` artifact that
``repro fuzz --replay`` re-executes exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from ..core.greedy import CwcScheduler
from ..core.instance import SchedulingInstance
from ..core.policies import DEFAULT_POLICY, POLICY_NAMES, make_policy
from ..core.model import Job, JobKind, NetworkTechnology, PhoneSpec
from ..core.prediction import RuntimePredictor
from ..core.serialize import (
    job_from_dict,
    job_to_dict,
    phone_from_dict,
    phone_to_dict,
)
from ..sim.chaos import ChaosMonkey, ChaosPlan, ResiliencePolicy
from ..sim.entities import FleetGroundTruth
from ..sim.server import CentralServer
from ..workloads.arrivals import poisson_arrivals
from ..workloads.mixes import paper_task_profiles
from .invariants import Violation
from .oracle import Oracle

__all__ = [
    "ARTIFACT_FORMAT",
    "Scenario",
    "FuzzOutcome",
    "FuzzReport",
    "CrashRestoreReport",
    "ReplayResult",
    "build_scenario_server",
    "derive_seeds",
    "generate_instance",
    "generate_scenario",
    "run_scenario",
    "scenario_workload",
    "minimize_scenario",
    "write_artifact",
    "replay_artifact",
    "run_campaign",
    "run_crash_restore_campaign",
]

#: Version stamp of the ``fuzz-<seed>.json`` artifact layout.
ARTIFACT_FORMAT = 1

_TASKS = ("primes", "wordcount", "blur")


# ---------------------------------------------------------------------------
# seeded generation
# ---------------------------------------------------------------------------


def derive_seeds(master_seed: int, count: int) -> list[int]:
    """Per-run seeds derived deterministically from one master seed."""
    rng = random.Random(master_seed)
    return [rng.randrange(2**32) for _ in range(count)]


def _gen_phones(rng: random.Random) -> tuple[PhoneSpec, ...]:
    n_phones = rng.randint(2, 8)
    networks = tuple(NetworkTechnology)
    return tuple(
        PhoneSpec(
            phone_id=f"ph{index:02d}",
            cpu_mhz=float(rng.choice((600, 800, 1000, 1200, 1500))),
            network=rng.choice(networks),
            cpu_efficiency=round(rng.uniform(0.7, 1.3), 3),
            model_name="fuzz",
        )
        for index in range(n_phones)
    )


def _gen_jobs(rng: random.Random) -> tuple[Job, ...]:
    n_jobs = rng.randint(1, 10)
    jobs = []
    for index in range(n_jobs):
        kind = JobKind.BREAKABLE if rng.random() < 0.7 else JobKind.ATOMIC
        jobs.append(
            Job(
                job_id=f"job{index:02d}",
                task=rng.choice(_TASKS),
                kind=kind,
                executable_kb=round(rng.uniform(10.0, 150.0), 3),
                input_kb=round(rng.uniform(40.0, 2500.0), 3),
            )
        )
    return tuple(jobs)


def _gen_b(
    rng: random.Random, phones: Sequence[PhoneSpec]
) -> tuple[dict[str, float], dict[str, float]]:
    """Measured and true per-KB transfer rates (the truth may deviate)."""
    measured = {
        phone.phone_id: round(rng.uniform(0.5, 40.0), 4) for phone in phones
    }
    true = {
        phone_id: round(value * rng.uniform(0.85, 1.2), 4)
        for phone_id, value in measured.items()
    }
    return measured, true


def generate_instance(seed: int) -> SchedulingInstance:
    """One fuzzed scheduling instance (the differential runner's input)."""
    rng = random.Random(seed)
    phones = _gen_phones(rng)
    jobs = _gen_jobs(rng)
    measured_b, _ = _gen_b(rng, phones)
    predictor = RuntimePredictor(paper_task_profiles())
    return SchedulingInstance.build(jobs, phones, measured_b, predictor)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A fully-specified, replayable simulation input."""

    seed: int
    phones: tuple[PhoneSpec, ...]
    jobs: tuple[Job, ...]
    measured_b: dict[str, float]
    true_b: dict[str, float]
    chaos: ChaosPlan
    #: ``(time_ms, job_id)`` pairs for jobs that arrive mid-run; every
    #: named job must appear in ``jobs`` and at least one job must stay
    #: in the initial batch.
    arrivals: tuple[tuple[float, str], ...] = ()
    hardened: bool = False
    verify_results: bool = False
    warm_start: bool = False
    kernel: str = "python"
    deviation_sigma: float = 0.0
    keepalive_period_ms: float = 15_000.0
    keepalive_tolerated_misses: int = 2
    max_rounds: int = 20
    #: Scheduling policy the scenario runs under.  The default keeps
    #: the canonical form — and therefore every pre-policy digest —
    #: byte-identical: ``to_dict`` only emits the field when it
    #: deviates from ``cwc-greedy``.
    policy: str = DEFAULT_POLICY

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown scenario policy {self.policy!r}; known "
                f"policies: {', '.join(POLICY_NAMES)}"
            )
        if not self.phones:
            raise ValueError("scenario needs at least one phone")
        if not self.jobs:
            raise ValueError("scenario needs at least one job")
        job_ids = {job.job_id for job in self.jobs}
        arriving = {job_id for _, job_id in self.arrivals}
        if not arriving <= job_ids:
            raise ValueError(
                f"arrivals name unknown jobs: {sorted(arriving - job_ids)}"
            )
        if arriving >= job_ids:
            raise ValueError("at least one job must be in the initial batch")

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe canonical form (the digest is computed over this)."""
        data = {
            "seed": self.seed,
            "phones": [phone_to_dict(p) for p in self.phones],
            "jobs": [job_to_dict(j) for j in self.jobs],
            "measured_b": {k: self.measured_b[k] for k in sorted(self.measured_b)},
            "true_b": {k: self.true_b[k] for k in sorted(self.true_b)},
            "chaos": self.chaos.to_dict(),
            "arrivals": [[t, job_id] for t, job_id in self.arrivals],
            "hardened": self.hardened,
            "verify_results": self.verify_results,
            "warm_start": self.warm_start,
            "kernel": self.kernel,
            "deviation_sigma": self.deviation_sigma,
            "keepalive_period_ms": self.keepalive_period_ms,
            "keepalive_tolerated_misses": self.keepalive_tolerated_misses,
            "max_rounds": self.max_rounds,
        }
        if self.policy != DEFAULT_POLICY:
            data["policy"] = self.policy
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario, re-validating every component."""
        try:
            return cls(
                seed=int(data["seed"]),
                phones=tuple(phone_from_dict(p) for p in data["phones"]),
                jobs=tuple(job_from_dict(j) for j in data["jobs"]),
                measured_b={
                    str(k): float(v) for k, v in data["measured_b"].items()
                },
                true_b={str(k): float(v) for k, v in data["true_b"].items()},
                chaos=ChaosPlan.from_dict(data["chaos"]),
                arrivals=tuple(
                    (float(t), str(job_id)) for t, job_id in data["arrivals"]
                ),
                hardened=bool(data["hardened"]),
                verify_results=bool(data["verify_results"]),
                warm_start=bool(data["warm_start"]),
                kernel=str(data["kernel"]),
                deviation_sigma=float(data["deviation_sigma"]),
                keepalive_period_ms=float(data["keepalive_period_ms"]),
                keepalive_tolerated_misses=int(
                    data["keepalive_tolerated_misses"]
                ),
                max_rounds=int(data["max_rounds"]),
                policy=str(data.get("policy", DEFAULT_POLICY)),
            )
        except KeyError as exc:
            raise ValueError(f"scenario dict missing field {exc}") from exc

    def digest(self) -> str:
        """sha256 over the canonical JSON form."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


def generate_scenario(seed: int) -> Scenario:
    """Deterministically generate one scenario from a seed."""
    rng = random.Random(seed)
    phones = _gen_phones(rng)
    jobs = _gen_jobs(rng)
    measured_b, true_b = _gen_b(rng, phones)

    chaos = ChaosPlan.none()
    if rng.random() < 0.75:
        monkey = ChaosMonkey(
            flap_probability=0.25,
            max_flap_cycles=2,
            flap_down_range_ms=(5_000.0, 120_000.0),
            flap_up_range_ms=(5_000.0, 120_000.0),
            straggler_probability=0.2,
            straggler_factor_range=(2.0, 6.0),
            bandwidth_probability=0.15,
            bandwidth_factor_range=(2.0, 8.0),
            crash_rate=0.3,
            corruption_rate=0.15,
            online_fraction=0.8,
        )
        chaos = monkey.sample_plan(
            [phone.phone_id for phone in phones],
            duration_ms=rng.uniform(30_000.0, 400_000.0),
            rng=rng,
        )

    hardened = rng.random() < 0.5
    verify_results = hardened and rng.random() < 0.4
    warm_start = rng.random() < 0.5
    kernel = rng.choice(("python", "numpy"))
    deviation_sigma = rng.choice((0.0, 0.03, 0.1))

    arrivals: tuple[tuple[float, str], ...] = ()
    if len(jobs) >= 2 and rng.random() < 0.35:
        late_count = rng.randint(1, len(jobs) - 1)
        late = jobs[len(jobs) - late_count :]
        pairs = poisson_arrivals(
            late, rate_per_hour=rng.uniform(60.0, 1200.0), rng=rng
        )
        arrivals = tuple(
            (round(time_ms, 3), job.job_id) for time_ms, job in pairs
        )

    return Scenario(
        seed=seed,
        phones=phones,
        jobs=jobs,
        measured_b=measured_b,
        true_b=true_b,
        chaos=chaos,
        arrivals=arrivals,
        hardened=hardened,
        verify_results=verify_results,
        warm_start=warm_start,
        kernel=kernel,
        deviation_sigma=deviation_sigma,
        keepalive_period_ms=rng.choice((5_000.0, 15_000.0, 30_000.0)),
        keepalive_tolerated_misses=rng.choice((1, 2, 3)),
        max_rounds=20,
    )


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzOutcome:
    """One scenario's verdict under the oracle."""

    scenario: Scenario
    digest: str
    violations: tuple[Violation, ...]
    error: str | None = None
    makespan_ms: float | None = None
    rounds: int = 0
    completions: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None


def build_scenario_server(
    scenario: Scenario,
    *,
    telemetry=None,
    on_round=None,
    record_instances: bool = True,
    probe_workers: int | None = None,
    pods: int | None = None,
) -> CentralServer:
    """Construct a scenario's server exactly as the fuzzer runs it.

    This is *the* scenario→server mapping: the crash-recovery layer
    (``repro.durability.recovery``) replays runs by rebuilding the
    server through this same function, so any knob added to
    :class:`Scenario` must be threaded through here to keep replays
    byte-identical.  ``probe_workers`` is deliberately *not* part of
    the scenario: the speculative pool changes how capacity verdicts
    are computed, never the schedules, so drills may turn it on
    without perturbing digests.  ``pods`` likewise swaps in the
    sharded scheduler (same kernel/warm-start knobs) without entering
    the scenario — ``repro trace --pods`` uses it to profile the
    pod-parallel path on fuzz fleets.
    """
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(
        profiles, deviation_sigma=scenario.deviation_sigma, seed=scenario.seed
    )
    predictor = RuntimePredictor(profiles)
    resilience = (
        ResiliencePolicy.hardened(verify_results=scenario.verify_results)
        if scenario.hardened
        else None
    )
    if pods is not None:
        from ..core.sharding import ShardedScheduler

        scheduler = ShardedScheduler(
            pods=pods,
            kernel=scenario.kernel,
            warm_start=scenario.warm_start,
            telemetry=telemetry,
            policy=scenario.policy,
        )
    elif scenario.policy == DEFAULT_POLICY:
        scheduler = CwcScheduler(
            kernel=scenario.kernel,
            warm_start=scenario.warm_start,
            probe_workers=probe_workers,
            telemetry=telemetry,
        )
    else:
        # Replication distrusts exactly the phones the chaos plan
        # touches — derived from the scenario, so replays agree.
        scheduler = make_policy(
            scenario.policy,
            kernel=scenario.kernel,
            warm_start=scenario.warm_start,
            probe_workers=probe_workers,
            telemetry=telemetry,
            unreliable=tuple(sorted(scenario.chaos.phone_ids())),
        )
    return CentralServer(
        scenario.phones,
        truth,
        predictor,
        scheduler,
        scenario.measured_b,
        true_b_ms_per_kb=scenario.true_b,
        chaos=scenario.chaos,
        resilience=resilience,
        keepalive_period_ms=scenario.keepalive_period_ms,
        keepalive_tolerated_misses=scenario.keepalive_tolerated_misses,
        max_rounds=scenario.max_rounds,
        telemetry=telemetry,
        record_instances=record_instances,
        on_round=on_round,
    )


def scenario_workload(
    scenario: Scenario,
) -> tuple[tuple[Job, ...], tuple[tuple[float, Job], ...]]:
    """Split a scenario's jobs into ``(initial batch, timed arrivals)``."""
    jobs_by_id = {job.job_id: job for job in scenario.jobs}
    arriving_ids = {job_id for _, job_id in scenario.arrivals}
    initial = tuple(
        job for job in scenario.jobs if job.job_id not in arriving_ids
    )
    arrivals = tuple(
        (time_ms, jobs_by_id[job_id])
        for time_ms, job_id in scenario.arrivals
    )
    return initial, arrivals


def run_scenario(
    scenario: Scenario, *, arm_telemetry: bool = True
) -> FuzzOutcome:
    """Execute one scenario end to end and apply the oracle.

    A crash inside the simulator is reported as a synthetic
    ``no-crash`` violation via ``error`` rather than propagating — the
    fuzzer treats "the simulation blew up" as a finding, not a tooling
    failure.
    """
    telemetry = None
    if arm_telemetry:
        from ..obs.telemetry import Telemetry

        telemetry = Telemetry.create(
            run_id=f"fuzz-{scenario.seed}", tracing=True
        )
    initial, arrivals = scenario_workload(scenario)
    try:
        server = build_scenario_server(
            scenario, telemetry=telemetry, record_instances=True
        )
        result = server.run(initial, arrivals=arrivals)
    except Exception as exc:  # noqa: BLE001 - crashes are findings
        return FuzzOutcome(
            scenario=scenario,
            digest=scenario.digest(),
            violations=(
                Violation(
                    invariant="no-crash",
                    scope="run",
                    message=f"{type(exc).__name__}: {exc}",
                ),
            ),
            error=f"{type(exc).__name__}: {exc}",
        )

    oracle = Oracle()
    events = telemetry.bus.events if telemetry is not None else None
    spans = telemetry.tracer.spans if telemetry is not None else None
    violations = list(
        oracle.check_run(
            result, scenario.jobs, events=events, spans=spans, collect=True
        )
    )
    violations.extend(oracle.check_rounds(result, collect=True))
    return FuzzOutcome(
        scenario=scenario,
        digest=scenario.digest(),
        violations=tuple(violations),
        makespan_ms=result.measured_makespan_ms,
        rounds=len(result.rounds),
        completions=len(result.trace.completions),
    )


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def _without_phone(scenario: Scenario, phone_id: str) -> Scenario:
    """Drop one phone plus every fault and rate table entry naming it."""
    chaos = scenario.chaos
    return dataclasses.replace(
        scenario,
        phones=tuple(p for p in scenario.phones if p.phone_id != phone_id),
        measured_b={
            k: v for k, v in scenario.measured_b.items() if k != phone_id
        },
        true_b={k: v for k, v in scenario.true_b.items() if k != phone_id},
        chaos=ChaosPlan(
            failures=[f for f in chaos.failures if f.phone_id != phone_id],
            slowdowns=[s for s in chaos.slowdowns if s.phone_id != phone_id],
            bandwidth=[b for b in chaos.bandwidth if b.phone_id != phone_id],
            crashes=[c for c in chaos.crashes if c.phone_id != phone_id],
            corruptions=[
                c for c in chaos.corruptions if c.phone_id != phone_id
            ],
        ),
    )


def _without_job(scenario: Scenario, job_id: str) -> Scenario:
    return dataclasses.replace(
        scenario,
        jobs=tuple(j for j in scenario.jobs if j.job_id != job_id),
        arrivals=tuple(
            (t, jid) for t, jid in scenario.arrivals if jid != job_id
        ),
    )


def _chaos_stream_variants(scenario: Scenario) -> list[Scenario]:
    """Variants with one whole chaos stream emptied, then single faults cut."""
    chaos = scenario.chaos
    streams = {
        "failures": tuple(chaos.failures),
        "slowdowns": chaos.slowdowns,
        "bandwidth": chaos.bandwidth,
        "crashes": chaos.crashes,
        "corruptions": chaos.corruptions,
    }
    base = {name: list(faults) for name, faults in streams.items()}
    variants = []
    for name, faults in streams.items():
        if not faults:
            continue
        whole = dict(base)
        whole[name] = []
        variants.append(whole)
        for index in range(len(faults)):
            single = dict(base)
            single[name] = [f for i, f in enumerate(faults) if i != index]
            variants.append(single)
    scenarios = []
    for spec in variants:
        try:
            scenarios.append(
                dataclasses.replace(scenario, chaos=ChaosPlan(**spec))
            )
        except ValueError:
            # Removing one failure from a flap chain can invalidate the
            # remaining stream; such candidates are simply skipped.
            continue
    return scenarios


def _shrink_candidates(scenario: Scenario) -> list[Scenario]:
    """All one-step-smaller scenarios, cheapest cuts first."""
    candidates: list[Scenario] = []
    if scenario.arrivals:
        candidates.append(dataclasses.replace(scenario, arrivals=()))
    if scenario.hardened:
        candidates.append(
            dataclasses.replace(
                scenario, hardened=False, verify_results=False
            )
        )
    elif scenario.verify_results:
        candidates.append(
            dataclasses.replace(scenario, verify_results=False)
        )
    candidates.extend(_chaos_stream_variants(scenario))
    if len(scenario.jobs) > 1:
        for job in scenario.jobs:
            try:
                candidates.append(_without_job(scenario, job.job_id))
            except ValueError:
                continue
    if len(scenario.phones) > 1:
        for phone in scenario.phones:
            try:
                candidates.append(_without_phone(scenario, phone.phone_id))
            except ValueError:
                continue
    return candidates


def minimize_scenario(
    scenario: Scenario,
    *,
    is_failing: Callable[[Scenario], bool] | None = None,
    budget: int = 120,
) -> Scenario:
    """Greedy shrink: keep cutting while the scenario still fails.

    ``is_failing`` defaults to "the oracle reports any violation or the
    sim crashes"; the minimum may therefore exhibit a *different*
    violation than the original — both are findings.  At most
    ``budget`` candidate simulations run.
    """
    if is_failing is None:

        def is_failing(candidate: Scenario) -> bool:
            return not run_scenario(candidate).ok

    if not is_failing(scenario):
        return scenario
    spent = 0
    current = scenario
    progressed = True
    while progressed and spent < budget:
        progressed = False
        for candidate in _shrink_candidates(current):
            if spent >= budget:
                break
            spent += 1
            if is_failing(candidate):
                current = candidate
                progressed = True
                break
    return current


# ---------------------------------------------------------------------------
# artifacts and replay
# ---------------------------------------------------------------------------


def write_artifact(
    outcome: FuzzOutcome, directory: str | Path, *, minimized: bool = False
) -> Path:
    """Write ``fuzz-<seed>.json``; returns the artifact path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fuzz-{outcome.scenario.seed}.json"
    payload = {
        "format": ARTIFACT_FORMAT,
        "seed": outcome.scenario.seed,
        "digest": outcome.digest,
        "minimized": minimized,
        "violations": [
            {
                "invariant": v.invariant,
                "scope": v.scope,
                "message": v.message,
            }
            for v in outcome.violations
        ],
        "error": outcome.error,
        "makespan_ms": outcome.makespan_ms,
        "scenario": outcome.scenario.to_dict(),
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of re-executing a saved artifact."""

    outcome: FuzzOutcome
    digest_matches: bool
    recorded_violations: tuple[str, ...]

    @property
    def reproduced(self) -> bool:
        """The replay shows the same failing/passing verdict as recorded."""
        return bool(self.recorded_violations) == (not self.outcome.ok)


def replay_artifact(path: str | Path) -> ReplayResult:
    """Re-execute a ``fuzz-<seed>.json`` artifact deterministically."""
    with Path(path).open(encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"unsupported artifact format {payload.get('format')!r} "
            f"(expected {ARTIFACT_FORMAT})"
        )
    scenario = Scenario.from_dict(payload["scenario"])
    outcome = run_scenario(scenario)
    return ReplayResult(
        outcome=outcome,
        digest_matches=outcome.digest == payload.get("digest"),
        recorded_violations=tuple(
            v["invariant"] for v in payload.get("violations", ())
        ),
    )


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzReport:
    """Summary of a whole fuzz campaign."""

    runs: int
    seed: int
    digests: tuple[str, ...]
    failures: tuple[FuzzOutcome, ...]
    artifacts: tuple[str, ...]
    campaign_digest: str

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(
    runs: int,
    *,
    seed: int = 0,
    out_dir: str | Path | None = None,
    minimize: bool = True,
    minimize_budget: int = 120,
    progress: Callable[[int, FuzzOutcome], None] | None = None,
) -> FuzzReport:
    """Fuzz ``runs`` scenarios derived from ``seed``.

    Failing scenarios are shrunk (when ``minimize``) and written as
    replay artifacts under ``out_dir``.  The campaign digest hashes
    every run's scenario digest, measured makespan, and violation
    count, so two campaigns from the same seed must produce identical
    digests — the determinism acceptance check.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs!r}")
    digests: list[str] = []
    failures: list[FuzzOutcome] = []
    artifacts: list[str] = []
    hasher = hashlib.sha256()
    for index, scenario_seed in enumerate(derive_seeds(seed, runs)):
        scenario = generate_scenario(scenario_seed)
        outcome = run_scenario(scenario)
        digests.append(outcome.digest)
        hasher.update(
            f"{outcome.digest}:{outcome.makespan_ms!r}:"
            f"{len(outcome.violations)}\n".encode()
        )
        if progress is not None:
            progress(index, outcome)
        if outcome.ok:
            continue
        if minimize:
            minimal = minimize_scenario(
                scenario, budget=minimize_budget
            )
            outcome = run_scenario(minimal)
            if outcome.ok:
                # Shrinking lost the failure (flaky only under the full
                # scenario): fall back to the original outcome.
                outcome = run_scenario(scenario)
        failures.append(outcome)
        if out_dir is not None:
            artifacts.append(
                str(write_artifact(outcome, out_dir, minimized=minimize))
            )
    return FuzzReport(
        runs=runs,
        seed=seed,
        digests=tuple(digests),
        failures=tuple(failures),
        artifacts=tuple(artifacts),
        campaign_digest=hasher.hexdigest(),
    )


@dataclass(frozen=True)
class CrashRestoreReport:
    """Summary of a crash/restore drill campaign.

    ``outcomes`` are :class:`~repro.durability.recovery.CrashRestoreOutcome`
    records, one per scenario; ``failures`` are those whose restored run
    was not byte-identical to the baseline, tripped the oracle, or
    errored.  ``campaign_digest`` hashes each scenario's digest together
    with its kill instant and verdict, so two campaigns from the same
    seed must match digest-for-digest.
    """

    runs: int
    seed: int
    outcomes: tuple
    failures: tuple
    campaign_digest: str
    kills: int
    cold_restarts: int
    #: ``cwc-probe-*`` segments still in ``/dev/shm`` when the campaign
    #: finished — always empty unless probe-worker teardown regressed.
    leaked_shm: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.failures and not self.leaked_shm


def run_crash_restore_campaign(
    runs: int,
    *,
    seed: int = 0,
    store_root: str | Path | None = None,
    progress: Callable[[int, object], None] | None = None,
    probe_workers: int | None = None,
    tracing: bool = True,
) -> CrashRestoreReport:
    """Kill/restore-drill ``runs`` scenarios derived from ``seed``.

    Each scenario goes through the full
    :func:`~repro.durability.recovery.crash_restore_check`: baseline
    run, a rerun killed at a seed-chosen scheduling instant with
    round-boundary checkpoints, and a replay-verified restore whose
    remaining schedule and trace must be byte-identical to the
    baseline's with zero oracle violations.  Snapshot stores live under
    ``store_root`` (a temporary directory when omitted), one
    ``crash-<seed>`` subdirectory per scenario.

    ``probe_workers`` runs every leg through the speculative probe
    pool (digests are unaffected), turning the campaign into a
    shared-memory teardown drill: the report's ``leaked_shm`` lists
    any ``cwc-probe-*`` segment still in ``/dev/shm`` afterwards and
    fails ``ok`` if non-empty.

    ``tracing`` (default on) arms the span tracer on the killed and
    restored legs: every kill must leave only closed spans behind and
    the restored run additionally passes the span invariants — again
    without perturbing digests, since spans never enter them.
    """
    import tempfile

    from ..core.shm import leaked_segments
    from ..durability.recovery import crash_restore_check

    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs!r}")

    cleanup = None
    if store_root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="crash-restore-")
        store_root = cleanup.name
    root = Path(store_root)

    outcomes = []
    failures = []
    kills = 0
    cold_restarts = 0
    hasher = hashlib.sha256()
    try:
        for index, scenario_seed in enumerate(derive_seeds(seed, runs)):
            scenario = generate_scenario(scenario_seed)
            outcome = crash_restore_check(
                scenario,
                store_dir=root / f"crash-{scenario_seed}",
                probe_workers=probe_workers,
                tracing=tracing,
            )
            outcomes.append(outcome)
            hasher.update(
                f"{scenario.digest()}:{outcome.kill_instant}:"
                f"{outcome.identical}:{len(outcome.violations)}\n".encode()
            )
            if outcome.killed:
                kills += 1
            if outcome.snapshot_id is None and outcome.error is None:
                cold_restarts += 1
            if not outcome.ok:
                failures.append(outcome)
            if progress is not None:
                progress(index, outcome)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return CrashRestoreReport(
        runs=runs,
        seed=seed,
        outcomes=tuple(outcomes),
        failures=tuple(failures),
        campaign_digest=hasher.hexdigest(),
        kills=kills,
        cold_restarts=cold_restarts,
        leaked_shm=tuple(leaked_segments()),
    )
