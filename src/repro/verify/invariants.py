"""The invariant registry: named behavioural contracts of a CWC run.

Each invariant is a small checker registered under a stable name, in
one of two scopes:

* **run invariants** inspect a finished simulation — the
  :class:`~repro.sim.trace.TimelineTrace`, the completions/failures
  bookkeeping, and (optionally) the unified telemetry event stream;
* **schedule invariants** inspect one scheduling decision — a
  :class:`~repro.core.schedule.Schedule` against its
  :class:`~repro.core.instance.SchedulingInstance` and, when known, the
  converged capacity and LP/greedy bounds.

The four checks that used to live ad hoc in :mod:`repro.sim.validation`
(sequential phones, conservation, dark-window/zombie, copy-before-
execute) are promoted here verbatim; the oracle adds makespan
consistency, duplicate-credit detection, telemetry/trace agreement,
capacity soundness, and the LP sandwich.

Checkers raise :class:`InvariantViolation` with a specific message; the
:class:`~repro.verify.oracle.Oracle` turns those into
:class:`Violation` records when collecting instead of failing fast.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

# NOTE: this module deliberately imports nothing from the rest of
# repro at module level.  repro.sim.validation imports the registry,
# and repro.sim sits downstream of repro.core and repro.obs, so any
# eager import here would re-enter a partially-initialised package.
# Checkers lazy-import what they inspect instead.

__all__ = [
    "TOL_MS",
    "InvariantViolation",
    "Violation",
    "Invariant",
    "RunContext",
    "ScheduleContext",
    "run_invariant",
    "schedule_invariant",
    "run_registry",
    "schedule_registry",
]

#: Absolute tolerance (milliseconds / kilobytes) for float comparisons.
TOL_MS = 1e-6


class InvariantViolation(AssertionError):
    """A schedule or simulated run violated a CWC behavioural contract."""


@dataclass(frozen=True)
class Violation:
    """One collected invariant violation."""

    invariant: str
    scope: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.scope}:{self.invariant}] {self.message}"


@dataclass(frozen=True)
class Invariant:
    """A named contract plus the checker that enforces it."""

    name: str
    scope: str
    description: str
    check: Callable[[Any], None]


@dataclass
class RunContext:
    """Everything a run-scope invariant may inspect.

    ``events`` is the unified telemetry event stream (a sequence of
    :class:`~repro.obs.events.Event` or envelope dicts) when the run was
    telemetry-armed; invariants needing it skip silently when absent.
    ``spans`` is the tracer's closed-span store (a sequence of
    :class:`~repro.obs.tracing.TraceSpan` or span dicts) when the run
    was tracing-armed; the span invariants assume an unbounded store,
    so validation runs must not ring-bound the tracer.
    """

    result: Any  # repro.sim.server.RunResult (duck-typed to avoid cycles)
    jobs: Sequence[Any]
    events: Sequence[Any] | None = None
    spans: Sequence[Any] | None = None


@dataclass
class ScheduleContext:
    """Everything a schedule-scope invariant may inspect.

    Optional fields default to ``None``; invariants that need a missing
    field skip silently, so one context type serves both standalone
    capacity-search results and per-round records replayed from a
    :class:`~repro.sim.server.RunResult`.
    """

    instance: Any
    schedule: Any
    capacity_ms: float | None = None
    lower_bound_ms: float | None = None
    upper_bound_ms: float | None = None
    predicted_makespan_ms: float | None = None


_RUN_REGISTRY: dict[str, Invariant] = {}
_SCHEDULE_REGISTRY: dict[str, Invariant] = {}


def run_registry() -> dict[str, Invariant]:
    """Snapshot of the run-scope invariant registry (name -> invariant)."""
    return dict(_RUN_REGISTRY)


def schedule_registry() -> dict[str, Invariant]:
    """Snapshot of the schedule-scope registry (name -> invariant)."""
    return dict(_SCHEDULE_REGISTRY)


def run_invariant(name: str, description: str):
    """Register a run-scope checker under ``name``."""

    def decorate(check: Callable[[RunContext], None]):
        if name in _RUN_REGISTRY:
            raise ValueError(f"duplicate run invariant {name!r}")
        _RUN_REGISTRY[name] = Invariant(
            name=name, scope="run", description=description, check=check
        )
        return check

    return decorate


def schedule_invariant(name: str, description: str):
    """Register a schedule-scope checker under ``name``."""

    def decorate(check: Callable[[ScheduleContext], None]):
        if name in _SCHEDULE_REGISTRY:
            raise ValueError(f"duplicate schedule invariant {name!r}")
        _SCHEDULE_REGISTRY[name] = Invariant(
            name=name, scope="schedule", description=description, check=check
        )
        return check

    return decorate


# ---------------------------------------------------------------------------
# run-scope invariants
# ---------------------------------------------------------------------------


@run_invariant(
    "sequential-phones",
    "a phone never overlaps two spans (the dispatch pipeline is serial)",
)
def _check_sequential_phones(ctx: RunContext) -> None:
    trace = ctx.result.trace
    for phone_id in trace.phone_ids():
        spans = sorted(trace.spans_for(phone_id), key=lambda s: s.start_ms)
        for earlier, later in zip(spans, spans[1:]):
            if later.start_ms < earlier.end_ms - TOL_MS:
                raise InvariantViolation(
                    f"phone {phone_id!r} overlaps spans: "
                    f"[{earlier.start_ms}, {earlier.end_ms}] and "
                    f"[{later.start_ms}, {later.end_ms}]"
                )


@run_invariant(
    "conservation",
    "completed + checkpointed + unfinished input equals submitted input",
)
def _check_conservation(ctx: RunContext) -> None:
    trace = ctx.result.trace
    total_input = sum(job.input_kb for job in ctx.jobs)
    completed = sum(c.input_kb for c in trace.completions)
    checkpointed = sum(f.processed_kb for f in trace.failures)
    unfinished = sum(job.input_kb for job in ctx.result.unfinished_jobs)
    accounted = completed + checkpointed + unfinished
    if abs(accounted - total_input) > max(TOL_MS, total_input * 1e-9):
        raise InvariantViolation(
            f"input not conserved: submitted {total_input:.3f} KB but "
            f"accounted {accounted:.3f} KB (completed {completed:.3f} + "
            f"checkpointed {checkpointed:.3f} + unfinished {unfinished:.3f})"
        )


@run_invariant(
    "no-duplicate-credit",
    "no job is credited more input than it submitted (exactly-once credit)",
)
def _check_no_duplicate_credit(ctx: RunContext) -> None:
    trace = ctx.result.trace
    submitted = {job.job_id: job.input_kb for job in ctx.jobs}
    credited: dict[str, float] = {}
    for completion in trace.completions:
        credited[completion.job_id] = (
            credited.get(completion.job_id, 0.0) + completion.input_kb
        )
    for job_id, kb in credited.items():
        if job_id not in submitted:
            raise InvariantViolation(
                f"completion credited unknown job {job_id!r}"
            )
        limit = submitted[job_id]
        if kb > limit + max(TOL_MS, limit * 1e-9):
            raise InvariantViolation(
                f"job {job_id!r} over-credited: {kb:.3f} KB completed "
                f"against {limit:.3f} KB submitted (duplicate credit?)"
            )


@run_invariant(
    "no-zombie-work",
    "a failed phone does no work between failure detection and rejoin",
)
def _check_no_zombie_work(ctx: RunContext) -> None:
    # A phone may legitimately work again after a failure if it rejoined;
    # rejoin instants are recorded in the trace.  Two things must never
    # happen: a span *in flight* across the detection instant that is not
    # marked interrupted, and a span *starting* inside the dark window
    # between a detected failure and the phone's next rejoin.
    trace = ctx.result.trace
    for failure in trace.failures:
        rejoins = trace.rejoin_times_for(failure.phone_id)
        next_rejoin = min(
            (t for t in rejoins if t >= failure.detected_at_ms - TOL_MS),
            default=None,
        )
        for span in trace.spans_for(failure.phone_id):
            crosses = (
                span.start_ms < failure.detected_at_ms - TOL_MS
                and span.end_ms > failure.detected_at_ms + TOL_MS
            )
            if crosses and not span.interrupted:
                raise InvariantViolation(
                    f"phone {failure.phone_id!r} has an uninterrupted span "
                    f"[{span.start_ms}, {span.end_ms}] crossing its failure "
                    f"detection at {failure.detected_at_ms}"
                )
            starts_dark = span.start_ms > failure.detected_at_ms + TOL_MS and (
                next_rejoin is None or span.start_ms < next_rejoin - TOL_MS
            )
            if starts_dark:
                raise InvariantViolation(
                    f"phone {failure.phone_id!r} started a span at "
                    f"{span.start_ms} while dark (failed at "
                    f"{failure.detected_at_ms}, "
                    + (
                        "never rejoined)"
                        if next_rejoin is None
                        else f"rejoined at {next_rejoin})"
                    )
                )


@run_invariant(
    "copy-before-execute",
    "every execution on a phone is preceded by a copy of the same job",
)
def _check_copy_before_execute(ctx: RunContext) -> None:
    from ..sim.trace import SpanKind

    trace = ctx.result.trace
    for phone_id in trace.phone_ids():
        spans = sorted(trace.spans_for(phone_id), key=lambda s: s.start_ms)
        copied_jobs: set[str] = set()
        for span in spans:
            if span.kind is SpanKind.COPY:
                copied_jobs.add(span.job_id)
            elif span.job_id not in copied_jobs:
                raise InvariantViolation(
                    f"phone {phone_id!r} executed job {span.job_id!r} at "
                    f"{span.start_ms} without ever copying it"
                )


@run_invariant(
    "makespan-consistency",
    "reported makespan equals the last span end and bounds every completion",
)
def _check_makespan_consistency(ctx: RunContext) -> None:
    trace = ctx.result.trace
    last_span_end = max((s.end_ms for s in trace.spans), default=0.0)
    reported = ctx.result.measured_makespan_ms
    if abs(reported - last_span_end) > TOL_MS:
        raise InvariantViolation(
            f"reported makespan {reported} ms does not equal the last "
            f"span end {last_span_end} ms"
        )
    for span in trace.spans:
        if span.start_ms < -TOL_MS:
            raise InvariantViolation(
                f"span on phone {span.phone_id!r} starts before t=0 "
                f"({span.start_ms} ms)"
            )
    for completion in trace.completions:
        if completion.time_ms > last_span_end + TOL_MS:
            raise InvariantViolation(
                f"job {completion.job_id!r} completed at "
                f"{completion.time_ms} ms, after the makespan "
                f"{last_span_end} ms"
            )


@run_invariant(
    "telemetry-agreement",
    "metrics rebuilt from the event stream match metrics from the trace",
)
def _check_telemetry_agreement(ctx: RunContext) -> None:
    if ctx.events is None:
        return
    from ..obs.report import run_metrics_from_events
    from ..sim.metrics import compute_run_metrics

    from_trace = compute_run_metrics(ctx.result.trace)
    from_events = run_metrics_from_events(ctx.events)
    if from_events != from_trace:
        raise InvariantViolation(
            "telemetry/trace disagreement: metrics rebuilt from the event "
            f"stream (makespan {from_events.makespan_ms} ms, "
            f"{len(from_events.phones)} phones) differ from metrics "
            f"computed on the trace (makespan {from_trace.makespan_ms} ms, "
            f"{len(from_trace.phones)} phones)"
        )


def _normalized_spans(ctx: RunContext):
    """``ctx.spans`` as :class:`~repro.obs.tracing.TraceSpan` objects.

    Accepts both span objects and plain dicts (the checkpoint / export
    form); a dict failing schema validation is itself an invariant
    violation, surfaced by the caller.
    """
    from ..obs.tracing import SpanSchemaError, TraceSpan

    spans = []
    for entry in ctx.spans:
        if isinstance(entry, TraceSpan):
            spans.append(entry)
        else:
            try:
                spans.append(TraceSpan.from_dict(entry))
            except SpanSchemaError as exc:
                raise InvariantViolation(f"malformed span: {exc}") from exc
    return spans


@run_invariant(
    "span-tree",
    "the tracer's spans form a well-formed forest: unique ids, every "
    "parent recorded and older than its child, no open spans left",
)
def _check_span_tree(ctx: RunContext) -> None:
    if ctx.spans is None:
        return
    spans = _normalized_spans(ctx)
    by_id: dict[int, Any] = {}
    for span in spans:
        if span.span_id in by_id:
            raise InvariantViolation(
                f"duplicate span id {span.span_id} "
                f"({by_id[span.span_id].name!r} and {span.name!r})"
            )
        by_id[span.span_id] = span
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            raise InvariantViolation(
                f"span {span.span_id} ({span.name!r}) references missing "
                f"parent {span.parent_id} — the store was ring-bounded or "
                f"a span was never closed"
            )
        # Ids are allocated monotonically and a parent is always opened
        # (or adopted) before its children, so parent_id < span_id; a
        # violation means the links were rewired after recording.  It
        # also rules out cycles.
        if span.parent_id >= span.span_id:
            raise InvariantViolation(
                f"span {span.span_id} ({span.name!r}) has parent "
                f"{span.parent_id} with a newer or equal id"
            )


@run_invariant(
    "span-nesting",
    "every child span's interval lies inside its parent's, on the wall "
    "clock always and on the sim clock when both carry sim times",
)
def _check_span_nesting(ctx: RunContext) -> None:
    if ctx.spans is None:
        return
    spans = _normalized_spans(ctx)
    by_id = {span.span_id: span for span in spans}
    wall_tol = 1e-9
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            continue  # span-tree reports the broken link
        if (
            span.start_wall_s < parent.start_wall_s - wall_tol
            or span.end_wall_s > parent.end_wall_s + wall_tol
        ):
            raise InvariantViolation(
                f"span {span.span_id} ({span.name!r}) wall interval "
                f"[{span.start_wall_s:.6f}, {span.end_wall_s:.6f}] escapes "
                f"its parent {parent.span_id} ({parent.name!r}) "
                f"[{parent.start_wall_s:.6f}, {parent.end_wall_s:.6f}]"
            )
        if (
            span.start_sim_ms is not None
            and span.end_sim_ms is not None
            and parent.start_sim_ms is not None
            and parent.end_sim_ms is not None
        ):
            if (
                span.start_sim_ms < parent.start_sim_ms - TOL_MS
                or span.end_sim_ms > parent.end_sim_ms + TOL_MS
            ):
                raise InvariantViolation(
                    f"span {span.span_id} ({span.name!r}) sim interval "
                    f"[{span.start_sim_ms}, {span.end_sim_ms}] escapes its "
                    f"parent {parent.span_id} ({parent.name!r}) "
                    f"[{parent.start_sim_ms}, {parent.end_sim_ms}]"
                )


@run_invariant(
    "span-dispatch-match",
    "every dispatch event owns exactly one copy span at the same "
    "(phone, job, sim instant), and vice versa",
)
def _check_span_dispatch_match(ctx: RunContext) -> None:
    if ctx.spans is None or ctx.events is None:
        return
    from ..obs.events import Event

    def _key(phone_id, job_id, sim_ms):
        return (phone_id, job_id, round(float(sim_ms), 6))

    dispatches: dict[tuple, int] = {}
    for event in ctx.events:
        data = event.to_dict() if isinstance(event, Event) else event
        if data.get("component") != "server" or data.get("kind") != "dispatch":
            continue
        payload = data["payload"]
        key = _key(payload["phone_id"], payload["job_id"], data["sim_time_ms"])
        dispatches[key] = dispatches.get(key, 0) + 1

    copies: dict[tuple, int] = {}
    for span in _normalized_spans(ctx):
        if span.name != "copy" or span.category != "fleet":
            continue
        phone_id = span.process.split("/", 1)[-1]
        key = _key(phone_id, span.attrs.get("job_id"), span.start_sim_ms)
        copies[key] = copies.get(key, 0) + 1

    for key, count in dispatches.items():
        if copies.get(key, 0) != count:
            raise InvariantViolation(
                f"dispatch event {key} has {copies.get(key, 0)} matching "
                f"copy span(s), expected {count}"
            )
    for key, count in copies.items():
        if dispatches.get(key, 0) != count:
            raise InvariantViolation(
                f"copy span {key} has {dispatches.get(key, 0)} matching "
                f"dispatch event(s), expected {count}"
            )


# ---------------------------------------------------------------------------
# schedule-scope invariants
# ---------------------------------------------------------------------------


@schedule_invariant(
    "coverage",
    "every job's input is fully assigned; atomic jobs stay whole",
)
def _check_coverage(ctx: ScheduleContext) -> None:
    from ..core.schedule import InfeasibleScheduleError

    try:
        ctx.schedule.validate(ctx.instance)
    except InfeasibleScheduleError as exc:
        raise InvariantViolation(f"schedule invalid: {exc}") from exc


@schedule_invariant(
    "capacity-soundness",
    "no phone's predicted finish exceeds the converged capacity",
)
def _check_capacity_soundness(ctx: ScheduleContext) -> None:
    if ctx.capacity_ms is None or ctx.capacity_ms <= 0:
        return
    budget = ctx.capacity_ms + max(TOL_MS, ctx.capacity_ms * 1e-9)
    for phone in ctx.instance.phones:
        finish = ctx.schedule.predicted_finish_ms(ctx.instance, phone.phone_id)
        if finish > budget:
            raise InvariantViolation(
                f"phone {phone.phone_id!r} is predicted to finish at "
                f"{finish:.6f} ms, above the converged capacity "
                f"{ctx.capacity_ms:.6f} ms"
            )


@schedule_invariant(
    "makespan-prediction",
    "the recorded predicted makespan matches a recomputation from costs",
)
def _check_makespan_prediction(ctx: ScheduleContext) -> None:
    if ctx.predicted_makespan_ms is None:
        return
    recomputed = ctx.schedule.predicted_makespan_ms(ctx.instance)
    tol = max(TOL_MS, abs(recomputed) * 1e-9)
    if abs(recomputed - ctx.predicted_makespan_ms) > tol:
        raise InvariantViolation(
            f"recorded predicted makespan {ctx.predicted_makespan_ms} ms "
            f"does not match the recomputed {recomputed} ms"
        )


@schedule_invariant(
    "lp-sandwich",
    "lp lower bound <= predicted makespan <= greedy upper bound",
)
def _check_lp_sandwich(ctx: ScheduleContext) -> None:
    makespan = ctx.schedule.predicted_makespan_ms(ctx.instance)
    if ctx.lower_bound_ms is not None:
        tol = max(TOL_MS, abs(makespan) * 1e-6)
        if makespan < ctx.lower_bound_ms - tol:
            raise InvariantViolation(
                f"predicted makespan {makespan:.6f} ms undercuts the LP "
                f"lower bound {ctx.lower_bound_ms:.6f} ms"
            )
    if ctx.upper_bound_ms is not None:
        tol = max(TOL_MS, abs(ctx.upper_bound_ms) * 1e-9)
        if makespan > ctx.upper_bound_ms + tol:
            raise InvariantViolation(
                f"predicted makespan {makespan:.6f} ms exceeds the greedy "
                f"upper bound {ctx.upper_bound_ms:.6f} ms"
            )
