"""The invariant registry: named behavioural contracts of a CWC run.

Each invariant is a small checker registered under a stable name, in
one of two scopes:

* **run invariants** inspect a finished simulation — the
  :class:`~repro.sim.trace.TimelineTrace`, the completions/failures
  bookkeeping, and (optionally) the unified telemetry event stream;
* **schedule invariants** inspect one scheduling decision — a
  :class:`~repro.core.schedule.Schedule` against its
  :class:`~repro.core.instance.SchedulingInstance` and, when known, the
  converged capacity and LP/greedy bounds.

The four checks that used to live ad hoc in :mod:`repro.sim.validation`
(sequential phones, conservation, dark-window/zombie, copy-before-
execute) are promoted here verbatim; the oracle adds makespan
consistency, duplicate-credit detection, telemetry/trace agreement,
capacity soundness, and the LP sandwich.

Checkers raise :class:`InvariantViolation` with a specific message; the
:class:`~repro.verify.oracle.Oracle` turns those into
:class:`Violation` records when collecting instead of failing fast.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

# NOTE: this module deliberately imports nothing from the rest of
# repro at module level.  repro.sim.validation imports the registry,
# and repro.sim sits downstream of repro.core and repro.obs, so any
# eager import here would re-enter a partially-initialised package.
# Checkers lazy-import what they inspect instead.

__all__ = [
    "TOL_MS",
    "InvariantViolation",
    "Violation",
    "Invariant",
    "RunContext",
    "ScheduleContext",
    "run_invariant",
    "schedule_invariant",
    "run_registry",
    "schedule_registry",
]

#: Absolute tolerance (milliseconds / kilobytes) for float comparisons.
TOL_MS = 1e-6


class InvariantViolation(AssertionError):
    """A schedule or simulated run violated a CWC behavioural contract."""


@dataclass(frozen=True)
class Violation:
    """One collected invariant violation."""

    invariant: str
    scope: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.scope}:{self.invariant}] {self.message}"


@dataclass(frozen=True)
class Invariant:
    """A named contract plus the checker that enforces it."""

    name: str
    scope: str
    description: str
    check: Callable[[Any], None]


@dataclass
class RunContext:
    """Everything a run-scope invariant may inspect.

    ``events`` is the unified telemetry event stream (a sequence of
    :class:`~repro.obs.events.Event` or envelope dicts) when the run was
    telemetry-armed; invariants needing it skip silently when absent.
    """

    result: Any  # repro.sim.server.RunResult (duck-typed to avoid cycles)
    jobs: Sequence[Any]
    events: Sequence[Any] | None = None


@dataclass
class ScheduleContext:
    """Everything a schedule-scope invariant may inspect.

    Optional fields default to ``None``; invariants that need a missing
    field skip silently, so one context type serves both standalone
    capacity-search results and per-round records replayed from a
    :class:`~repro.sim.server.RunResult`.
    """

    instance: Any
    schedule: Any
    capacity_ms: float | None = None
    lower_bound_ms: float | None = None
    upper_bound_ms: float | None = None
    predicted_makespan_ms: float | None = None


_RUN_REGISTRY: dict[str, Invariant] = {}
_SCHEDULE_REGISTRY: dict[str, Invariant] = {}


def run_registry() -> dict[str, Invariant]:
    """Snapshot of the run-scope invariant registry (name -> invariant)."""
    return dict(_RUN_REGISTRY)


def schedule_registry() -> dict[str, Invariant]:
    """Snapshot of the schedule-scope registry (name -> invariant)."""
    return dict(_SCHEDULE_REGISTRY)


def run_invariant(name: str, description: str):
    """Register a run-scope checker under ``name``."""

    def decorate(check: Callable[[RunContext], None]):
        if name in _RUN_REGISTRY:
            raise ValueError(f"duplicate run invariant {name!r}")
        _RUN_REGISTRY[name] = Invariant(
            name=name, scope="run", description=description, check=check
        )
        return check

    return decorate


def schedule_invariant(name: str, description: str):
    """Register a schedule-scope checker under ``name``."""

    def decorate(check: Callable[[ScheduleContext], None]):
        if name in _SCHEDULE_REGISTRY:
            raise ValueError(f"duplicate schedule invariant {name!r}")
        _SCHEDULE_REGISTRY[name] = Invariant(
            name=name, scope="schedule", description=description, check=check
        )
        return check

    return decorate


# ---------------------------------------------------------------------------
# run-scope invariants
# ---------------------------------------------------------------------------


@run_invariant(
    "sequential-phones",
    "a phone never overlaps two spans (the dispatch pipeline is serial)",
)
def _check_sequential_phones(ctx: RunContext) -> None:
    trace = ctx.result.trace
    for phone_id in trace.phone_ids():
        spans = sorted(trace.spans_for(phone_id), key=lambda s: s.start_ms)
        for earlier, later in zip(spans, spans[1:]):
            if later.start_ms < earlier.end_ms - TOL_MS:
                raise InvariantViolation(
                    f"phone {phone_id!r} overlaps spans: "
                    f"[{earlier.start_ms}, {earlier.end_ms}] and "
                    f"[{later.start_ms}, {later.end_ms}]"
                )


@run_invariant(
    "conservation",
    "completed + checkpointed + unfinished input equals submitted input",
)
def _check_conservation(ctx: RunContext) -> None:
    trace = ctx.result.trace
    total_input = sum(job.input_kb for job in ctx.jobs)
    completed = sum(c.input_kb for c in trace.completions)
    checkpointed = sum(f.processed_kb for f in trace.failures)
    unfinished = sum(job.input_kb for job in ctx.result.unfinished_jobs)
    accounted = completed + checkpointed + unfinished
    if abs(accounted - total_input) > max(TOL_MS, total_input * 1e-9):
        raise InvariantViolation(
            f"input not conserved: submitted {total_input:.3f} KB but "
            f"accounted {accounted:.3f} KB (completed {completed:.3f} + "
            f"checkpointed {checkpointed:.3f} + unfinished {unfinished:.3f})"
        )


@run_invariant(
    "no-duplicate-credit",
    "no job is credited more input than it submitted (exactly-once credit)",
)
def _check_no_duplicate_credit(ctx: RunContext) -> None:
    trace = ctx.result.trace
    submitted = {job.job_id: job.input_kb for job in ctx.jobs}
    credited: dict[str, float] = {}
    for completion in trace.completions:
        credited[completion.job_id] = (
            credited.get(completion.job_id, 0.0) + completion.input_kb
        )
    for job_id, kb in credited.items():
        if job_id not in submitted:
            raise InvariantViolation(
                f"completion credited unknown job {job_id!r}"
            )
        limit = submitted[job_id]
        if kb > limit + max(TOL_MS, limit * 1e-9):
            raise InvariantViolation(
                f"job {job_id!r} over-credited: {kb:.3f} KB completed "
                f"against {limit:.3f} KB submitted (duplicate credit?)"
            )


@run_invariant(
    "no-zombie-work",
    "a failed phone does no work between failure detection and rejoin",
)
def _check_no_zombie_work(ctx: RunContext) -> None:
    # A phone may legitimately work again after a failure if it rejoined;
    # rejoin instants are recorded in the trace.  Two things must never
    # happen: a span *in flight* across the detection instant that is not
    # marked interrupted, and a span *starting* inside the dark window
    # between a detected failure and the phone's next rejoin.
    trace = ctx.result.trace
    for failure in trace.failures:
        rejoins = trace.rejoin_times_for(failure.phone_id)
        next_rejoin = min(
            (t for t in rejoins if t >= failure.detected_at_ms - TOL_MS),
            default=None,
        )
        for span in trace.spans_for(failure.phone_id):
            crosses = (
                span.start_ms < failure.detected_at_ms - TOL_MS
                and span.end_ms > failure.detected_at_ms + TOL_MS
            )
            if crosses and not span.interrupted:
                raise InvariantViolation(
                    f"phone {failure.phone_id!r} has an uninterrupted span "
                    f"[{span.start_ms}, {span.end_ms}] crossing its failure "
                    f"detection at {failure.detected_at_ms}"
                )
            starts_dark = span.start_ms > failure.detected_at_ms + TOL_MS and (
                next_rejoin is None or span.start_ms < next_rejoin - TOL_MS
            )
            if starts_dark:
                raise InvariantViolation(
                    f"phone {failure.phone_id!r} started a span at "
                    f"{span.start_ms} while dark (failed at "
                    f"{failure.detected_at_ms}, "
                    + (
                        "never rejoined)"
                        if next_rejoin is None
                        else f"rejoined at {next_rejoin})"
                    )
                )


@run_invariant(
    "copy-before-execute",
    "every execution on a phone is preceded by a copy of the same job",
)
def _check_copy_before_execute(ctx: RunContext) -> None:
    from ..sim.trace import SpanKind

    trace = ctx.result.trace
    for phone_id in trace.phone_ids():
        spans = sorted(trace.spans_for(phone_id), key=lambda s: s.start_ms)
        copied_jobs: set[str] = set()
        for span in spans:
            if span.kind is SpanKind.COPY:
                copied_jobs.add(span.job_id)
            elif span.job_id not in copied_jobs:
                raise InvariantViolation(
                    f"phone {phone_id!r} executed job {span.job_id!r} at "
                    f"{span.start_ms} without ever copying it"
                )


@run_invariant(
    "makespan-consistency",
    "reported makespan equals the last span end and bounds every completion",
)
def _check_makespan_consistency(ctx: RunContext) -> None:
    trace = ctx.result.trace
    last_span_end = max((s.end_ms for s in trace.spans), default=0.0)
    reported = ctx.result.measured_makespan_ms
    if abs(reported - last_span_end) > TOL_MS:
        raise InvariantViolation(
            f"reported makespan {reported} ms does not equal the last "
            f"span end {last_span_end} ms"
        )
    for span in trace.spans:
        if span.start_ms < -TOL_MS:
            raise InvariantViolation(
                f"span on phone {span.phone_id!r} starts before t=0 "
                f"({span.start_ms} ms)"
            )
    for completion in trace.completions:
        if completion.time_ms > last_span_end + TOL_MS:
            raise InvariantViolation(
                f"job {completion.job_id!r} completed at "
                f"{completion.time_ms} ms, after the makespan "
                f"{last_span_end} ms"
            )


@run_invariant(
    "telemetry-agreement",
    "metrics rebuilt from the event stream match metrics from the trace",
)
def _check_telemetry_agreement(ctx: RunContext) -> None:
    if ctx.events is None:
        return
    from ..obs.report import run_metrics_from_events
    from ..sim.metrics import compute_run_metrics

    from_trace = compute_run_metrics(ctx.result.trace)
    from_events = run_metrics_from_events(ctx.events)
    if from_events != from_trace:
        raise InvariantViolation(
            "telemetry/trace disagreement: metrics rebuilt from the event "
            f"stream (makespan {from_events.makespan_ms} ms, "
            f"{len(from_events.phones)} phones) differ from metrics "
            f"computed on the trace (makespan {from_trace.makespan_ms} ms, "
            f"{len(from_trace.phones)} phones)"
        )


# ---------------------------------------------------------------------------
# schedule-scope invariants
# ---------------------------------------------------------------------------


@schedule_invariant(
    "coverage",
    "every job's input is fully assigned; atomic jobs stay whole",
)
def _check_coverage(ctx: ScheduleContext) -> None:
    from ..core.schedule import InfeasibleScheduleError

    try:
        ctx.schedule.validate(ctx.instance)
    except InfeasibleScheduleError as exc:
        raise InvariantViolation(f"schedule invalid: {exc}") from exc


@schedule_invariant(
    "capacity-soundness",
    "no phone's predicted finish exceeds the converged capacity",
)
def _check_capacity_soundness(ctx: ScheduleContext) -> None:
    if ctx.capacity_ms is None or ctx.capacity_ms <= 0:
        return
    budget = ctx.capacity_ms + max(TOL_MS, ctx.capacity_ms * 1e-9)
    for phone in ctx.instance.phones:
        finish = ctx.schedule.predicted_finish_ms(ctx.instance, phone.phone_id)
        if finish > budget:
            raise InvariantViolation(
                f"phone {phone.phone_id!r} is predicted to finish at "
                f"{finish:.6f} ms, above the converged capacity "
                f"{ctx.capacity_ms:.6f} ms"
            )


@schedule_invariant(
    "makespan-prediction",
    "the recorded predicted makespan matches a recomputation from costs",
)
def _check_makespan_prediction(ctx: ScheduleContext) -> None:
    if ctx.predicted_makespan_ms is None:
        return
    recomputed = ctx.schedule.predicted_makespan_ms(ctx.instance)
    tol = max(TOL_MS, abs(recomputed) * 1e-9)
    if abs(recomputed - ctx.predicted_makespan_ms) > tol:
        raise InvariantViolation(
            f"recorded predicted makespan {ctx.predicted_makespan_ms} ms "
            f"does not match the recomputed {recomputed} ms"
        )


@schedule_invariant(
    "lp-sandwich",
    "lp lower bound <= predicted makespan <= greedy upper bound",
)
def _check_lp_sandwich(ctx: ScheduleContext) -> None:
    makespan = ctx.schedule.predicted_makespan_ms(ctx.instance)
    if ctx.lower_bound_ms is not None:
        tol = max(TOL_MS, abs(makespan) * 1e-6)
        if makespan < ctx.lower_bound_ms - tol:
            raise InvariantViolation(
                f"predicted makespan {makespan:.6f} ms undercuts the LP "
                f"lower bound {ctx.lower_bound_ms:.6f} ms"
            )
    if ctx.upper_bound_ms is not None:
        tol = max(TOL_MS, abs(ctx.upper_bound_ms) * 1e-9)
        if makespan > ctx.upper_bound_ms + tol:
            raise InvariantViolation(
                f"predicted makespan {makespan:.6f} ms exceeds the greedy "
                f"upper bound {ctx.upper_bound_ms:.6f} ms"
            )
