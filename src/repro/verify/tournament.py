"""Monte Carlo policy tournaments: policies race on shared chaos.

The pluggable-policy layer (:mod:`repro.core.policies`) makes "which
scheduler should the fleet run tonight?" an empirical question.  This
module answers it the FoundationDB way: every competitor runs the
*same* seeded scenarios under the *same* chaos plans (paired
comparison — variance between policies is policy variance, not
scenario luck), the full invariant oracle is armed on every leg, and
the whole tournament folds into one sha256 digest so a rerun from the
same seed must reproduce it byte for byte.

A tournament is ``policies x regimes x scenarios``.  Scenarios come
from the fuzzer grammar (:func:`~repro.verify.fuzz.generate_scenario`);
each :class:`ChaosRegime` then overwrites the scenario's chaos with a
plan sampled from its own :class:`~repro.sim.chaos.ChaosMonkey`
profile, so the regimes span conditions the fuzzer's single mixed
profile would blur together (a calm fleet vs. heavy churn).  Per leg
the harness scores

* **makespan_ms** — measured finish time of the whole workload,
* **energy_j** — fleet joules via the policy layer's own electrical
  model (:func:`~repro.core.policies.run_energy_joules`), and
* **recovery_ms** — mean failure-detection latency (server keep-alive
  reaction time), 0 when the regime injected no detectable failure,

and the scoreboard reports per-(policy, regime) means with bootstrap
confidence bands.  A policy *wins* a (regime, metric) cell when its
mean is lowest; the win is *significant* when its band does not
overlap the default policy's band.

Artifacts (``tournament-<seed>.json``) carry the full config, every
leg, the scoreboard, and the digest; :func:`replay_tournament` reruns
the config and flags any divergence — the CLI turns that into exit
code 2.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..core.policies import DEFAULT_POLICY, POLICY_NAMES, run_energy_joules
from ..sim.chaos import ChaosMonkey
from .fuzz import (
    Scenario,
    build_scenario_server,
    derive_seeds,
    generate_scenario,
    scenario_workload,
)
from .invariants import Violation
from .oracle import Oracle

__all__ = [
    "TOURNAMENT_FORMAT",
    "REGIMES",
    "ChaosRegime",
    "TournamentLeg",
    "PolicyCell",
    "TournamentReport",
    "TournamentReplayResult",
    "bootstrap_ci",
    "run_leg",
    "run_tournament",
    "write_tournament_artifact",
    "replay_tournament",
]

#: Version stamp of the ``tournament-<seed>.json`` artifact layout.
TOURNAMENT_FORMAT = 1

#: Metrics scored per leg, in scoreboard order (all lower-is-better).
METRICS = ("makespan_ms", "energy_j", "recovery_ms")


@dataclass(frozen=True)
class ChaosRegime:
    """A named chaos intensity: ChaosMonkey rates plus a fault window.

    ``monkey`` holds :class:`~repro.sim.chaos.ChaosMonkey` constructor
    kwargs verbatim so a regime serialises to JSON and replays exactly.
    """

    name: str
    description: str
    monkey: Mapping[str, object] = field(default_factory=dict)
    duration_ms: float = 240_000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("regime name must be non-empty")
        if self.duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be > 0, got {self.duration_ms!r}"
            )
        # Fail fast on bad rates instead of at the first sampled leg.
        ChaosMonkey(**dict(self.monkey))

    def sample_plan(self, phone_ids: Sequence[str], rng: random.Random):
        """One chaos plan for a fleet (list conversion keeps rng use fixed)."""
        monkey = ChaosMonkey(**dict(self.monkey))
        return monkey.sample_plan(
            list(phone_ids), duration_ms=self.duration_ms, rng=rng
        )


#: The stock regimes: a mostly-healthy night and a hostile one.  The
#: churn profile is deliberately flap-heavy — that is the condition
#: replication-style policies claim to win.
REGIMES: dict[str, ChaosRegime] = {
    "calm": ChaosRegime(
        name="calm",
        description="mostly-healthy fleet: rare slowdowns, no churn",
        monkey={
            "flap_probability": 0.05,
            "max_flap_cycles": 1,
            "flap_down_range_ms": (5_000.0, 30_000.0),
            "flap_up_range_ms": (5_000.0, 30_000.0),
            "straggler_probability": 0.1,
            "straggler_factor_range": (2.0, 3.0),
            "bandwidth_probability": 0.05,
            "bandwidth_factor_range": (2.0, 4.0),
            "crash_rate": 0.05,
            "corruption_rate": 0.0,
            "online_fraction": 1.0,
        },
        duration_ms=240_000.0,
    ),
    "churn": ChaosRegime(
        name="churn",
        description="hostile night: heavy flapping, crashes, stragglers",
        monkey={
            "flap_probability": 0.65,
            "max_flap_cycles": 3,
            "flap_down_range_ms": (20_000.0, 180_000.0),
            "flap_up_range_ms": (10_000.0, 90_000.0),
            "straggler_probability": 0.35,
            "straggler_factor_range": (3.0, 8.0),
            "bandwidth_probability": 0.2,
            "bandwidth_factor_range": (2.0, 6.0),
            "crash_rate": 0.5,
            "corruption_rate": 0.0,
            "online_fraction": 0.6,
        },
        duration_ms=300_000.0,
    ),
}


def bootstrap_ci(
    values: Sequence[float],
    *,
    rng: random.Random,
    resamples: int = 200,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile bootstrap band for the mean of ``values``.

    Deterministic given the rng, so bands enter the digest safely.
    Degenerate samples (0 or 1 value) collapse to a zero-width band.
    """
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples!r}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha!r}")
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        return (values[0], values[0])
    means = sorted(
        sum(rng.choice(values) for _ in values) / len(values)
        for _ in range(resamples)
    )
    lo_index = int(math.floor(alpha / 2.0 * (resamples - 1)))
    hi_index = int(math.ceil((1.0 - alpha / 2.0) * (resamples - 1)))
    return (means[lo_index], means[hi_index])


@dataclass(frozen=True)
class TournamentLeg:
    """One policy's run of one scenario under one regime."""

    policy: str
    regime: str
    scenario_seed: int
    scenario_digest: str
    makespan_ms: float
    energy_j: float
    recovery_ms: float
    violations: tuple[str, ...]
    error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def digest_line(self) -> str:
        """The leg's contribution to the tournament digest."""
        return (
            f"{self.policy}:{self.regime}:{self.scenario_digest}:"
            f"{self.makespan_ms!r}:{self.energy_j!r}:"
            f"{self.recovery_ms!r}:{len(self.violations)}\n"
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "regime": self.regime,
            "scenario_seed": self.scenario_seed,
            "scenario_digest": self.scenario_digest,
            "makespan_ms": self.makespan_ms,
            "energy_j": self.energy_j,
            "recovery_ms": self.recovery_ms,
            "violations": list(self.violations),
            "error": self.error,
        }


@dataclass(frozen=True)
class PolicyCell:
    """Aggregated scoreboard cell: one policy under one regime.

    ``stats`` carries raw per-metric means with bootstrap bands.
    ``vs_default`` carries the *paired* per-scenario ratio against the
    default policy (same scenarios, same chaos — the ratio cancels
    scenario luck), which is what significance judgements use; it is
    empty for the default policy itself and skips legs where the
    default's metric is zero.
    """

    policy: str
    regime: str
    legs: int
    #: metric -> (mean, ci_low, ci_high) over raw per-leg values
    stats: Mapping[str, tuple[float, float, float]]
    #: metric -> (ratio mean, ci_low, ci_high) vs the default policy
    vs_default: Mapping[str, tuple[float, float, float]] = field(
        default_factory=dict
    )

    def mean(self, metric: str) -> float:
        return self.stats[metric][0]

    def band(self, metric: str) -> tuple[float, float]:
        _, lo, hi = self.stats[metric]
        return (lo, hi)

    def ratio_band(self, metric: str) -> tuple[float, float] | None:
        if metric not in self.vs_default:
            return None
        _, lo, hi = self.vs_default[metric]
        return (lo, hi)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "regime": self.regime,
            "legs": self.legs,
            "stats": {
                metric: {
                    "mean": mean,
                    "ci_low": lo,
                    "ci_high": hi,
                }
                for metric, (mean, lo, hi) in sorted(self.stats.items())
            },
            "vs_default": {
                metric: {
                    "mean": mean,
                    "ci_low": lo,
                    "ci_high": hi,
                }
                for metric, (mean, lo, hi) in sorted(
                    self.vs_default.items()
                )
            },
        }


@dataclass(frozen=True)
class TournamentReport:
    """A finished tournament: every leg, the scoreboard, the digest."""

    seed: int
    runs: int
    policies: tuple[str, ...]
    regimes: tuple[str, ...]
    legs: tuple[TournamentLeg, ...]
    cells: tuple[PolicyCell, ...]
    #: regime -> metric -> {"policy", "significant"}
    winners: Mapping[str, Mapping[str, Mapping[str, object]]]
    digest: str
    #: The full regime specs the tournament actually ran (artifacts
    #: serialise these, so replays survive stock-regime retuning).
    regime_specs: tuple[ChaosRegime, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every leg passed the oracle cleanly."""
        return all(leg.ok for leg in self.legs)

    @property
    def violation_count(self) -> int:
        return sum(len(leg.violations) for leg in self.legs)

    def cell(self, policy: str, regime: str) -> PolicyCell:
        for cell in self.cells:
            if cell.policy == policy and cell.regime == regime:
                return cell
        raise KeyError(f"no cell for policy={policy!r} regime={regime!r}")

    def summary_lines(self) -> list[str]:
        """Human-readable scoreboard (what the CLI prints)."""
        lines = [
            f"tournament: seed={self.seed} runs={self.runs} "
            f"policies={len(self.policies)} regimes={len(self.regimes)} "
            f"legs={len(self.legs)} violations={self.violation_count}"
        ]
        for regime in self.regimes:
            lines.append(f"  regime {regime}:")
            for metric in METRICS:
                ranked = sorted(
                    (c for c in self.cells if c.regime == regime),
                    key=lambda c: c.mean(metric),
                )
                verdict = self.winners[regime][metric]
                mark = "**" if verdict["significant"] else ""

                def _cell_text(cell: PolicyCell) -> str:
                    text = (
                        f"{cell.policy}={cell.mean(metric):.1f}"
                        f"[{cell.band(metric)[0]:.1f},"
                        f"{cell.band(metric)[1]:.1f}]"
                    )
                    band = cell.ratio_band(metric)
                    if band is not None:
                        ratio = cell.vs_default[metric][0]
                        text += (
                            f"(x{ratio:.2f}[{band[0]:.2f},{band[1]:.2f}])"
                        )
                    return text

                lines.append(
                    f"    {metric:<12}: "
                    + "  ".join(_cell_text(c) for c in ranked)
                    + f"  -> {verdict['policy']}{mark}"
                )
        lines.append(f"  digest: {self.digest}")
        return lines


def _leg_metrics(result, scenario: Scenario) -> tuple[float, float, float]:
    """(makespan_ms, energy_j, recovery_ms) for one finished run."""
    trace = result.trace
    makespan = result.measured_makespan_ms
    energy = run_energy_joules(trace, scenario.phones)
    latencies = [
        record.detected_at_ms - record.failed_at_ms
        for record in trace.failures
    ]
    recovery = sum(latencies) / len(latencies) if latencies else 0.0
    return makespan, energy, recovery


def run_leg(scenario: Scenario, *, arm_telemetry: bool = True) -> TournamentLeg:
    """Run one scenario, oracle armed, and score the three metrics.

    Simulator crashes are findings, not tooling failures: they surface
    as a synthetic ``no-crash`` violation, mirroring the fuzzer.
    """
    telemetry = None
    if arm_telemetry:
        from ..obs.telemetry import Telemetry

        telemetry = Telemetry.create(
            run_id=f"tournament-{scenario.policy}-{scenario.seed}",
            tracing=True,
        )
    initial, arrivals = scenario_workload(scenario)
    try:
        server = build_scenario_server(
            scenario, telemetry=telemetry, record_instances=True
        )
        result = server.run(initial, arrivals=arrivals)
    except Exception as exc:  # noqa: BLE001 - crashes are findings
        return TournamentLeg(
            policy=scenario.policy,
            regime="",
            scenario_seed=scenario.seed,
            scenario_digest=scenario.digest(),
            makespan_ms=0.0,
            energy_j=0.0,
            recovery_ms=0.0,
            violations=("no-crash",),
            error=f"{type(exc).__name__}: {exc}",
        )
    oracle = Oracle()
    events = telemetry.bus.events if telemetry is not None else None
    spans = telemetry.tracer.spans if telemetry is not None else None
    violations: list[Violation] = list(
        oracle.check_run(
            result, scenario.jobs, events=events, spans=spans, collect=True
        )
    )
    violations.extend(oracle.check_rounds(result, collect=True))
    makespan, energy, recovery = _leg_metrics(result, scenario)
    return TournamentLeg(
        policy=scenario.policy,
        regime="",
        scenario_seed=scenario.seed,
        scenario_digest=scenario.digest(),
        makespan_ms=makespan,
        energy_j=energy,
        recovery_ms=recovery,
        violations=tuple(v.invariant for v in violations),
    )


def _resolve_regimes(
    regimes: Sequence[str | ChaosRegime],
) -> tuple[ChaosRegime, ...]:
    resolved = []
    for regime in regimes:
        if isinstance(regime, ChaosRegime):
            resolved.append(regime)
        elif regime in REGIMES:
            resolved.append(REGIMES[regime])
        else:
            raise ValueError(
                f"unknown chaos regime {regime!r}; known regimes: "
                f"{', '.join(sorted(REGIMES))}"
            )
    if not resolved:
        raise ValueError("tournament needs at least one regime")
    names = [regime.name for regime in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate regime names: {names}")
    return tuple(resolved)


def _check_policies(policies: Sequence[str]) -> tuple[str, ...]:
    if not policies:
        raise ValueError("tournament needs at least one policy")
    for policy in policies:
        if policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {policy!r}; known policies: "
                f"{', '.join(POLICY_NAMES)}"
            )
    if len(set(policies)) != len(policies):
        raise ValueError(f"duplicate policies: {list(policies)}")
    return tuple(policies)


def _score(
    legs: Sequence[TournamentLeg],
    policies: Sequence[str],
    regimes: Sequence[str],
) -> tuple[tuple[PolicyCell, ...], dict]:
    # Pair up legs: same (regime, scenario) across policies.
    default_by_key: dict[tuple[str, int], TournamentLeg] = {
        (leg.regime, leg.scenario_seed): leg
        for leg in legs
        if leg.policy == DEFAULT_POLICY
    }
    cells: list[PolicyCell] = []
    for regime in regimes:
        for policy in policies:
            sample = [
                leg
                for leg in legs
                if leg.policy == policy and leg.regime == regime
            ]
            stats = {}
            vs_default = {}
            for metric in METRICS:
                values = [getattr(leg, metric) for leg in sample]
                mean = sum(values) / len(values) if values else 0.0
                rng = random.Random(f"bootstrap:{policy}:{regime}:{metric}")
                lo, hi = bootstrap_ci(values, rng=rng)
                stats[metric] = (mean, lo, hi)
                if policy == DEFAULT_POLICY:
                    continue
                ratios = []
                for leg in sample:
                    base = default_by_key.get(
                        (leg.regime, leg.scenario_seed)
                    )
                    if base is None:
                        continue
                    base_value = getattr(base, metric)
                    if base_value > 0:
                        ratios.append(getattr(leg, metric) / base_value)
                if ratios:
                    ratio_rng = random.Random(
                        f"paired:{policy}:{regime}:{metric}"
                    )
                    ratio_lo, ratio_hi = bootstrap_ci(ratios, rng=ratio_rng)
                    vs_default[metric] = (
                        sum(ratios) / len(ratios),
                        ratio_lo,
                        ratio_hi,
                    )
            cells.append(
                PolicyCell(
                    policy=policy,
                    regime=regime,
                    legs=len(sample),
                    stats=stats,
                    vs_default=vs_default,
                )
            )
    winners: dict[str, dict[str, dict[str, object]]] = {}
    for regime in regimes:
        winners[regime] = {}
        regime_cells = [cell for cell in cells if cell.regime == regime]
        for metric in METRICS:
            best = min(regime_cells, key=lambda c: c.mean(metric))
            # A non-default win is significant when the whole paired
            # confidence band sits below ratio 1.0 — the policy beat
            # the default on the same scenarios, not on easier ones.
            significant = False
            band = best.ratio_band(metric)
            if best.policy != DEFAULT_POLICY and band is not None:
                significant = band[1] < 1.0
            winners[regime][metric] = {
                "policy": best.policy,
                "significant": significant,
            }
    return tuple(cells), winners


def run_tournament(
    runs: int,
    *,
    policies: Sequence[str] = POLICY_NAMES,
    regimes: Sequence[str | ChaosRegime] = ("calm", "churn"),
    seed: int = 0,
    progress: Callable[[int, TournamentLeg], None] | None = None,
) -> TournamentReport:
    """Race ``policies`` over ``runs`` scenarios per regime.

    Per (regime, scenario) every policy sees the *identical* fuzzed
    scenario and the *identical* regime-sampled chaos plan — the only
    free variable on a leg is the policy, so the scoreboard compares
    like with like.  Legs are hardened (speculation armed) so the
    default policy's reactive backups genuinely compete with the
    replication policy's proactive ones; result verification stays off
    to keep duplicate executions out of the energy bill.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs!r}")
    policy_names = _check_policies(policies)
    regime_objs = _resolve_regimes(regimes)
    hasher = hashlib.sha256()
    legs: list[TournamentLeg] = []
    index = 0
    for regime in regime_objs:
        for scenario_seed in derive_seeds(seed, runs):
            base = generate_scenario(scenario_seed)
            # String-seeded Random is stable across processes (unlike
            # hash()), so the plan replays byte-for-byte.
            plan_rng = random.Random(
                f"tournament:{seed}:{regime.name}:{scenario_seed}"
            )
            plan = regime.sample_plan(
                [phone.phone_id for phone in base.phones], plan_rng
            )
            for policy in policy_names:
                scenario = dataclasses.replace(
                    base,
                    chaos=plan,
                    hardened=True,
                    verify_results=False,
                    policy=policy,
                )
                leg = dataclasses.replace(
                    run_leg(scenario), regime=regime.name
                )
                legs.append(leg)
                hasher.update(leg.digest_line().encode())
                if progress is not None:
                    progress(index, leg)
                index += 1
    cells, winners = _score(
        legs, policy_names, [regime.name for regime in regime_objs]
    )
    return TournamentReport(
        seed=seed,
        runs=runs,
        policies=policy_names,
        regimes=tuple(regime.name for regime in regime_objs),
        legs=tuple(legs),
        cells=cells,
        winners=winners,
        digest=hasher.hexdigest(),
        regime_specs=regime_objs,
    )


# ---------------------------------------------------------------------------
# artifacts and replay
# ---------------------------------------------------------------------------


def write_tournament_artifact(
    report: TournamentReport, directory: str | Path
) -> Path:
    """Write ``tournament-<seed>.json``; returns the artifact path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"tournament-{report.seed}.json"
    payload = {
        "format": TOURNAMENT_FORMAT,
        "seed": report.seed,
        "runs": report.runs,
        "policies": list(report.policies),
        "regimes": [
            {
                "name": regime.name,
                "description": regime.description,
                "monkey": {
                    key: list(value) if isinstance(value, tuple) else value
                    for key, value in regime.monkey.items()
                },
                "duration_ms": regime.duration_ms,
            }
            for regime in report.regime_specs
        ],
        "digest": report.digest,
        "violations": report.violation_count,
        "legs": [leg.to_dict() for leg in report.legs],
        "cells": [cell.to_dict() for cell in report.cells],
        "winners": {
            regime: {
                metric: dict(verdict)
                for metric, verdict in metrics.items()
            }
            for regime, metrics in report.winners.items()
        },
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class TournamentReplayResult:
    """Outcome of re-running a saved tournament artifact."""

    report: TournamentReport
    recorded_digest: str
    digest_matches: bool


def replay_tournament(
    path: str | Path,
    *,
    progress: Callable[[int, TournamentLeg], None] | None = None,
) -> TournamentReplayResult:
    """Re-run a ``tournament-<seed>.json`` artifact's exact config.

    Regimes are rebuilt from the serialised monkey rates (not the
    stock :data:`REGIMES` table), so artifacts survive future regime
    retuning.  ``digest_matches`` is the determinism verdict.
    """
    with Path(path).open(encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != TOURNAMENT_FORMAT:
        raise ValueError(
            f"unsupported tournament artifact format "
            f"{payload.get('format')!r} (expected {TOURNAMENT_FORMAT})"
        )
    regimes = []
    for spec in payload["regimes"]:
        if "monkey" not in spec:
            raise ValueError(
                f"artifact regime {spec.get('name')!r} carries no monkey "
                "rates; cannot replay"
            )
        regimes.append(
            ChaosRegime(
                name=str(spec["name"]),
                description=str(spec.get("description", "")),
                monkey={
                    key: tuple(value) if isinstance(value, list) else value
                    for key, value in spec["monkey"].items()
                },
                duration_ms=float(spec["duration_ms"]),
            )
        )
    report = run_tournament(
        int(payload["runs"]),
        policies=tuple(str(p) for p in payload["policies"]),
        regimes=regimes,
        seed=int(payload["seed"]),
        progress=progress,
    )
    return TournamentReplayResult(
        report=report,
        recorded_digest=str(payload["digest"]),
        digest_matches=report.digest == str(payload["digest"]),
    )
