"""Differential execution: three kernels, warm and cold, one schedule.

PR 2/3 froze the capacity search's bisection grid so the incremental
python packer and the vectorized numpy packer produce byte-identical
schedules to the pre-optimisation reference.  This module turns that
guarantee into a reusable runner: feed it any
:class:`~repro.core.instance.SchedulingInstance` and it

1. runs :class:`~repro.core._reference.ReferenceCapacitySearch` (the
   frozen original), then :class:`~repro.core.capacity.CapacitySearch`
   under ``kernel='python'`` and ``kernel='numpy'``, each cold and then
   warm-started from its own converged capacity — and, with
   ``batched=True``, each of those again through the speculative
   probe-worker pool (batched multi-candidate probing over shared
   memory), which must replay the identical bisection trajectory;
2. asserts every leg's schedule serialises to byte-identical JSON and
   converges to the same capacity;
3. sandwiches the predicted makespan between the LP relaxation's lower
   bound and the greedy single-phone upper bound
   (``lp <= makespan <= greedy_bound``).

Any disagreement raises :class:`DifferentialMismatchError` naming the
offending leg — the smallest possible repro for a kernel divergence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..core._reference import ReferenceCapacitySearch
from ..core.capacity import CapacitySearch, capacity_bounds
from ..core.instance import SchedulingInstance
from ..core.serialize import schedule_to_dict
from ..verify.invariants import TOL_MS

__all__ = [
    "DifferentialMismatchError",
    "DifferentialReport",
    "ShardedDifferentialReport",
    "differential_check",
    "run_differential_campaign",
    "run_sharded_campaign",
    "sharded_differential_check",
]

#: Explicit kernels the optimised search is checked under ("auto" would
#: just resolve to one of these two).
KERNELS = ("python", "numpy")

#: Auto mode runs the LP only below this (phones x jobs) cell count —
#: HiGHS on huge fuzzed instances would dominate the campaign's runtime.
_LP_AUTO_CELL_LIMIT = 4_096


class DifferentialMismatchError(AssertionError):
    """Two search legs disagreed on a schedule, capacity, or bound."""


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential check (all legs agreed)."""

    legs: tuple[str, ...]
    capacity_ms: float
    makespan_ms: float
    schedule_digest: str
    lp_bound_ms: float | None
    greedy_bound_ms: float
    lp_checked: bool


def _schedule_bytes(schedule) -> bytes:
    """Canonical byte serialisation for byte-identical comparison."""
    return json.dumps(
        schedule_to_dict(schedule), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def differential_check(
    instance: SchedulingInstance,
    *,
    epsilon_ms: float = 1.0,
    max_iterations: int = 60,
    lp: bool | None = None,
    batched: bool = False,
    batch_width: int | str = 4,
    probe_workers: int = 2,
) -> DifferentialReport:
    """Run one instance through every search leg and compare.

    ``lp=None`` (auto) solves the LP relaxation only for instances small
    enough that HiGHS stays cheap; ``lp=True``/``False`` forces it.
    ``batched=True`` adds, per kernel, a cold and a warm leg through the
    speculative probe pool (``probe_workers`` processes, ``batch_width``
    candidates in flight) — the batched search must reproduce the
    serial trajectory byte for byte.  Off by default: each batched leg
    forks a worker pool, which would dominate a large fuzz campaign.
    Raises :class:`DifferentialMismatchError` on any disagreement.
    """
    reference = ReferenceCapacitySearch(
        epsilon_ms=epsilon_ms, max_iterations=max_iterations
    ).run(instance)
    baseline = _schedule_bytes(reference.schedule)

    def check(label, result):
        if _schedule_bytes(result.schedule) != baseline:
            raise DifferentialMismatchError(
                f"leg {label!r} produced a schedule that is not "
                "byte-identical to the reference search's"
            )
        if abs(result.capacity_ms - reference.capacity_ms) > TOL_MS:
            raise DifferentialMismatchError(
                f"leg {label!r} converged to capacity "
                f"{result.capacity_ms} ms, reference found "
                f"{reference.capacity_ms} ms"
            )
        legs.append(label)

    legs = ["reference"]
    variants = [("", {})]
    if batched:
        variants.append(
            (
                "batched-",
                {"probe_workers": probe_workers, "batch_width": batch_width},
            )
        )
    for kernel in KERNELS:
        for prefix, extra in variants:
            cold = CapacitySearch(
                epsilon_ms=epsilon_ms,
                max_iterations=max_iterations,
                kernel=kernel,
                **extra,
            ).run(instance)
            warm = CapacitySearch(
                epsilon_ms=epsilon_ms,
                max_iterations=max_iterations,
                kernel=kernel,
                **extra,
            ).run(instance, warm_hint_ms=cold.capacity_ms)
            check(f"{kernel}-{prefix}cold", cold)
            check(f"{kernel}-{prefix}warm", warm)

    makespan = reference.schedule.predicted_makespan_ms(instance)
    _, greedy_bound = capacity_bounds(instance)
    if makespan > greedy_bound + max(TOL_MS, greedy_bound * 1e-9):
        raise DifferentialMismatchError(
            f"predicted makespan {makespan:.6f} ms exceeds the greedy "
            f"upper bound {greedy_bound:.6f} ms"
        )

    lp_bound = None
    cells = len(instance.phones) * len(instance.jobs)
    run_lp = lp if lp is not None else cells <= _LP_AUTO_CELL_LIMIT
    if run_lp:
        from ..core.lp_bound import solve_relaxed_makespan

        lp_bound = solve_relaxed_makespan(instance).makespan_ms
        # The LP is a relaxation: equal makespans are legitimate, small
        # float noise in HiGHS is not a kernel bug.
        if makespan < lp_bound - max(TOL_MS, abs(makespan) * 1e-6):
            raise DifferentialMismatchError(
                f"predicted makespan {makespan:.6f} ms undercuts the LP "
                f"lower bound {lp_bound:.6f} ms"
            )

    return DifferentialReport(
        legs=tuple(legs),
        capacity_ms=reference.capacity_ms,
        makespan_ms=makespan,
        schedule_digest=hashlib.sha256(baseline).hexdigest(),
        lp_bound_ms=lp_bound,
        greedy_bound_ms=greedy_bound,
        lp_checked=bool(run_lp),
    )


@dataclass(frozen=True)
class ShardedDifferentialReport:
    """Outcome of one sharded differential check (all legs agreed)."""

    pod_assign: str
    legs: tuple[str, ...]
    monolithic_makespan_ms: float
    schedule_digest: str
    #: ``(requested_pods, effective_pods, makespan_ms)`` per multi-pod leg.
    pod_makespans: tuple[tuple[int, int, float], ...]
    #: ``(requested_pods, shard_bound_ratio)`` where the pod LP certified.
    bound_ratios: tuple[tuple[int, float], ...]


def sharded_differential_check(
    instance: SchedulingInstance,
    *,
    pod_counts: tuple[int, ...] = (1, 2, 4),
    pod_assign: str = "greedy",
    epsilon_ms: float = 1.0,
    max_iterations: int = 60,
    bound_factor: float = 2.0,
) -> ShardedDifferentialReport:
    """Cross-check the sharded scheduler against the monolithic one.

    Per packing kernel this runs the monolithic
    :class:`~repro.core.greedy.CwcScheduler` plus one
    :class:`~repro.core.sharding.ShardedScheduler` leg per entry of
    ``pod_counts``, then asserts:

    * ``pods=1`` serialises byte-identically to the monolithic schedule
      (sharding with one pod is pure delegation, not an approximation);
    * every multi-pod schedule validates against the instance and both
      kernels produce byte-identical sharded schedules;
    * the sharded makespan respects the LP sandwich: at least the
      pod-aggregated LP floor (pods-as-super-machines relaxation, a
      certified lower bound on the *optimal* makespan) and at most
      ``bound_factor`` times the monolithic makespan.

    Raises :class:`DifferentialMismatchError` on any disagreement.
    """
    from ..core.greedy import CwcScheduler
    from ..core.sharding import ShardedScheduler

    legs: list[str] = []
    mono_bytes: bytes | None = None
    mono_makespan = 0.0
    sharded_bytes: dict[int, bytes] = {}
    pod_makespans: dict[int, tuple[int, float]] = {}
    bound_ratios: dict[int, float] = {}

    for kernel in KERNELS:
        mono = CwcScheduler(
            epsilon_ms=epsilon_ms,
            max_iterations=max_iterations,
            kernel=kernel,
        )
        mono_schedule = mono.schedule(instance)
        payload = _schedule_bytes(mono_schedule)
        if mono_bytes is None:
            mono_bytes = payload
            mono_makespan = mono_schedule.predicted_makespan_ms(instance)
        elif payload != mono_bytes:
            raise DifferentialMismatchError(
                f"monolithic kernel {kernel!r} diverged from the first "
                "monolithic leg"
            )
        legs.append(f"mono-{kernel}")

        for requested in pod_counts:
            sharded = ShardedScheduler(
                pods=requested,
                pod_assign=pod_assign,
                pod_workers=None,
                epsilon_ms=epsilon_ms,
                max_iterations=max_iterations,
                kernel=kernel,
            )
            schedule = sharded.schedule(instance)
            payload = _schedule_bytes(schedule)
            label = f"sharded-{kernel}-pods{requested}"
            if requested == 1:
                if payload != mono_bytes:
                    raise DifferentialMismatchError(
                        f"leg {label!r} is not byte-identical to the "
                        "monolithic schedule (pods=1 must delegate)"
                    )
                legs.append(label)
                continue

            schedule.validate(instance)
            if requested in sharded_bytes:
                if payload != sharded_bytes[requested]:
                    raise DifferentialMismatchError(
                        f"leg {label!r} diverged across kernels"
                    )
            else:
                sharded_bytes[requested] = payload
            result = sharded.last_result
            makespan = schedule.predicted_makespan_ms(instance)
            slack = max(TOL_MS, mono_makespan * 1e-9)
            if makespan > bound_factor * mono_makespan + slack:
                raise DifferentialMismatchError(
                    f"leg {label!r} makespan {makespan:.6f} ms exceeds "
                    f"{bound_factor}x the monolithic makespan "
                    f"{mono_makespan:.6f} ms"
                )
            floor = result.lp_floor_ms
            if floor is not None:
                if makespan < floor - max(TOL_MS, abs(makespan) * 1e-6):
                    raise DifferentialMismatchError(
                        f"leg {label!r} makespan {makespan:.6f} ms "
                        f"undercuts the pod LP floor {floor:.6f} ms — the "
                        "super-machine relaxation is supposed to only "
                        "speed machines up"
                    )
                bound_ratios[requested] = result.shard_bound_ratio
            pod_makespans[requested] = (result.pods, makespan)
            legs.append(label)

    assert mono_bytes is not None
    return ShardedDifferentialReport(
        pod_assign=pod_assign,
        legs=tuple(legs),
        monolithic_makespan_ms=mono_makespan,
        schedule_digest=hashlib.sha256(mono_bytes).hexdigest(),
        pod_makespans=tuple(
            (requested, effective, makespan)
            for requested, (effective, makespan)
            in sorted(pod_makespans.items())
        ),
        bound_ratios=tuple(sorted(bound_ratios.items())),
    )


def run_sharded_campaign(
    count: int,
    *,
    seed: int = 0,
    pod_counts: tuple[int, ...] = (1, 2, 4),
    pod_assign: str = "greedy",
    epsilon_ms: float = 1.0,
) -> list[ShardedDifferentialReport]:
    """Sharded-differential-check ``count`` fuzzed instances."""
    from .fuzz import derive_seeds, generate_instance

    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    reports = []
    for instance_seed in derive_seeds(seed, count):
        instance = generate_instance(instance_seed)
        reports.append(
            sharded_differential_check(
                instance,
                pod_counts=pod_counts,
                pod_assign=pod_assign,
                epsilon_ms=epsilon_ms,
            )
        )
    return reports


def run_differential_campaign(
    count: int,
    *,
    seed: int = 0,
    epsilon_ms: float = 1.0,
    lp: bool | None = None,
    batched: bool = False,
) -> list[DifferentialReport]:
    """Differential-check ``count`` fuzzed instances from one seed.

    Instance generation is delegated to the scenario fuzzer so the two
    campaigns share one grammar; the per-instance seeds derive
    deterministically from ``seed``.
    """
    from .fuzz import derive_seeds, generate_instance

    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    reports = []
    for instance_seed in derive_seeds(seed, count):
        instance = generate_instance(instance_seed)
        reports.append(
            differential_check(
                instance, epsilon_ms=epsilon_ms, lp=lp, batched=batched
            )
        )
    return reports
