"""Differential execution: three kernels, warm and cold, one schedule.

PR 2/3 froze the capacity search's bisection grid so the incremental
python packer and the vectorized numpy packer produce byte-identical
schedules to the pre-optimisation reference.  This module turns that
guarantee into a reusable runner: feed it any
:class:`~repro.core.instance.SchedulingInstance` and it

1. runs :class:`~repro.core._reference.ReferenceCapacitySearch` (the
   frozen original), then :class:`~repro.core.capacity.CapacitySearch`
   under ``kernel='python'`` and ``kernel='numpy'``, each cold and then
   warm-started from its own converged capacity — and, with
   ``batched=True``, each of those again through the speculative
   probe-worker pool (batched multi-candidate probing over shared
   memory), which must replay the identical bisection trajectory;
2. asserts every leg's schedule serialises to byte-identical JSON and
   converges to the same capacity;
3. sandwiches the predicted makespan between the LP relaxation's lower
   bound and the greedy single-phone upper bound
   (``lp <= makespan <= greedy_bound``).

Any disagreement raises :class:`DifferentialMismatchError` naming the
offending leg — the smallest possible repro for a kernel divergence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..core._reference import ReferenceCapacitySearch
from ..core.capacity import CapacitySearch, capacity_bounds
from ..core.instance import SchedulingInstance
from ..core.serialize import schedule_to_dict
from ..verify.invariants import TOL_MS

__all__ = [
    "DifferentialMismatchError",
    "DifferentialReport",
    "differential_check",
    "run_differential_campaign",
]

#: Explicit kernels the optimised search is checked under ("auto" would
#: just resolve to one of these two).
KERNELS = ("python", "numpy")

#: Auto mode runs the LP only below this (phones x jobs) cell count —
#: HiGHS on huge fuzzed instances would dominate the campaign's runtime.
_LP_AUTO_CELL_LIMIT = 4_096


class DifferentialMismatchError(AssertionError):
    """Two search legs disagreed on a schedule, capacity, or bound."""


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential check (all legs agreed)."""

    legs: tuple[str, ...]
    capacity_ms: float
    makespan_ms: float
    schedule_digest: str
    lp_bound_ms: float | None
    greedy_bound_ms: float
    lp_checked: bool


def _schedule_bytes(schedule) -> bytes:
    """Canonical byte serialisation for byte-identical comparison."""
    return json.dumps(
        schedule_to_dict(schedule), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def differential_check(
    instance: SchedulingInstance,
    *,
    epsilon_ms: float = 1.0,
    max_iterations: int = 60,
    lp: bool | None = None,
    batched: bool = False,
    batch_width: int | str = 4,
    probe_workers: int = 2,
) -> DifferentialReport:
    """Run one instance through every search leg and compare.

    ``lp=None`` (auto) solves the LP relaxation only for instances small
    enough that HiGHS stays cheap; ``lp=True``/``False`` forces it.
    ``batched=True`` adds, per kernel, a cold and a warm leg through the
    speculative probe pool (``probe_workers`` processes, ``batch_width``
    candidates in flight) — the batched search must reproduce the
    serial trajectory byte for byte.  Off by default: each batched leg
    forks a worker pool, which would dominate a large fuzz campaign.
    Raises :class:`DifferentialMismatchError` on any disagreement.
    """
    reference = ReferenceCapacitySearch(
        epsilon_ms=epsilon_ms, max_iterations=max_iterations
    ).run(instance)
    baseline = _schedule_bytes(reference.schedule)

    def check(label, result):
        if _schedule_bytes(result.schedule) != baseline:
            raise DifferentialMismatchError(
                f"leg {label!r} produced a schedule that is not "
                "byte-identical to the reference search's"
            )
        if abs(result.capacity_ms - reference.capacity_ms) > TOL_MS:
            raise DifferentialMismatchError(
                f"leg {label!r} converged to capacity "
                f"{result.capacity_ms} ms, reference found "
                f"{reference.capacity_ms} ms"
            )
        legs.append(label)

    legs = ["reference"]
    variants = [("", {})]
    if batched:
        variants.append(
            (
                "batched-",
                {"probe_workers": probe_workers, "batch_width": batch_width},
            )
        )
    for kernel in KERNELS:
        for prefix, extra in variants:
            cold = CapacitySearch(
                epsilon_ms=epsilon_ms,
                max_iterations=max_iterations,
                kernel=kernel,
                **extra,
            ).run(instance)
            warm = CapacitySearch(
                epsilon_ms=epsilon_ms,
                max_iterations=max_iterations,
                kernel=kernel,
                **extra,
            ).run(instance, warm_hint_ms=cold.capacity_ms)
            check(f"{kernel}-{prefix}cold", cold)
            check(f"{kernel}-{prefix}warm", warm)

    makespan = reference.schedule.predicted_makespan_ms(instance)
    _, greedy_bound = capacity_bounds(instance)
    if makespan > greedy_bound + max(TOL_MS, greedy_bound * 1e-9):
        raise DifferentialMismatchError(
            f"predicted makespan {makespan:.6f} ms exceeds the greedy "
            f"upper bound {greedy_bound:.6f} ms"
        )

    lp_bound = None
    cells = len(instance.phones) * len(instance.jobs)
    run_lp = lp if lp is not None else cells <= _LP_AUTO_CELL_LIMIT
    if run_lp:
        from ..core.lp_bound import solve_relaxed_makespan

        lp_bound = solve_relaxed_makespan(instance).makespan_ms
        # The LP is a relaxation: equal makespans are legitimate, small
        # float noise in HiGHS is not a kernel bug.
        if makespan < lp_bound - max(TOL_MS, abs(makespan) * 1e-6):
            raise DifferentialMismatchError(
                f"predicted makespan {makespan:.6f} ms undercuts the LP "
                f"lower bound {lp_bound:.6f} ms"
            )

    return DifferentialReport(
        legs=tuple(legs),
        capacity_ms=reference.capacity_ms,
        makespan_ms=makespan,
        schedule_digest=hashlib.sha256(baseline).hexdigest(),
        lp_bound_ms=lp_bound,
        greedy_bound_ms=greedy_bound,
        lp_checked=bool(run_lp),
    )


def run_differential_campaign(
    count: int,
    *,
    seed: int = 0,
    epsilon_ms: float = 1.0,
    lp: bool | None = None,
    batched: bool = False,
) -> list[DifferentialReport]:
    """Differential-check ``count`` fuzzed instances from one seed.

    Instance generation is delegated to the scenario fuzzer so the two
    campaigns share one grammar; the per-instance seeds derive
    deterministically from ``seed``.
    """
    from .fuzz import derive_seeds, generate_instance

    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    reports = []
    for instance_seed in derive_seeds(seed, count):
        instance = generate_instance(instance_seed)
        reports.append(
            differential_check(
                instance, epsilon_ms=epsilon_ms, lp=lp, batched=batched
            )
        )
    return reports
