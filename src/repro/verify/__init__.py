"""Correctness tooling: invariant oracle, differential runner, fuzzer.

The paper's central correctness claim — every dispatched byte is
processed exactly once, despite failures, migration, speculation, and
verification (Sections 4–5) — is too easy to break silently while
evolving the scheduler hot path.  This package machine-checks it:

``repro.verify.invariants``
    A registry of named behavioural invariants over schedules and
    timeline traces (conservation of work, capacity soundness, makespan
    consistency, telemetry/trace agreement, dark-window/zombie rules).
``repro.verify.oracle``
    :class:`Oracle` applies the registry to any
    :class:`~repro.sim.server.RunResult` or
    (:class:`~repro.core.instance.SchedulingInstance`,
    :class:`~repro.core.schedule.Schedule`) pair, raising or collecting
    :class:`Violation` records.
``repro.verify.differential``
    Runs one instance through the reference, incremental-python, and
    vectorized-numpy kernels, warm and cold, asserting byte-identical
    schedules and the LP sandwich ``lp <= makespan <= greedy_bound``.
    The sharded leg additionally pins ``pods=1`` byte-identical to the
    monolithic scheduler and multi-pod makespans inside the
    pod-aggregated LP sandwich.
``repro.verify.fuzz``
    A deterministic scenario fuzzer (``repro fuzz``): one seed generates
    a random fleet, job mix, availability pattern, and chaos plan; the
    full simulation runs under the oracle; failures are minimized into
    replayable ``fuzz-<seed>.json`` artifacts.
``repro.verify.tournament``
    Monte Carlo policy-vs-policy campaigns (``repro tournament``):
    every :mod:`repro.core.policies` competitor runs the same fuzzed
    scenarios under the same chaos regimes with the oracle armed,
    scored on makespan/energy/recovery with bootstrap confidence
    bands, the whole tournament folded into one replayable digest.
"""

import importlib

from .invariants import (
    Invariant,
    InvariantViolation,
    RunContext,
    ScheduleContext,
    Violation,
    run_registry,
    schedule_registry,
)
from .oracle import Oracle

# The fuzzer and the differential runner import the scheduler and the
# simulator wholesale; loading them eagerly here would close an import
# cycle (core -> obs -> sim -> validation -> verify -> fuzz -> core).
# They resolve lazily on first attribute access instead (PEP 562).
_LAZY_EXPORTS = {
    "DifferentialMismatchError": ".differential",
    "DifferentialReport": ".differential",
    "ShardedDifferentialReport": ".differential",
    "differential_check": ".differential",
    "run_differential_campaign": ".differential",
    "run_sharded_campaign": ".differential",
    "sharded_differential_check": ".differential",
    "FuzzOutcome": ".fuzz",
    "FuzzReport": ".fuzz",
    "ReplayResult": ".fuzz",
    "Scenario": ".fuzz",
    "derive_seeds": ".fuzz",
    "generate_instance": ".fuzz",
    "generate_scenario": ".fuzz",
    "minimize_scenario": ".fuzz",
    "replay_artifact": ".fuzz",
    "run_campaign": ".fuzz",
    "run_scenario": ".fuzz",
    "write_artifact": ".fuzz",
    "ChaosRegime": ".tournament",
    "PolicyCell": ".tournament",
    "REGIMES": ".tournament",
    "TournamentLeg": ".tournament",
    "TournamentReplayResult": ".tournament",
    "TournamentReport": ".tournament",
    "replay_tournament": ".tournament",
    "run_tournament": ".tournament",
    "write_tournament_artifact": ".tournament",
}


def __getattr__(name: str):
    """Resolve the lazily-exported fuzz/differential names."""
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name, __name__), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    """Advertise lazy exports alongside the eagerly-bound names."""
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "DifferentialMismatchError",
    "DifferentialReport",
    "ShardedDifferentialReport",
    "differential_check",
    "run_differential_campaign",
    "run_sharded_campaign",
    "sharded_differential_check",
    "FuzzOutcome",
    "FuzzReport",
    "ReplayResult",
    "Scenario",
    "derive_seeds",
    "generate_instance",
    "generate_scenario",
    "minimize_scenario",
    "replay_artifact",
    "run_campaign",
    "run_scenario",
    "write_artifact",
    "ChaosRegime",
    "PolicyCell",
    "REGIMES",
    "TournamentLeg",
    "TournamentReplayResult",
    "TournamentReport",
    "replay_tournament",
    "run_tournament",
    "write_tournament_artifact",
    "Invariant",
    "InvariantViolation",
    "RunContext",
    "ScheduleContext",
    "Violation",
    "run_registry",
    "schedule_registry",
    "Oracle",
]
