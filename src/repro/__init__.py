"""CWC — Computing While Charging.

A full reproduction of *"Computing While Charging: Building a
Distributed Computing Infrastructure Using Smartphones"* (CoNEXT 2012):
the makespan scheduler (greedy complementary bin packing inside a
capacity search), the runtime predictor, failure handling and task
migration, plus every substrate the paper's evaluation depends on —
a discrete-event phone-fleet simulator, wireless link models, a
battery/charging/throttling model, the charging-behaviour study, and
the three evaluation tasks.

Sub-packages
------------
``repro.core``
    The scheduling contribution: model, predictor, greedy scheduler,
    baselines, LP lower bound, failure bookkeeping.
``repro.sim``
    Discrete-event simulation of the central server and phone fleet.
``repro.netmodel``
    Wireless link and bandwidth-measurement models.
``repro.power``
    Battery, charging, and MIMD CPU-throttling models.
``repro.runtime``
    Automated task execution: registry (reflection analogue),
    executables, sandbox, suspension/migration.
``repro.workloads``
    The paper's three tasks, input generators, fleet/workload mixes.
``repro.profiling``
    Charging-behaviour study generation and analysis; CoreMark data.
``repro.analysis``
    Statistics, energy-cost model, table rendering.
``repro.experiments``
    One driver per paper figure/table (see DESIGN.md for the index).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
