"""Per-user failure forecasting from charging profiles (Section 3.1).

The paper observes that "profiling an individual user's behavior can
allow the prediction of device specific failures.  This can help since
tasks can be migrated to phones that are less likely to fail at the
time of consideration."  This module turns the per-user hourly unplug
likelihoods of Figure 3b/3c into exactly that prediction:

* :class:`AvailabilityForecast` maps each phone to its owner's hourly
  unplug profile and answers *"what is the probability this phone stays
  plugged in through a given window?"*;
* :meth:`AvailabilityForecast.from_study` builds the forecast directly
  from state-change logs, the same pipeline the Figure 3 analysis uses.

The :class:`~repro.core.availability.AvailabilityAwareScheduler`
consumes these survival probabilities to bias work toward reliable
phones.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .analysis import hourly_unplug_likelihood
from .logs import LogRecord

__all__ = ["AvailabilityForecast"]


class AvailabilityForecast:
    """Survival probabilities for phones over scheduling windows.

    Parameters
    ----------
    hourly_by_phone:
        For each phone id, 24 values: the probability that the phone's
        owner unplugs it during local hour ``h`` (the Figure 3b/3c
        per-user profiles).
    default_hourly:
        Profile used for phones with no study data (defaults to a flat,
        mildly pessimistic 10 %/hour).
    """

    def __init__(
        self,
        hourly_by_phone: Mapping[str, Sequence[float]],
        *,
        default_hourly: Sequence[float] | None = None,
    ) -> None:
        self._profiles: dict[str, tuple[float, ...]] = {}
        for phone_id, profile in hourly_by_phone.items():
            self._profiles[phone_id] = self._validated(profile, phone_id)
        if default_hourly is None:
            default_hourly = (0.1,) * 24
        self._default = self._validated(default_hourly, "<default>")

    @staticmethod
    def _validated(profile: Sequence[float], owner: str) -> tuple[float, ...]:
        values = tuple(float(p) for p in profile)
        if len(values) != 24:
            raise ValueError(
                f"profile for {owner} needs 24 hourly values, got {len(values)}"
            )
        if any(not 0.0 <= p <= 1.0 for p in values):
            raise ValueError(f"profile for {owner} has values outside [0, 1]")
        return values

    @classmethod
    def from_study(
        cls,
        logs_by_user: Mapping[str, Sequence[LogRecord]],
        phone_owner: Mapping[str, str],
        *,
        days: int,
        default_hourly: Sequence[float] | None = None,
    ) -> "AvailabilityForecast":
        """Build a forecast from raw study logs.

        ``phone_owner`` maps phone ids to the study user whose charging
        behaviour governs that phone.
        """
        profiles = {
            user: hourly_unplug_likelihood(records, days=days)
            for user, records in logs_by_user.items()
        }
        hourly_by_phone = {}
        for phone_id, user in phone_owner.items():
            if user not in profiles:
                raise KeyError(f"no study logs for user {user!r}")
            hourly_by_phone[phone_id] = profiles[user]
        return cls(hourly_by_phone, default_hourly=default_hourly)

    # -- queries -----------------------------------------------------------

    def hourly_profile(self, phone_id: str) -> tuple[float, ...]:
        return self._profiles.get(phone_id, self._default)

    def survival_probability(
        self, phone_id: str, *, start_hour: float, duration_hours: float
    ) -> float:
        """P(phone stays plugged in for the whole window).

        Treats hourly unplug probabilities as independent per
        hour-slice: ``prod(1 - p_h * slice_fraction)`` over the window.
        """
        if duration_hours < 0:
            raise ValueError(f"duration_hours must be >= 0, got {duration_hours!r}")
        profile = self.hourly_profile(phone_id)
        survival = 1.0
        elapsed = 0.0
        while elapsed < duration_hours:
            slice_hours = min(1.0, duration_hours - elapsed)
            hour = int(start_hour + elapsed) % 24
            survival *= max(0.0, 1.0 - profile[hour] * slice_hours)
            elapsed += slice_hours
        return survival

    def rank_phones(
        self,
        phone_ids: Sequence[str],
        *,
        start_hour: float,
        duration_hours: float,
    ) -> list[tuple[str, float]]:
        """Phones ordered most-reliable first for the given window."""
        scored = [
            (
                phone_id,
                self.survival_probability(
                    phone_id,
                    start_hour=start_hour,
                    duration_hours=duration_hours,
                ),
            )
            for phone_id in phone_ids
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored
