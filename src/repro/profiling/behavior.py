"""Generative model of smartphone charging behaviour (Section 3.1).

The paper profiles 15 volunteers with an Android app for several weeks.
We cannot re-run that study, so this module generates synthetic
state-change logs from a per-user behavioural model calibrated to the
paper's reported statistics:

* night charging: users plug in around bedtime and unplug in the
  morning — median night interval ≈ 7 hours; regular users (the
  paper's users 3, 4, 8) have low day-to-day variability and 8–9 hour
  charges;
* day charging: frequent short top-ups — median day interval ≈ 30 min;
* background data during night charging is small: < 2 MB for ≈80 % of
  intervals (periodic e-mail checks and push notifications);
* phones are very rarely shut down while charging (≈3 % of log lines);
* unplug likelihood is low between midnight and 8 AM (< 30 % cumulative
  — Fig. 3a) and peaks in the morning and daytime.

Each :class:`UserBehavior` owns the distributional knobs; the
:func:`generate_user_log` / :func:`generate_study` functions emit
:class:`~repro.profiling.logs.LogRecord` streams that the analysis
pipeline consumes exactly as it would consume real logs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .logs import LogRecord, PhoneChargeState

__all__ = ["UserBehavior", "default_study_users", "generate_user_log", "generate_study"]

_DAY_S = 86_400.0
_HOUR_S = 3_600.0
_MB = 1024 * 1024


@dataclass(frozen=True)
class UserBehavior:
    """Distributional description of one user's charging habits.

    Hours are local wall-clock; sigmas are day-to-day standard
    deviations.  ``regularity`` < 1 shrinks the sigmas (the paper's
    most consistent users); ``night_skip_prob`` is the chance a night
    has no charge at all (travelling, fell asleep on the couch).
    """

    user_id: str
    plug_hour_mean: float = 22.5
    plug_hour_sigma: float = 0.9
    unplug_hour_mean: float = 6.8
    unplug_hour_sigma: float = 0.9
    regularity: float = 1.0
    night_skip_prob: float = 0.08
    day_sessions_mean: float = 1.6
    day_session_minutes_median: float = 30.0
    day_session_minutes_sigma: float = 0.7
    night_mb_median: float = 0.8
    night_mb_sigma: float = 1.0
    shutdown_prob: float = 0.03
    night_interruption_prob: float = 0.05

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if self.regularity <= 0:
            raise ValueError(f"regularity must be > 0, got {self.regularity!r}")
        for label, p in (
            ("night_skip_prob", self.night_skip_prob),
            ("shutdown_prob", self.shutdown_prob),
            ("night_interruption_prob", self.night_interruption_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must lie in [0, 1], got {p!r}")


def default_study_users(*, count: int = 15, seed: int = 15) -> tuple[UserBehavior, ...]:
    """The 15-volunteer synthetic cohort.

    Users 3, 4 and 8 are the paper's highly regular long-chargers
    (8–9 h nightly with low variability); the rest span ordinary habits.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = random.Random(seed)
    users = []
    regular_ids = {3, 4, 8}
    for index in range(1, count + 1):
        if index in regular_ids:
            users.append(
                UserBehavior(
                    user_id=f"user-{index:02d}",
                    plug_hour_mean=rng.uniform(21.8, 22.4),
                    unplug_hour_mean=rng.uniform(7.2, 7.8),
                    plug_hour_sigma=0.3,
                    unplug_hour_sigma=0.3,
                    regularity=0.5,
                    night_skip_prob=0.02,
                    night_interruption_prob=0.02,
                )
            )
        else:
            users.append(
                UserBehavior(
                    user_id=f"user-{index:02d}",
                    plug_hour_mean=rng.uniform(21.5, 24.5),
                    unplug_hour_mean=rng.uniform(6.5, 9.2),
                    plug_hour_sigma=rng.uniform(0.7, 1.4),
                    unplug_hour_sigma=rng.uniform(0.7, 1.4),
                    regularity=1.0,
                    night_skip_prob=rng.uniform(0.05, 0.18),
                    day_sessions_mean=rng.uniform(0.8, 2.8),
                    night_mb_median=rng.uniform(0.4, 1.5),
                    night_mb_sigma=rng.uniform(0.8, 1.3),
                )
            )
    return tuple(users)


def _sample_poisson(rng: random.Random, mean: float) -> int:
    """Knuth's algorithm; fine for the small means used here."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def _night_transfer_bytes(user: UserBehavior, duration_h: float, rng: random.Random) -> int:
    """Background data during a night interval (lognormal, small)."""
    scale = max(0.25, duration_h / 7.0)
    mb = rng.lognormvariate(math.log(user.night_mb_median * scale), user.night_mb_sigma)
    return int(mb * _MB)


def _day_transfer_bytes(duration_h: float, rng: random.Random) -> int:
    """Day top-ups see active use: more traffic per hour."""
    mb = rng.lognormvariate(math.log(max(0.2, 2.0 * duration_h)), 1.0)
    return int(mb * _MB)


def generate_user_log(
    user: UserBehavior, *, days: int = 28, rng: random.Random
) -> list[LogRecord]:
    """Generate one user's state-change log over ``days`` days.

    Every plugged interval emits a PLUGGED record on entry (counter
    reset, 0 bytes) and an UNPLUGGED or SHUTDOWN record on exit with
    the interval's transfer total — the app's exact behaviour.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    # Candidate (start, end, transferred) intervals; overlaps are resolved
    # after generation (a phone cannot be plugged in twice at once — e.g.
    # a long evening top-up running into the nightly charge).
    candidates: list[tuple[float, float, int]] = []

    def emit_interval(start_s: float, end_s: float, transferred: int) -> None:
        if end_s > start_s:
            candidates.append((start_s, end_s, transferred))

    for day in range(days):
        day_start = day * _DAY_S

        # Night charge: plug in during the evening, unplug next morning.
        if rng.random() >= user.night_skip_prob:
            plug_hour = rng.gauss(
                user.plug_hour_mean, user.plug_hour_sigma * user.regularity
            )
            unplug_hour = rng.gauss(
                user.unplug_hour_mean, user.unplug_hour_sigma * user.regularity
            )
            start = day_start + plug_hour * _HOUR_S
            end = day_start + _DAY_S + unplug_hour * _HOUR_S
            if end > start + 15 * 60:
                if rng.random() < user.night_interruption_prob:
                    # Brief mid-night unplug (bathroom-break alarm check):
                    # splits the night into two intervals.
                    split = start + rng.uniform(0.25, 0.75) * (end - start)
                    gap = rng.uniform(5 * 60, 20 * 60)
                    for s, e in ((start, split), (split + gap, end)):
                        hours = (e - s) / _HOUR_S
                        emit_interval(s, e, _night_transfer_bytes(user, hours, rng))
                else:
                    hours = (end - start) / _HOUR_S
                    emit_interval(start, end, _night_transfer_bytes(user, hours, rng))

        # Day top-ups: short sessions at random daytime hours.
        for _ in range(_sample_poisson(rng, user.day_sessions_mean)):
            start_hour = rng.uniform(8.5, 20.5)
            minutes = rng.lognormvariate(
                math.log(user.day_session_minutes_median),
                user.day_session_minutes_sigma,
            )
            start = day_start + start_hour * _HOUR_S
            end = start + minutes * 60.0
            emit_interval(start, end, _day_transfer_bytes(minutes / 60.0, rng))

    # Drop candidates overlapping an already-accepted interval (earlier
    # start wins; ties keep the longer interval).
    candidates.sort(key=lambda item: (item[0], -(item[1] - item[0])))
    records: list[LogRecord] = []
    last_end = float("-inf")
    for start_s, end_s, transferred in candidates:
        if start_s < last_end:
            continue
        last_end = end_s
        records.append(
            LogRecord(
                user_id=user.user_id,
                timestamp_s=start_s,
                state=PhoneChargeState.PLUGGED,
                bytes_transferred=0,
            )
        )
        exit_state = (
            PhoneChargeState.SHUTDOWN
            if rng.random() < user.shutdown_prob
            else PhoneChargeState.UNPLUGGED
        )
        records.append(
            LogRecord(
                user_id=user.user_id,
                timestamp_s=end_s,
                state=exit_state,
                bytes_transferred=transferred,
            )
        )
    return records


def generate_study(
    users: tuple[UserBehavior, ...] | None = None,
    *,
    days: int = 28,
    seed: int = 31,
) -> dict[str, list[LogRecord]]:
    """Generate the whole cohort's logs, keyed by user id."""
    if users is None:
        users = default_study_users()
    rng = random.Random(seed)
    return {
        user.user_id: generate_user_log(
            user, days=days, rng=random.Random(rng.randrange(2**31))
        )
        for user in users
    }
