"""Analysis pipeline for charging logs (Figures 2 and 3).

Given state-change logs (real or generated), this module computes the
paper's feasibility-study statistics:

* charging intervals with day/night classification — an interval is a
  *night* interval if the plugged state occurs between 10 PM and 5 AM
  local time (Fig. 2a);
* data transfer per night interval (Fig. 2b) and the idle-interval
  criterion (< 2 MB transferred, Fig. 2c);
* per-user and aggregate unplug ("failure") activity by hour of day
  (Figs. 3a–c).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from .logs import LogRecord, PhoneChargeState

__all__ = [
    "ChargingInterval",
    "extract_intervals",
    "is_night_interval",
    "night_day_split",
    "idle_night_hours_by_user",
    "unplug_hour_histogram",
    "unplug_hour_cdf",
    "hourly_unplug_likelihood",
    "IDLE_TRANSFER_LIMIT_BYTES",
    "NIGHT_START_HOUR",
    "NIGHT_END_HOUR",
]

#: The paper's idle criterion: night intervals transferring < 2 MB.
IDLE_TRANSFER_LIMIT_BYTES = 2 * 1024 * 1024

#: Night window boundaries (10 PM to 5 AM, Section 3.1).
NIGHT_START_HOUR = 22.0
NIGHT_END_HOUR = 5.0

_DAY_S = 86_400.0
_HOUR_S = 3_600.0


@dataclass(frozen=True, slots=True)
class ChargingInterval:
    """One plugged interval reconstructed from a user's log."""

    user_id: str
    start_s: float
    end_s: float
    bytes_transferred: int
    ended_by_shutdown: bool

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("interval ends before it starts")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def duration_hours(self) -> float:
        return self.duration_s / _HOUR_S

    @property
    def start_hour(self) -> float:
        return (self.start_s % _DAY_S) / _HOUR_S

    @property
    def is_idle(self) -> bool:
        """Idle = suitable for CWC: night charge with < 2 MB of traffic."""
        return (
            is_night_interval(self)
            and self.bytes_transferred < IDLE_TRANSFER_LIMIT_BYTES
        )


def extract_intervals(records: Sequence[LogRecord]) -> list[ChargingInterval]:
    """Pair PLUGGED entries with their exit records.

    The server-side parsing step of Section 3.1.  Unpaired trailing
    PLUGGED records (study ended mid-charge) are dropped; an exit
    without a preceding PLUGGED is ignored (app installed mid-charge).
    """
    intervals: list[ChargingInterval] = []
    open_plug: LogRecord | None = None
    for record in sorted(records, key=lambda r: r.timestamp_s):
        if record.state is PhoneChargeState.PLUGGED:
            open_plug = record
            continue
        if open_plug is None:
            continue
        intervals.append(
            ChargingInterval(
                user_id=record.user_id,
                start_s=open_plug.timestamp_s,
                end_s=record.timestamp_s,
                bytes_transferred=record.bytes_transferred,
                ended_by_shutdown=record.state is PhoneChargeState.SHUTDOWN,
            )
        )
        open_plug = None
    return intervals


def is_night_interval(interval: ChargingInterval) -> bool:
    """True if the plugged state began between 10 PM and 5 AM."""
    hour = interval.start_hour
    return hour >= NIGHT_START_HOUR or hour < NIGHT_END_HOUR


def night_day_split(
    intervals: Iterable[ChargingInterval],
) -> tuple[list[ChargingInterval], list[ChargingInterval]]:
    """Partition intervals into (night, day) lists — the Fig. 2a axes."""
    night: list[ChargingInterval] = []
    day: list[ChargingInterval] = []
    for interval in intervals:
        (night if is_night_interval(interval) else day).append(interval)
    return night, day


def idle_night_hours_by_user(
    intervals_by_user: Mapping[str, Sequence[ChargingInterval]],
    *,
    transfer_limit_bytes: int = IDLE_TRANSFER_LIMIT_BYTES,
) -> dict[str, tuple[float, float]]:
    """Mean and standard deviation of idle night hours per user per day.

    Reproduces Fig. 2c: for each user, consider night intervals whose
    transfer stayed under the idle limit and average their durations
    per study day.
    """
    result: dict[str, tuple[float, float]] = {}
    for user_id, intervals in intervals_by_user.items():
        night, _ = night_day_split(intervals)
        idle = [
            interval
            for interval in night
            if interval.bytes_transferred < transfer_limit_bytes
        ]
        if not idle:
            result[user_id] = (0.0, 0.0)
            continue
        durations = [interval.duration_hours for interval in idle]
        mean = sum(durations) / len(durations)
        variance = sum((d - mean) ** 2 for d in durations) / len(durations)
        result[user_id] = (mean, math.sqrt(variance))
    return result


def unplug_hour_histogram(
    records: Iterable[LogRecord], *, bins: int = 24
) -> list[int]:
    """Count unplug events per local hour (the raw data behind Fig. 3)."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    histogram = [0] * bins
    for record in records:
        if record.state is PhoneChargeState.UNPLUGGED:
            histogram[int(record.hour_of_day * bins / 24.0) % bins] += 1
    return histogram


def unplug_hour_cdf(records: Iterable[LogRecord]) -> list[float]:
    """Cumulative fraction of unplug events by end of each hour (Fig. 3a).

    Hours are counted from midnight; the paper reads off "< 30 %
    of failures happen between 12 AM and 8 AM" from this curve.
    """
    histogram = unplug_hour_histogram(records)
    total = sum(histogram)
    if total == 0:
        return [0.0] * 24
    cdf: list[float] = []
    cumulative = 0
    for count in histogram:
        cumulative += count
        cdf.append(cumulative / total)
    return cdf


def hourly_unplug_likelihood(
    records: Sequence[LogRecord], *, days: int
) -> list[float]:
    """Per-hour probability that this user unplugs (Figs. 3b, 3c).

    For each local hour, the fraction of study days on which an unplug
    event fell in that hour — the per-user failure-likelihood profile
    that lets CWC prefer phones unlikely to fail soon.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    events_by_hour: list[set[int]] = [set() for _ in range(24)]
    for record in records:
        if record.state is not PhoneChargeState.UNPLUGGED:
            continue
        day_index = int(record.timestamp_s // _DAY_S)
        events_by_hour[int(record.hour_of_day) % 24].add(day_index)
    return [len(day_set) / days for day_set in events_by_hour]
