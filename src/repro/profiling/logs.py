"""Charging-state logs: the Android profiling app's data format.

Section 3.1 describes an Android application that tracks three states —
*plugged*, *unplugged*, *shutdown* — and, on every state change, logs
the change with a timestamp plus the total bytes transferred over all
wireless interfaces since the phone last entered the plugged state.
:class:`LogRecord` is one such log line; :func:`serialize_log` /
:func:`parse_log` round-trip the server-side log files.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["PhoneChargeState", "LogRecord", "serialize_log", "parse_log"]


class PhoneChargeState(enum.Enum):
    """The three states the profiling app distinguishes."""

    PLUGGED = "plugged"
    UNPLUGGED = "unplugged"
    SHUTDOWN = "shutdown"


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One state-change log line.

    ``timestamp_s`` is seconds in the user's local timezone (the app
    logs local time so day/night classification needs no conversion).
    ``bytes_transferred`` is the plugged-interval byte counter at the
    moment of the change — meaningful when *leaving* the plugged state,
    zero when entering it (the counter resets on entry).
    """

    user_id: str
    timestamp_s: float
    state: PhoneChargeState
    bytes_transferred: int = 0

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if not math.isfinite(self.timestamp_s):
            raise ValueError(f"timestamp_s must be finite, got {self.timestamp_s!r}")
        if self.bytes_transferred < 0:
            raise ValueError(
                f"bytes_transferred must be >= 0, got {self.bytes_transferred!r}"
            )

    @property
    def hour_of_day(self) -> float:
        """Local hour in ``[0, 24)``."""
        return (self.timestamp_s % 86_400.0) / 3_600.0


def serialize_log(records: Iterable[LogRecord]) -> str:
    """Render records as the server's line-oriented log file."""
    lines = []
    for record in records:
        lines.append(
            f"{record.user_id}\t{record.timestamp_s:.3f}\t"
            f"{record.state.value}\t{record.bytes_transferred}"
        )
    return "\n".join(lines)


def parse_log(text: str) -> list[LogRecord]:
    """Parse a server log file back into records.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number (silent corruption in a measurement study
    would poison every downstream statistic).
    """
    records: list[LogRecord] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise ValueError(f"line {number}: expected 4 fields, got {len(parts)}")
        user_id, timestamp, state, transferred = parts
        try:
            records.append(
                LogRecord(
                    user_id=user_id,
                    timestamp_s=float(timestamp),
                    state=PhoneChargeState(state),
                    bytes_transferred=int(transferred),
                )
            )
        except ValueError as exc:
            raise ValueError(f"line {number}: {exc}") from exc
    return records
