"""CoreMark comparison data and a runnable CPU micro-benchmark (Fig. 1).

Figure 1 of the paper plots published CoreMark scores of major
smartphone CPUs against the Intel Core 2 Duo: the Nvidia Tegra 3
slightly outperforms the Core 2 Duo, while the Core 2 Duo beats the
other mobile CPUs of the day by more than 50 %.  The figure is borrowed
from the CoreMark database and Nvidia's whitepaper, so the reproduction
carries the same published score table (values read off the figure /
coremark.org; what matters for the paper's argument are the ratios).

A pure-Python micro-benchmark with CoreMark-flavoured kernels (linked
list walking, matrix arithmetic, a state machine, CRC accumulation) is
included so the benchmark harness can measure *relative* CPU speed of
whatever host runs the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["CoremarkScore", "PUBLISHED_SCORES", "coremark_ratios", "python_coremark"]


@dataclass(frozen=True)
class CoremarkScore:
    """One CPU's published CoreMark result."""

    cpu: str
    score: float
    cores: int
    is_smartphone: bool


#: Approximate published CoreMark scores as plotted in Figure 1.
PUBLISHED_SCORES: tuple[CoremarkScore, ...] = (
    CoremarkScore("Intel Core 2 Duo (T7500)", 14_766.0, 2, False),
    CoremarkScore("Nvidia Tegra 3", 15_100.0, 4, True),
    CoremarkScore("Qualcomm Snapdragon S3 (APQ8060)", 7_800.0, 2, True),
    CoremarkScore("Samsung Exynos 4210", 7_200.0, 2, True),
    CoremarkScore("TI OMAP 4430", 6_000.0, 2, True),
    CoremarkScore("Nvidia Tegra 2", 5_500.0, 2, True),
)


def coremark_ratios(
    scores: tuple[CoremarkScore, ...] = PUBLISHED_SCORES,
    *,
    reference_cpu: str = "Intel Core 2 Duo (T7500)",
) -> dict[str, float]:
    """Each CPU's score relative to the reference (Fig. 1's message).

    The paper's two claims are checkable from the ratios: Tegra 3 > 1.0
    and every other smartphone CPU < 1/1.5.
    """
    reference = next((s for s in scores if s.cpu == reference_cpu), None)
    if reference is None:
        raise ValueError(f"no score for reference CPU {reference_cpu!r}")
    return {score.cpu: score.score / reference.score for score in scores}


def _kernel_list(iterations: int) -> int:
    """Linked-list find/sort flavoured work."""
    values = list(range(64, 0, -1))
    checksum = 0
    for i in range(iterations):
        values.append(values.pop(0) ^ (i & 0xFF))
        if i % 16 == 0:
            values.sort()
            checksum ^= values[i % len(values)]
    return checksum


def _kernel_matrix(iterations: int) -> int:
    """Small fixed-point matrix multiply-accumulate."""
    size = 8
    a = [[(i * size + j) % 7 + 1 for j in range(size)] for i in range(size)]
    b = [[(i + j) % 5 + 1 for j in range(size)] for i in range(size)]
    checksum = 0
    for _ in range(max(1, iterations // 8)):
        for i in range(size):
            row = a[i]
            for j in range(size):
                acc = 0
                for k in range(size):
                    acc += row[k] * b[k][j]
                checksum = (checksum + acc) & 0xFFFF
    return checksum


def _kernel_state_machine(iterations: int) -> int:
    """Scan a byte string through a small state machine."""
    data = bytes((i * 7 + 3) % 251 for i in range(256))
    state = 0
    transitions = 0
    for i in range(iterations):
        byte = data[i % len(data)]
        if state == 0:
            state = 1 if byte < 64 else 2
        elif state == 1:
            state = 2 if byte & 1 else 0
        else:
            state = 0 if byte > 200 else 1
        transitions += state
    return transitions


def _kernel_crc(iterations: int) -> int:
    """CRC-16 accumulation (CoreMark validates results with CRCs)."""
    crc = 0xFFFF
    for i in range(iterations):
        crc ^= (i * 31) & 0xFF
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA001
            else:
                crc >>= 1
    return crc


def python_coremark(iterations: int = 20_000) -> float:
    """Run the CoreMark-flavoured kernels; return iterations/second.

    Absolute numbers are meaningless across machines (this is Python,
    not C); ratios between runs on different hosts — or at different
    simulated clock speeds — mirror what CoreMark measures.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    started = time.perf_counter()
    _kernel_list(iterations)
    _kernel_matrix(iterations)
    _kernel_state_machine(iterations)
    _kernel_crc(iterations)
    elapsed = time.perf_counter() - started
    if elapsed <= 0:  # timer resolution floor on very fast hosts
        elapsed = 1e-9
    return iterations / elapsed
