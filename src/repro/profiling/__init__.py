"""Charging-behaviour study substrate (Section 3.1, Figures 1–3)."""

from .analysis import (
    IDLE_TRANSFER_LIMIT_BYTES,
    NIGHT_END_HOUR,
    NIGHT_START_HOUR,
    ChargingInterval,
    extract_intervals,
    hourly_unplug_likelihood,
    idle_night_hours_by_user,
    is_night_interval,
    night_day_split,
    unplug_hour_cdf,
    unplug_hour_histogram,
)
from .behavior import (
    UserBehavior,
    default_study_users,
    generate_study,
    generate_user_log,
)
from .forecast import AvailabilityForecast
from .coremark import (
    PUBLISHED_SCORES,
    CoremarkScore,
    coremark_ratios,
    python_coremark,
)
from .logs import LogRecord, PhoneChargeState, parse_log, serialize_log

__all__ = [
    "IDLE_TRANSFER_LIMIT_BYTES",
    "NIGHT_END_HOUR",
    "NIGHT_START_HOUR",
    "PUBLISHED_SCORES",
    "AvailabilityForecast",
    "ChargingInterval",
    "CoremarkScore",
    "LogRecord",
    "PhoneChargeState",
    "UserBehavior",
    "coremark_ratios",
    "default_study_users",
    "extract_intervals",
    "generate_study",
    "generate_user_log",
    "hourly_unplug_likelihood",
    "idle_night_hours_by_user",
    "is_night_interval",
    "night_day_split",
    "parse_log",
    "python_coremark",
    "serialize_log",
    "unplug_hour_cdf",
    "unplug_hour_histogram",
]
