"""Trace invariant checking: did a simulated run behave like CWC?

Anyone extending this reproduction — a new scheduler, a new failure
model, a different dispatch policy — needs a way to know their change
did not silently break the system's contracts.  This module packages
the invariants the test suite enforces into a reusable validator:

* **sequential phones** — a phone never overlaps two spans (one copy or
  one execution at a time; the dispatch pipeline is serial per phone);
* **conservation** — completed + checkpointed + unfinished input equals
  exactly the submitted input (offline failures redo *work* but their
  partition's input is still completed exactly once);
* **no zombie work** — a failed phone does no work after the server
  detected its failure until it rejoins (chaos-era runs record rejoin
  instants in the trace, so the dark window is checked exactly);
* **copy-before-execute** — every execution span on a phone is preceded
  by a copy of the same job's executable/input.

:func:`check_run_invariants` raises :class:`TraceInvariantError` with a
specific message on the first violation; tests and ad-hoc experiments
can call it on any :class:`~repro.sim.server.RunResult`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.model import Job
from .server import RunResult
from .trace import SpanKind

__all__ = ["TraceInvariantError", "check_run_invariants"]

_TOL = 1e-6


class TraceInvariantError(AssertionError):
    """A simulated run violated a CWC behavioural contract."""


def _check_sequential_phones(result: RunResult) -> None:
    for phone_id in result.trace.phone_ids():
        spans = sorted(
            result.trace.spans_for(phone_id), key=lambda s: s.start_ms
        )
        for earlier, later in zip(spans, spans[1:]):
            if later.start_ms < earlier.end_ms - _TOL:
                raise TraceInvariantError(
                    f"phone {phone_id!r} overlaps spans: "
                    f"[{earlier.start_ms}, {earlier.end_ms}] and "
                    f"[{later.start_ms}, {later.end_ms}]"
                )


def _check_conservation(result: RunResult, jobs: Sequence[Job]) -> None:
    total_input = sum(job.input_kb for job in jobs)
    completed = sum(c.input_kb for c in result.trace.completions)
    checkpointed = sum(f.processed_kb for f in result.trace.failures)
    unfinished = sum(job.input_kb for job in result.unfinished_jobs)
    accounted = completed + checkpointed + unfinished
    if abs(accounted - total_input) > max(_TOL, total_input * 1e-9):
        raise TraceInvariantError(
            f"input not conserved: submitted {total_input:.3f} KB but "
            f"accounted {accounted:.3f} KB (completed {completed:.3f} + "
            f"checkpointed {checkpointed:.3f} + unfinished {unfinished:.3f})"
        )


def _check_no_zombie_work(result: RunResult) -> None:
    # A phone may legitimately work again after a failure if it rejoined;
    # rejoin instants are recorded in the trace.  Two things must never
    # happen: a span *in flight* across the detection instant that is not
    # marked interrupted, and a span *starting* inside the dark window
    # between a detected failure and the phone's next rejoin.
    for failure in result.trace.failures:
        rejoins = result.trace.rejoin_times_for(failure.phone_id)
        next_rejoin = min(
            (t for t in rejoins if t >= failure.detected_at_ms - _TOL),
            default=None,
        )
        for span in result.trace.spans_for(failure.phone_id):
            crosses = (
                span.start_ms < failure.detected_at_ms - _TOL
                and span.end_ms > failure.detected_at_ms + _TOL
            )
            if crosses and not span.interrupted:
                raise TraceInvariantError(
                    f"phone {failure.phone_id!r} has an uninterrupted span "
                    f"[{span.start_ms}, {span.end_ms}] crossing its failure "
                    f"detection at {failure.detected_at_ms}"
                )
            starts_dark = span.start_ms > failure.detected_at_ms + _TOL and (
                next_rejoin is None or span.start_ms < next_rejoin - _TOL
            )
            if starts_dark:
                raise TraceInvariantError(
                    f"phone {failure.phone_id!r} started a span at "
                    f"{span.start_ms} while dark (failed at "
                    f"{failure.detected_at_ms}, "
                    + (
                        "never rejoined)"
                        if next_rejoin is None
                        else f"rejoined at {next_rejoin})"
                    )
                )


def _check_copy_before_execute(result: RunResult) -> None:
    for phone_id in result.trace.phone_ids():
        spans = sorted(
            result.trace.spans_for(phone_id), key=lambda s: s.start_ms
        )
        copied_jobs: set[str] = set()
        for span in spans:
            if span.kind is SpanKind.COPY:
                copied_jobs.add(span.job_id)
            elif span.job_id not in copied_jobs:
                raise TraceInvariantError(
                    f"phone {phone_id!r} executed job {span.job_id!r} at "
                    f"{span.start_ms} without ever copying it"
                )


def check_run_invariants(result: RunResult, jobs: Sequence[Job]) -> None:
    """Validate every CWC behavioural contract on a finished run.

    Raises :class:`TraceInvariantError` naming the first violation;
    returns None when the run is clean.
    """
    _check_sequential_phones(result)
    _check_conservation(result, jobs)
    _check_no_zombie_work(result)
    _check_copy_before_execute(result)
