"""Trace invariant checking: did a simulated run behave like CWC?

Anyone extending this reproduction — a new scheduler, a new failure
model, a different dispatch policy — needs a way to know their change
did not silently break the system's contracts.  Historically this
module owned four hand-rolled checks; they are now **promoted** into
the :mod:`repro.verify.invariants` registry (alongside newer run-scope
invariants such as duplicate-credit and makespan-consistency), and
:func:`check_run_invariants` delegates to the
:class:`~repro.verify.oracle.Oracle` so the simulator, the fuzzer, and
the test suite all enforce one catalogue:

* **sequential phones** — a phone never overlaps two spans;
* **conservation** — completed + checkpointed + unfinished input equals
  exactly the submitted input;
* **no zombie work** — a failed phone does no work between failure
  detection and its next rejoin;
* **copy-before-execute** — every execution span on a phone is preceded
  by a copy of the same job's executable/input.

:class:`TraceInvariantError` is now an alias of
:class:`~repro.verify.invariants.InvariantViolation`, so existing
``except TraceInvariantError`` call sites keep working unchanged.

The pre-migration implementations are retained below as ``_legacy_*``
functions; ``tests/verify/test_validation_migration.py`` proves the old
and new checkers agree verdict-for-verdict.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.model import Job
from ..verify.invariants import InvariantViolation
from ..verify.oracle import Oracle
from .server import RunResult
from .trace import SpanKind

__all__ = ["TraceInvariantError", "check_run_invariants"]

_TOL = 1e-6

#: Backwards-compatible alias: a simulated run violated a CWC
#: behavioural contract.
TraceInvariantError = InvariantViolation


def check_run_invariants(result: RunResult, jobs: Sequence[Job]) -> None:
    """Validate every CWC behavioural contract on a finished run.

    Delegates to the :class:`~repro.verify.oracle.Oracle` run-scope
    registry.  Raises :class:`TraceInvariantError` naming the first
    violation; returns None when the run is clean.
    """
    Oracle().check_run(result, jobs)


# ---------------------------------------------------------------------------
# Pre-migration implementations, kept only so the regression suite can
# prove the promoted invariants agree with them.  Do not extend these —
# add new checks to repro.verify.invariants instead.
# ---------------------------------------------------------------------------


def _legacy_sequential_phones(result: RunResult) -> None:
    """Original sequential-phones check (pre-oracle)."""
    for phone_id in result.trace.phone_ids():
        spans = sorted(
            result.trace.spans_for(phone_id), key=lambda s: s.start_ms
        )
        for earlier, later in zip(spans, spans[1:]):
            if later.start_ms < earlier.end_ms - _TOL:
                raise TraceInvariantError(
                    f"phone {phone_id!r} overlaps spans: "
                    f"[{earlier.start_ms}, {earlier.end_ms}] and "
                    f"[{later.start_ms}, {later.end_ms}]"
                )


def _legacy_conservation(result: RunResult, jobs: Sequence[Job]) -> None:
    """Original conservation-of-input check (pre-oracle)."""
    total_input = sum(job.input_kb for job in jobs)
    completed = sum(c.input_kb for c in result.trace.completions)
    checkpointed = sum(f.processed_kb for f in result.trace.failures)
    unfinished = sum(job.input_kb for job in result.unfinished_jobs)
    accounted = completed + checkpointed + unfinished
    if abs(accounted - total_input) > max(_TOL, total_input * 1e-9):
        raise TraceInvariantError(
            f"input not conserved: submitted {total_input:.3f} KB but "
            f"accounted {accounted:.3f} KB (completed {completed:.3f} + "
            f"checkpointed {checkpointed:.3f} + unfinished {unfinished:.3f})"
        )


def _legacy_no_zombie_work(result: RunResult) -> None:
    """Original dark-window check (pre-oracle)."""
    for failure in result.trace.failures:
        rejoins = result.trace.rejoin_times_for(failure.phone_id)
        next_rejoin = min(
            (t for t in rejoins if t >= failure.detected_at_ms - _TOL),
            default=None,
        )
        for span in result.trace.spans_for(failure.phone_id):
            crosses = (
                span.start_ms < failure.detected_at_ms - _TOL
                and span.end_ms > failure.detected_at_ms + _TOL
            )
            if crosses and not span.interrupted:
                raise TraceInvariantError(
                    f"phone {failure.phone_id!r} has an uninterrupted span "
                    f"[{span.start_ms}, {span.end_ms}] crossing its failure "
                    f"detection at {failure.detected_at_ms}"
                )
            starts_dark = span.start_ms > failure.detected_at_ms + _TOL and (
                next_rejoin is None or span.start_ms < next_rejoin - _TOL
            )
            if starts_dark:
                raise TraceInvariantError(
                    f"phone {failure.phone_id!r} started a span at "
                    f"{span.start_ms} while dark (failed at "
                    f"{failure.detected_at_ms}, "
                    + (
                        "never rejoined)"
                        if next_rejoin is None
                        else f"rejoined at {next_rejoin})"
                    )
                )


def _legacy_copy_before_execute(result: RunResult) -> None:
    """Original copy-before-execute check (pre-oracle)."""
    for phone_id in result.trace.phone_ids():
        spans = sorted(
            result.trace.spans_for(phone_id), key=lambda s: s.start_ms
        )
        copied_jobs: set[str] = set()
        for span in spans:
            if span.kind is SpanKind.COPY:
                copied_jobs.add(span.job_id)
            elif span.job_id not in copied_jobs:
                raise TraceInvariantError(
                    f"phone {phone_id!r} executed job {span.job_id!r} at "
                    f"{span.start_ms} without ever copying it"
                )


def _legacy_check_run_invariants(
    result: RunResult, jobs: Sequence[Job]
) -> None:
    """The pre-migration validator, verbatim (for agreement tests)."""
    _legacy_sequential_phones(result)
    _legacy_conservation(result, jobs)
    _legacy_no_zombie_work(result)
    _legacy_copy_before_execute(result)
