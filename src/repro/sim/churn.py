"""Fleet population churn across a multi-night campaign.

The paper's testbed is 18 fixed phones, but Section 7's deployment
sketch is an *enterprise* fleet: employees enroll, leave the company,
upgrade handsets, and shift their charging habits with the seasons.  A
multi-night campaign therefore needs three effects the single-run
simulator does not model:

* **departures** — an enrolled phone stops participating (its owner
  left or opted out);
* **enrollments** — new phones join with unknown efficiency (the
  predictor has to learn them from scratch, Section 4.1's cold-start);
* **habit drift** — the per-hour unplug likelihoods of the Section 3
  study (Figure 3) are not stationary; they wander night over night.

:class:`FleetChurnModel` samples all three from a caller-supplied RNG,
so a campaign that checkpoints that RNG's state replays the *same*
churn after a restore.  The habit-drift entry point composes with the
:mod:`repro.profiling` study pipeline: seed the hourly profile from
real charging logs via :func:`unplug_profile_from_logs`, then let
:meth:`FleetChurnModel.drift_hourly_probabilities` evolve it.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.model import NetworkTechnology, PhoneSpec

__all__ = [
    "ChurnEvent",
    "FleetChurnModel",
    "unplug_profile_from_logs",
]


def unplug_profile_from_logs(records, *, days: int) -> list[float]:
    """Hourly unplug probabilities from charging-study logs.

    Thin bridge to
    :func:`repro.profiling.analysis.hourly_unplug_likelihood` so
    campaign code can seed its failure model straight from the Figure 3
    study data and then drift it night over night.
    """
    from ..profiling.analysis import hourly_unplug_likelihood

    return hourly_unplug_likelihood(records, days=days)


@dataclass(frozen=True)
class ChurnEvent:
    """The fleet delta applied at one night boundary."""

    phones: tuple[PhoneSpec, ...]
    joined: tuple[str, ...]
    departed: tuple[str, ...]


class FleetChurnModel:
    """Samples night-boundary fleet deltas and habit drift.

    Parameters
    ----------
    leave_probability:
        Per-phone, per-night probability of departing.  Departures are
        suppressed whenever they would shrink the fleet below
        ``min_fleet`` (an enterprise keeps a core of committed users).
    max_joins_per_night:
        Each night ``0..max`` new phones enroll (uniform).
    min_fleet:
        Floor on the fleet size.
    habit_drift_sigma:
        Per-hour gaussian step applied to the unplug profile each
        night, clipped to ``[0, 1]``.
    """

    def __init__(
        self,
        *,
        leave_probability: float = 0.05,
        max_joins_per_night: int = 2,
        min_fleet: int = 4,
        habit_drift_sigma: float = 0.02,
        join_clock_choices: Sequence[float] = (600.0, 800.0, 1000.0, 1200.0, 1500.0),
    ) -> None:
        if not 0.0 <= leave_probability <= 1.0:
            raise ValueError(
                f"leave_probability must lie in [0, 1], got {leave_probability!r}"
            )
        if max_joins_per_night < 0:
            raise ValueError(
                f"max_joins_per_night must be >= 0, got {max_joins_per_night!r}"
            )
        if min_fleet < 1:
            raise ValueError(f"min_fleet must be >= 1, got {min_fleet!r}")
        if habit_drift_sigma < 0:
            raise ValueError(
                f"habit_drift_sigma must be >= 0, got {habit_drift_sigma!r}"
            )
        if not join_clock_choices:
            raise ValueError("join_clock_choices must be non-empty")
        self._leave_probability = leave_probability
        self._max_joins = max_joins_per_night
        self._min_fleet = min_fleet
        self._drift_sigma = habit_drift_sigma
        self._clocks = tuple(float(c) for c in join_clock_choices)

    def apply(
        self,
        phones: Sequence[PhoneSpec],
        *,
        night_index: int,
        rng: random.Random,
    ) -> ChurnEvent:
        """Sample one night boundary's departures and enrollments.

        Consumes the RNG in a fixed order (departure draws for every
        phone in fleet order, then the join count, then per-join spec
        draws) so a campaign replaying from a checkpointed RNG state
        reproduces the identical fleet.
        """
        survivors = list(phones)
        departed: list[str] = []
        for phone in tuple(phones):
            leaves = rng.random() < self._leave_probability
            if leaves and len(survivors) > self._min_fleet:
                survivors.remove(phone)
                departed.append(phone.phone_id)

        joined: list[PhoneSpec] = []
        join_count = rng.randint(0, self._max_joins) if self._max_joins else 0
        for index in range(join_count):
            joined.append(
                PhoneSpec(
                    phone_id=f"join-n{night_index:02d}-{index:02d}",
                    cpu_mhz=rng.choice(self._clocks),
                    network=rng.choice(tuple(NetworkTechnology)),
                    cpu_efficiency=round(rng.uniform(0.85, 1.3), 3),
                    location="house-churn",
                    model_name="enrolled",
                )
            )
        fleet = tuple(survivors) + tuple(joined)
        return ChurnEvent(
            phones=fleet,
            joined=tuple(p.phone_id for p in joined),
            departed=tuple(departed),
        )

    def drift_hourly_probabilities(
        self, probs: Sequence[float], *, rng: random.Random
    ) -> list[float]:
        """One night's random walk of the hourly unplug profile."""
        drifted = []
        for p in probs:
            step = rng.gauss(0.0, self._drift_sigma) if self._drift_sigma else 0.0
            drifted.append(min(1.0, max(0.0, float(p) + step)))
        if len(drifted) != 24:
            raise ValueError(f"need 24 hourly probabilities, got {len(drifted)}")
        return drifted
