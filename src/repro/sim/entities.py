"""Ground-truth runtime state of simulated phones.

The scheduler sees phones only through *estimates* — measured ``b_i``
and predicted ``c_ij``.  The simulator keeps the *truth*:

* :class:`FleetGroundTruth` maps each (phone, task) pair to the actual
  per-KB execution time.  Truth is derived from the phone's *effective*
  clock speed (nominal MHz × hidden efficiency factor) plus an optional
  per-pair systematic deviation, which is how the Figure 6 outliers —
  phones faster than their clock speed suggests — enter the simulation;
* :class:`PhoneRuntime` couples a phone's spec with its dynamic state:
  plugged/online flags, the true transfer rate, a compute-slowdown
  factor (≥ 1) that models MIMD throttling's duty cycle, and optional
  chaos-injection timelines
  (:class:`~repro.netmodel.links.DegradationSchedule`) that make the
  phone a mid-run CPU straggler or degrade its link.

The gap between truth and prediction is what the paper's online
prediction updates (Section 4.1) learn away.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass

from ..core.model import PhoneSpec
from ..core.prediction import TaskProfile
from ..netmodel.links import DegradationSchedule

__all__ = ["PhoneState", "FleetGroundTruth", "PhoneRuntime"]


class PhoneState(enum.Enum):
    """Lifecycle of a simulated phone during a run."""

    IDLE = "idle"
    COPYING = "copying"
    EXECUTING = "executing"
    UNPLUGGED = "unplugged"  # online failure: reported to the server
    OFFLINE = "offline"      # offline failure: vanished silently


class FleetGroundTruth:
    """Actual per-KB execution times for every (phone, task) pair.

    Parameters
    ----------
    profiles:
        True reference measurements per task (the same shape the
        predictor uses, but these are reality, not estimates).
    deviation_sigma:
        Standard deviation of a lognormal systematic deviation applied
        per (phone, task) pair, sampled once per pair from ``seed``.
        Zero makes truth exactly clock-proportional.
    """

    def __init__(
        self,
        profiles: dict[str, TaskProfile],
        *,
        deviation_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        if deviation_sigma < 0:
            raise ValueError("deviation_sigma must be >= 0")
        self._profiles = dict(profiles)
        self._sigma = deviation_sigma
        self._seed = seed
        self._deviations: dict[tuple[str, str], float] = {}

    @property
    def tasks(self) -> frozenset[str]:
        return frozenset(self._profiles)

    def _deviation(self, phone_id: str, task: str) -> float:
        key = (phone_id, task)
        factor = self._deviations.get(key)
        if factor is None:
            # Deterministic per-pair sample, independent of call order.
            rng = random.Random((self._seed, phone_id, task).__repr__())
            factor = math.exp(rng.gauss(0.0, self._sigma)) if self._sigma else 1.0
            self._deviations[key] = factor
        return factor

    def true_ms_per_kb(self, phone: PhoneSpec, task: str) -> float:
        """Actual time for ``phone`` to process 1 KB of ``task`` input."""
        try:
            profile = self._profiles[task]
        except KeyError:
            raise KeyError(f"no ground-truth profile for task {task!r}") from None
        base = profile.base_ms_per_kb * profile.base_mhz / phone.effective_mhz
        return base * self._deviation(phone.phone_id, task)

    def measured_speedup(self, phone: PhoneSpec, reference: PhoneSpec, task: str) -> float:
        """``t_s / t_i`` — the y-axis of Figure 6."""
        return self.true_ms_per_kb(reference, task) / self.true_ms_per_kb(phone, task)


@dataclass
class PhoneRuntime:
    """Dynamic state of one phone during a simulated run.

    ``true_b_ms_per_kb`` is the phone's actual transfer time; the
    scheduler may have been given a noisy measurement of it.
    ``compute_slowdown`` multiplies execution times (1.0 = no
    throttling; ≈1.245 reproduces the paper's MIMD compute penalty).
    ``compute_schedule`` / ``bandwidth_schedule`` are optional chaos
    timelines of *additional* time multipliers, sampled at the instant
    an operation starts; the scheduler knows nothing about them.
    """

    spec: PhoneSpec
    true_b_ms_per_kb: float
    compute_slowdown: float = 1.0
    state: PhoneState = PhoneState.IDLE
    compute_schedule: "DegradationSchedule | None" = None
    bandwidth_schedule: "DegradationSchedule | None" = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.true_b_ms_per_kb) or self.true_b_ms_per_kb < 0:
            raise ValueError(
                f"true_b_ms_per_kb must be >= 0, got {self.true_b_ms_per_kb!r}"
            )
        if self.compute_slowdown < 1.0:
            raise ValueError(
                f"compute_slowdown must be >= 1, got {self.compute_slowdown!r}"
            )

    @property
    def phone_id(self) -> str:
        return self.spec.phone_id

    @property
    def available(self) -> bool:
        """Whether the server may still dispatch work to this phone."""
        return self.state in (PhoneState.IDLE, PhoneState.COPYING, PhoneState.EXECUTING)

    def copy_time_ms(self, kb: float, *, at_ms: float = 0.0) -> float:
        """Actual time to receive ``kb`` kilobytes from the server.

        ``at_ms`` is the instant the transfer starts; any active
        bandwidth degradation multiplies the whole transfer.
        """
        if kb < 0:
            raise ValueError(f"kb must be >= 0, got {kb!r}")
        duration = kb * self.true_b_ms_per_kb
        if self.bandwidth_schedule is not None:
            duration *= self.bandwidth_schedule.factor_at(at_ms)
        return duration

    def execute_time_ms(
        self, truth: FleetGroundTruth, task: str, kb: float, *, at_ms: float = 0.0
    ) -> float:
        """Actual time to locally process ``kb`` of ``task`` input.

        ``at_ms`` is the instant execution starts; any active CPU
        straggler factor multiplies the whole execution.
        """
        if kb < 0:
            raise ValueError(f"kb must be >= 0, got {kb!r}")
        duration = kb * truth.true_ms_per_kb(self.spec, task) * self.compute_slowdown
        if self.compute_schedule is not None:
            duration *= self.compute_schedule.factor_at(at_ms)
        return duration
